// Regenerates Figure 9: recall when the in-bucket best match is chosen
// by *containment* similarity (|Q∩R| / |Q|) versus by Jaccard, both
// under approximate min-wise hashing.
//
// Containment cannot drive the hashing itself (no LSH family exists
// for it, §3.2), but once a bucket has been located it is the better
// selection criterion — the paper reports complete answers improving
// from ~35% to ~60% of queries.
#include <cstdlib>

#include "bench/bench_util.h"
#include "bench/bench_args.h"

namespace p2prange {
namespace bench {
namespace {

std::vector<std::pair<double, double>> Series(MatchCriterion criterion, size_t n,
                                              double* complete) {
  SystemConfig cfg;
  cfg.num_peers = 1000;
  cfg.lsh = LshParams::Paper(HashFamilyType::kApproxMinwise, /*seed=*/42);
  cfg.criterion = criterion;
  cfg.seed = 42;
  const WorkloadResult result = RunPaperWorkload(cfg, n, /*workload_seed=*/4242);
  const auto series = FractionAtLeast(result.recalls, /*points=*/20);
  *complete = series.front().second;
  return series;
}

void Run(size_t n) {
  double complete_jaccard = 0, complete_containment = 0;
  const auto jaccard = Series(MatchCriterion::kJaccard, n, &complete_jaccard);
  const auto containment =
      Series(MatchCriterion::kContainment, n, &complete_containment);

  TablePrinter table(
      {"part of query answered >=", "% containment match", "% jaccard match"});
  for (size_t i = 0; i < jaccard.size(); ++i) {
    table.AddRow({TablePrinter::Fmt(jaccard[i].first, 2),
                  TablePrinter::Fmt(containment[i].second, 1),
                  TablePrinter::Fmt(jaccard[i].second, 1)});
  }
  table.Print(std::cout,
              "Figure 9: recall with containment vs Jaccard matching (approx "
              "min-wise hashing, " +
                  std::to_string(n) + " queries)");
  std::cout << "completely answered:  containment "
            << TablePrinter::Fmt(complete_containment, 1) << "%   jaccard "
            << TablePrinter::Fmt(complete_jaccard, 1)
            << "%  (paper: ~60% vs ~35%)\n";
}

}  // namespace
}  // namespace bench
}  // namespace p2prange

int main(int argc, char** argv) {
  const size_t n = p2prange::bench::CountFromArgs(argc, argv, 10000, 300);
  p2prange::bench::Run(n);
  return 0;
}
