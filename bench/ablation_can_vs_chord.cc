// Substrate comparison: Chord vs CAN vs Tapestry as the DHT under the
// paper's architecture (§1 surveys all three; the paper builds on
// Chord, Harren et al. built on CAN, Tapestry is its citation [16]).
//
// All overlays resolve the same stream of LSH identifiers. Reported
// per overlay size: mean/99th-percentile routing hops, per-node
// routing-state size, and the load imbalance of identifier ownership
// (max/mean of identifiers owned per node). Chord routes in O(log N)
// hops with O(log N) state; CAN in O(d*N^(1/d)) hops with O(d) state;
// Tapestry in O(log16 N) hops with O(log N * base) prefix tables — the
// classical tradeoffs, measured on identical workloads.
#include <cmath>
#include <cstdlib>
#include <set>
#include <unordered_map>

#include "bench/bench_util.h"
#include "can/network.h"
#include "chord/ring.h"
#include "hash/lsh.h"
#include "tapestry/tapestry.h"

#include "bench/bench_args.h"

namespace p2prange {
namespace bench {
namespace {

std::vector<uint32_t> IdentifierStream(size_t count, uint64_t seed) {
  auto scheme = LshScheme::Make(LshParams::Paper(HashFamilyType::kApproxMinwise,
                                                 seed));
  CHECK(scheme.ok());
  UniformRangeGenerator gen(kDomainLo, kDomainHi, seed ^ 0xF00D);
  std::vector<uint32_t> ids;
  ids.reserve(count);
  while (ids.size() < count) {
    for (uint32_t id : scheme->Identifiers(gen.Next())) {
      if (ids.size() < count) ids.push_back(id);
    }
  }
  return ids;
}

struct OverlayRow {
  double mean_hops, p99_hops;
  double mean_state;  // routing-table entries per node
  double load_max_over_mean;
};

OverlayRow MeasureChord(size_t n, const std::vector<uint32_t>& ids) {
  auto ring = chord::ChordRing::Make(n, 5);
  CHECK(ring.ok());
  Summary hops;
  std::unordered_map<uint32_t, size_t> owned;  // node id -> identifiers owned
  for (uint32_t id : ids) {
    auto origin = ring->RandomAliveAddress();
    CHECK(origin.ok());
    auto result = ring->Lookup(*origin, id);
    CHECK(result.ok());
    hops.AddCount(static_cast<uint64_t>(result->hops));
    ++owned[result->owner.id];
  }
  // State: distinct finger entries + successor list.
  Summary state;
  for (const chord::NodeInfo& info : ring->AliveNodesSorted()) {
    const chord::ChordNode* node = ring->node(info.addr);
    std::set<uint32_t> distinct;
    for (int i = 0; i < chord::FingerTable::size(); ++i) {
      if (node->fingers().entry(i)) distinct.insert(node->fingers().entry(i)->id);
    }
    for (const auto& s : node->successors()) distinct.insert(s.id);
    state.AddCount(distinct.size());
  }
  Summary load;
  for (const auto& [id, count] : owned) load.AddCount(count);
  const double mean_per_owner =
      static_cast<double>(ids.size()) / static_cast<double>(n);
  return OverlayRow{hops.Mean(), hops.Percentile(99), state.Mean(),
                    load.Max() / mean_per_owner};
}

OverlayRow MeasureCan(size_t n, const std::vector<uint32_t>& ids, int dims) {
  can::CanConfig cfg;
  cfg.dims = dims;
  auto net = can::CanNetwork::Make(n, 5, cfg);
  CHECK(net.ok());
  Summary hops;
  std::unordered_map<uint64_t, size_t> owned;
  for (uint32_t id : ids) {
    auto origin = net->RandomAliveAddress();
    CHECK(origin.ok());
    auto result = net->Lookup(*origin, id);
    CHECK(result.ok()) << result.status();
    hops.AddCount(static_cast<uint64_t>(result->hops));
    ++owned[(static_cast<uint64_t>(result->owner.host) << 16) |
            result->owner.port];
  }
  Summary state;
  for (size_t c : net->NeighborCounts()) state.AddCount(c);
  Summary load;
  for (const auto& [addr, count] : owned) load.AddCount(count);
  const double mean_per_owner =
      static_cast<double>(ids.size()) / static_cast<double>(n);
  return OverlayRow{hops.Mean(), hops.Percentile(99), state.Mean(),
                    load.Max() / mean_per_owner};
}

OverlayRow MeasureTapestry(size_t n, const std::vector<uint32_t>& ids) {
  auto mesh = tapestry::TapestryMesh::Make(n, 5);
  CHECK(mesh.ok());
  Summary hops;
  std::unordered_map<uint32_t, size_t> owned;
  for (uint32_t id : ids) {
    auto origin = mesh->RandomAliveAddress();
    CHECK(origin.ok());
    auto result = mesh->Lookup(*origin, id);
    CHECK(result.ok()) << result.status();
    hops.AddCount(static_cast<uint64_t>(result->hops));
    ++owned[result->owner.id];
  }
  Summary state;
  for (size_t s : mesh->StateSizes()) state.AddCount(s);
  Summary load;
  for (const auto& [id, count] : owned) load.AddCount(count);
  const double mean_per_owner =
      static_cast<double>(ids.size()) / static_cast<double>(n);
  return OverlayRow{hops.Mean(), hops.Percentile(99), state.Mean(),
                    load.Max() / mean_per_owner};
}

void Run(size_t lookups) {
  const std::vector<uint32_t> ids = IdentifierStream(lookups, 3);
  TablePrinter table({"peers", "overlay", "mean hops", "99th pct",
                      "state/node", "load max/mean"});
  for (size_t n : {64u, 256u, 1024u}) {
    const OverlayRow chord_row = MeasureChord(n, ids);
    table.AddRow({TablePrinter::Fmt(static_cast<uint64_t>(n)), "Chord",
                  TablePrinter::Fmt(chord_row.mean_hops, 2),
                  TablePrinter::Fmt(chord_row.p99_hops, 0),
                  TablePrinter::Fmt(chord_row.mean_state, 1),
                  TablePrinter::Fmt(chord_row.load_max_over_mean, 1)});
    for (int dims : {2, 4}) {
      const OverlayRow can_row = MeasureCan(n, ids, dims);
      table.AddRow({TablePrinter::Fmt(static_cast<uint64_t>(n)),
                    "CAN d=" + std::to_string(dims),
                    TablePrinter::Fmt(can_row.mean_hops, 2),
                    TablePrinter::Fmt(can_row.p99_hops, 0),
                    TablePrinter::Fmt(can_row.mean_state, 1),
                    TablePrinter::Fmt(can_row.load_max_over_mean, 1)});
    }
    const OverlayRow tap_row = MeasureTapestry(n, ids);
    table.AddRow({TablePrinter::Fmt(static_cast<uint64_t>(n)), "Tapestry",
                  TablePrinter::Fmt(tap_row.mean_hops, 2),
                  TablePrinter::Fmt(tap_row.p99_hops, 0),
                  TablePrinter::Fmt(tap_row.mean_state, 1),
                  TablePrinter::Fmt(tap_row.load_max_over_mean, 1)});
  }
  table.Print(std::cout, "Substrate comparison: Chord vs CAN vs Tapestry on the paper's "
                         "identifier workload (" +
                             std::to_string(lookups) + " lookups)");
  std::cout << "(expected: Chord ~0.5*log2 N hops with O(log N) state; CAN\n"
               " ~(d/4)*N^(1/d) hops with O(d) state; Tapestry ~log16 N hops\n"
               " with compact prefix tables)\n";
}

}  // namespace
}  // namespace bench
}  // namespace p2prange

int main(int argc, char** argv) {
  const size_t n = p2prange::bench::CountFromArgs(argc, argv, 3000, 200);
  p2prange::bench::Run(n);
  return 0;
}
