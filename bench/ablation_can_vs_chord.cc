// Substrate comparison: Chord vs CAN vs Tapestry as the DHT under the
// paper's architecture (§1 surveys all three; the paper builds on
// Chord, Harren et al. built on CAN, Tapestry is its citation [16]).
//
// All substrates are driven through the overlay::Overlay contract —
// the same RouteToOwner calls core::System makes — so this bench also
// doubles as a smoke test of the abstraction seam. Reported per
// overlay and size: mean/99th-percentile routing hops, per-node
// routing-state size (probed through each adapter's substrate
// accessor; state layout is inherently substrate-specific), and the
// load imbalance of identifier ownership (max/mean of identifiers
// owned per node). Chord routes in O(log N) hops with O(log N) state;
// CAN in O(d*N^(1/d)) hops with O(d) state; Tapestry in O(log16 N)
// hops with compact prefix tables — the classical tradeoffs, measured
// on identical workloads.
#include <cmath>
#include <cstdlib>
#include <map>
#include <set>

#include "bench/bench_util.h"
#include "hash/lsh.h"
#include "overlay/can_overlay.h"
#include "overlay/chord_overlay.h"
#include "overlay/factory.h"
#include "overlay/tapestry_overlay.h"

#include "bench/bench_args.h"

namespace p2prange {
namespace bench {
namespace {

std::vector<uint32_t> IdentifierStream(size_t count, uint64_t seed) {
  auto scheme = LshScheme::Make(LshParams::Paper(HashFamilyType::kApproxMinwise,
                                                 seed));
  CHECK(scheme.ok());
  UniformRangeGenerator gen(kDomainLo, kDomainHi, seed ^ 0xF00D);
  std::vector<uint32_t> ids;
  ids.reserve(count);
  while (ids.size() < count) {
    for (uint32_t id : scheme->Identifiers(gen.Next())) {
      if (ids.size() < count) ids.push_back(id);
    }
  }
  return ids;
}

struct OverlayRow {
  double mean_hops, p99_hops;
  double mean_state;  // routing-table entries per node
  double load_max_over_mean;
};

/// Routing-state entries per node, through the substrate accessors
/// (the one measurement the uniform contract cannot express).
Summary StatePerNode(overlay::Overlay& net) {
  Summary state;
  switch (net.kind()) {
    case overlay::Kind::kChord: {
      chord::ChordRing& ring = static_cast<overlay::ChordOverlay&>(net).ring();
      for (const chord::NodeInfo& info : ring.AliveNodesSorted()) {
        const chord::ChordNode* node = ring.node(info.addr);
        std::set<uint32_t> distinct;
        for (int i = 0; i < chord::FingerTable::size(); ++i) {
          if (node->fingers().entry(i)) {
            distinct.insert(node->fingers().entry(i)->id);
          }
        }
        for (const auto& s : node->successors()) distinct.insert(s.id);
        state.AddCount(distinct.size());
      }
      break;
    }
    case overlay::Kind::kCan: {
      can::CanNetwork& can_net = static_cast<overlay::CanOverlay&>(net).can();
      for (size_t c : can_net.NeighborCounts()) state.AddCount(c);
      break;
    }
    case overlay::Kind::kTapestry: {
      tapestry::TapestryMesh& mesh =
          static_cast<overlay::TapestryOverlay&>(net).mesh();
      for (size_t s : mesh.StateSizes()) state.AddCount(s);
      break;
    }
  }
  return state;
}

OverlayRow Measure(const overlay::OverlayParams& params, size_t n,
                   const std::vector<uint32_t>& ids) {
  auto net = overlay::MakeOverlay(params, n, 5, chord::ChordConfig{});
  CHECK(net.ok()) << net.status();
  Summary hops;
  std::map<std::string, size_t> owned;  // owner address -> identifiers owned
  for (uint32_t id : ids) {
    auto origin = (*net)->RandomAliveAddress();
    CHECK(origin.ok());
    auto result = (*net)->RouteToOwner(*origin, id);
    CHECK(result.ok()) << result.status();
    hops.AddCount(static_cast<uint64_t>(result->hops));
    ++owned[result->owner.addr.ToString()];
  }
  const Summary state = StatePerNode(**net);
  Summary load;
  for (const auto& [addr, count] : owned) load.AddCount(count);
  const double mean_per_owner =
      static_cast<double>(ids.size()) / static_cast<double>(n);
  return OverlayRow{hops.Mean(), hops.Percentile(99), state.Mean(),
                    load.Max() / mean_per_owner};
}

void AddRow(TablePrinter& table, size_t n, const std::string& label,
            const OverlayRow& row) {
  table.AddRow({TablePrinter::Fmt(static_cast<uint64_t>(n)), label,
                TablePrinter::Fmt(row.mean_hops, 2),
                TablePrinter::Fmt(row.p99_hops, 0),
                TablePrinter::Fmt(row.mean_state, 1),
                TablePrinter::Fmt(row.load_max_over_mean, 1)});
}

void Run(size_t lookups) {
  const std::vector<uint32_t> ids = IdentifierStream(lookups, 3);
  TablePrinter table({"peers", "overlay", "mean hops", "99th pct",
                      "state/node", "load max/mean"});
  for (size_t n : {64u, 256u, 1024u}) {
    overlay::OverlayParams params;
    params.kind = overlay::Kind::kChord;
    AddRow(table, n, "Chord", Measure(params, n, ids));
    for (int dims : {2, 4}) {
      params.kind = overlay::Kind::kCan;
      params.can_dims = dims;
      AddRow(table, n, "CAN d=" + std::to_string(dims), Measure(params, n, ids));
    }
    params.kind = overlay::Kind::kTapestry;
    AddRow(table, n, "Tapestry", Measure(params, n, ids));
  }
  table.Print(std::cout, "Substrate comparison: Chord vs CAN vs Tapestry on the paper's "
                         "identifier workload (" +
                             std::to_string(lookups) + " lookups)");
  std::cout << "(expected: Chord ~0.5*log2 N hops with O(log N) state; CAN\n"
               " ~(d/4)*N^(1/d) hops with O(d) state; Tapestry ~log16 N hops\n"
               " with compact prefix tables)\n";
}

}  // namespace
}  // namespace bench
}  // namespace p2prange

int main(int argc, char** argv) {
  const size_t n = p2prange::bench::CountFromArgs(argc, argv, 3000, 200);
  p2prange::bench::Run(n);
  return 0;
}
