// Ablation (paper §5.3): matching against a peer-wide index over all
// buckets a peer holds, versus only the probed identifier's bucket.
//
// The paper argues recall with the index is best with one peer (which
// then holds every partition) and degrades toward the bucket-only
// numbers as the ring grows and each peer holds fewer buckets. This
// bench quantifies that across ring sizes.
#include <cmath>
#include <cstdlib>

#include "bench/bench_util.h"
#include "bench/bench_args.h"

namespace p2prange {
namespace bench {
namespace {

struct Row {
  double complete_pct;
  double mean_recall;
  double matched_pct;
};

Row Measure(size_t peers, bool use_index, size_t n) {
  SystemConfig cfg;
  cfg.num_peers = peers;
  cfg.lsh = LshParams::Paper(HashFamilyType::kApproxMinwise, 42);
  cfg.criterion = MatchCriterion::kContainment;
  cfg.use_peer_index = use_index;
  cfg.seed = 42;
  const WorkloadResult r = RunPaperWorkload(cfg, n, 4242);
  Summary recalls;
  size_t complete = 0;
  for (double rec : r.recalls) {
    recalls.Add(rec);
    if (rec >= 1.0) ++complete;
  }
  return Row{100.0 * static_cast<double>(complete) /
                 static_cast<double>(r.recalls.size()),
             recalls.Mean(), 100.0 * r.frac_matched};
}

void Run(size_t n) {
  TablePrinter table({"peers", "mode", "% matched", "% complete", "mean recall"});
  for (size_t peers : {1u, 10u, 100u, 1000u}) {
    for (bool use_index : {true, false}) {
      const Row row = Measure(peers, use_index, n);
      table.AddRow({TablePrinter::Fmt(static_cast<uint64_t>(peers)),
                    use_index ? "peer index" : "bucket only",
                    TablePrinter::Fmt(row.matched_pct, 1),
                    TablePrinter::Fmt(row.complete_pct, 1),
                    TablePrinter::Fmt(row.mean_recall, 3)});
    }
  }
  table.Print(std::cout,
              "Ablation (paper 5.3): peer-wide index vs bucket-only matching (" +
                  std::to_string(n) + " queries)");
  std::cout << "(expected: with 1 peer the index sees every partition -> best\n"
               " recall; the advantage shrinks as peers grow)\n";
}

}  // namespace
}  // namespace bench
}  // namespace p2prange

int main(int argc, char** argv) {
  const size_t n = p2prange::bench::CountFromArgs(argc, argv, 5000, 300);
  p2prange::bench::Run(n);
  return 0;
}
