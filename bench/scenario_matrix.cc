// The scenario matrix: every overlay substrate crossed with every
// workload shape and churn regime, on the event-driven engine.
//
// Grid: {chord, can, tapestry} x {uniform, zipf, hotspot} x
// {no-churn, steady churn, crash wave}, each cell reporting hops,
// recall, traffic, and (for the crash wave) the recovery clock —
// plus one million-peer cell proving the engine's memory-compact
// layout holds at 10^6 peers (bytes/peer is measured, not estimated).
//
// Output is a single JSON document on stdout (the checked-in
// BENCH_scenario_matrix.json); progress goes to stderr. The
// `nonzero_recall_overlays` field is the smoke-gate verdict: 3 means
// every substrate produced cache hits under churn.
#include <cstdio>
#include <iostream>
#include <string>

#include "bench/bench_args.h"
#include "common/logging.h"
#include "sim/engine/scenario_engine.h"

namespace p2prange {
namespace bench {
namespace {

struct Cell {
  overlay::Kind kind;
  sim::WorkloadShape shape;
  sim::ChurnMode churn;
  sim::ScenarioReport report;
};

sim::ScenarioReport RunCell(const sim::ScenarioConfig& config) {
  auto engine = sim::ScenarioEngine::Make(config);
  CHECK(engine.ok()) << engine.status();
  auto report = engine->Run();
  CHECK(report.ok()) << report.status();
  return *report;
}

std::string CellJson(const Cell& cell) {
  std::string out = "{\"overlay\":\"";
  out += overlay::KindName(cell.kind);
  out += "\",\"shape\":\"";
  out += sim::WorkloadShapeName(cell.shape);
  out += "\",\"churn\":\"";
  out += sim::ChurnModeName(cell.churn);
  out += "\",\"report\":";
  out += cell.report.ToJson();
  out += '}';
  return out;
}

void Run(size_t grid_peers, size_t grid_queries, size_t million_peers,
         size_t million_queries) {
  const overlay::Kind kKinds[] = {overlay::Kind::kChord, overlay::Kind::kCan,
                                  overlay::Kind::kTapestry};
  const sim::WorkloadShape kShapes[] = {sim::WorkloadShape::kUniform,
                                        sim::WorkloadShape::kZipf,
                                        sim::WorkloadShape::kHotspot};
  const sim::ChurnMode kChurns[] = {sim::ChurnMode::kNone,
                                    sim::ChurnMode::kChurn,
                                    sim::ChurnMode::kCrashWave};

  std::vector<Cell> cells;
  bool chord_churn_recall = false;
  bool can_churn_recall = false;
  bool tapestry_churn_recall = false;
  for (const overlay::Kind kind : kKinds) {
    for (const sim::WorkloadShape shape : kShapes) {
      for (const sim::ChurnMode churn : kChurns) {
        sim::ScenarioConfig config;
        config.kind = kind;
        config.shape = shape;
        config.churn = churn;
        config.num_peers = grid_peers;
        config.num_queries = grid_queries;
        config.seed = 1;
        std::fprintf(stderr, "scenario %s/%s/%s...\n",
                     overlay::KindName(kind), sim::WorkloadShapeName(shape),
                     sim::ChurnModeName(churn));
        Cell cell{kind, shape, churn, RunCell(config)};
        // The churn-resilience verdict: cache hits while peers fail.
        if (churn != sim::ChurnMode::kNone && cell.report.recall_sum > 0.0) {
          if (kind == overlay::Kind::kChord) chord_churn_recall = true;
          if (kind == overlay::Kind::kCan) can_churn_recall = true;
          if (kind == overlay::Kind::kTapestry) tapestry_churn_recall = true;
        }
        cells.push_back(std::move(cell));
      }
    }
  }

  std::fprintf(stderr, "scenario chord/uniform/none @ %zu peers...\n",
               million_peers);
  sim::ScenarioConfig big;
  big.kind = overlay::Kind::kChord;
  big.num_peers = million_peers;
  big.num_queries = million_queries;
  big.seed = 1;
  const sim::ScenarioReport million = RunCell(big);

  const int nonzero = (chord_churn_recall ? 1 : 0) +
                      (can_churn_recall ? 1 : 0) +
                      (tapestry_churn_recall ? 1 : 0);

  std::string out = "{\"grid_peers\":" + std::to_string(grid_peers);
  out += ",\"grid_queries\":" + std::to_string(grid_queries);
  out += ",\"cells\":[";
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out += ',';
    out += CellJson(cells[i]);
  }
  out += "],\"million_peer\":{\"overlay\":\"chord\",\"peers\":" +
         std::to_string(million_peers);
  out += ",\"queries\":" + std::to_string(million_queries);
  out += ",\"report\":" + million.ToJson();
  out += "},\"nonzero_recall_overlays\":" + std::to_string(nonzero);
  out += "}";
  std::cout << out << std::endl;
}

}  // namespace
}  // namespace bench
}  // namespace p2prange

int main(int argc, char** argv) {
  // Smoke: the satellite gate's 10^4-peer grid plus the 10^6-peer
  // headline cell; full mode widens the grid tenfold.
  const size_t grid_peers =
      p2prange::bench::CountFromArgs(argc, argv, 100000, 10000);
  const size_t grid_queries = grid_peers == 100000 ? 20000 : 3000;
  p2prange::bench::Run(grid_peers, grid_queries, 1000000, 100000);
  return 0;
}
