// google-benchmark microbenchmarks for the performance-critical
// primitives: permutation evaluation, range hashing, LSH identifier
// computation, SHA-1, Chord lookups, and bucket matching.
#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>

#include <cstring>
#include <vector>

#include "chord/ring.h"
#include "common/random.h"
#include "hash/bit_permutation.h"
#include "hash/lsh.h"
#include "hash/minwise.h"
#include "hash/sha1.h"
#include "rpc/frame.h"
#include "rpc/message.h"
#include "rpc/tcp_transport.h"
#include "store/bucket_store.h"

namespace p2prange {
namespace {

void BM_BitPermutationApply(benchmark::State& state) {
  Rng rng(1);
  const BitShuffleKeys keys = BitShuffleKeys::Sample(32, rng);
  const BitPermutation perm(keys, keys.num_levels());
  uint32_t x = 12345;
  for (auto _ : state) {
    x = perm.Apply(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_BitPermutationApply);

void BM_BitPermutationApplyNaive(benchmark::State& state) {
  Rng rng(1);
  const BitShuffleKeys keys = BitShuffleKeys::Sample(32, rng);
  const BitPermutation perm(keys, static_cast<int>(state.range(0)));
  uint32_t x = 12345;
  for (auto _ : state) {
    x = perm.ApplyNaive(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_BitPermutationApplyNaive)->Arg(1)->Arg(5);

void BM_BitPermutationCompile(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    const BitShuffleKeys keys = BitShuffleKeys::Sample(32, rng);
    BitPermutation perm(keys, keys.num_levels());
    benchmark::DoNotOptimize(perm);
  }
}
BENCHMARK(BM_BitPermutationCompile);

void BM_LinearPermute(benchmark::State& state) {
  Rng rng(2);
  const LinearHashFunction fn(rng);
  uint32_t x = 999;
  for (auto _ : state) {
    x = fn.Permute(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_LinearPermute);

// The production path: sublinear range-min kernels, flat in width.
template <HashFamilyType kFamily>
void BM_HashRange(benchmark::State& state) {
  Rng rng(3);
  auto fn = MakeHashFunction(kFamily, rng);
  const Range q(1000, 1000 + static_cast<uint32_t>(state.range(0)) - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fn->HashRange(q));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashRange<HashFamilyType::kMinwise>)
    ->Arg(334)->Arg(1000)->Arg(1500)->Arg(100000);
BENCHMARK(BM_HashRange<HashFamilyType::kApproxMinwise>)
    ->Arg(334)->Arg(1000)->Arg(1500)->Arg(100000);
BENCHMARK(BM_HashRange<HashFamilyType::kLinear>)
    ->Arg(334)->Arg(1000)->Arg(1500)->Arg(100000);

// The kernel-vs-naive series: the O(|Q|) reference scan over the same
// widths. Compare against BM_HashRange at equal Arg for the speedup
// (>= 10x at width 1000, >= 100x at width 100000 is the regression
// bar; see EXPERIMENTS.md).
template <HashFamilyType kFamily>
void BM_HashRangeNaive(benchmark::State& state) {
  Rng rng(3);
  auto fn = MakeHashFunction(kFamily, rng);
  const Range q(1000, 1000 + static_cast<uint32_t>(state.range(0)) - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fn->HashRangeNaive(q));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashRangeNaive<HashFamilyType::kMinwise>)->Arg(1000)->Arg(100000);
BENCHMARK(BM_HashRangeNaive<HashFamilyType::kApproxMinwise>)
    ->Arg(1000)->Arg(100000);
BENCHMARK(BM_HashRangeNaive<HashFamilyType::kLinear>)->Arg(1000)->Arg(100000);

void BM_LshIdentifiers(benchmark::State& state) {
  auto scheme = LshScheme::Make(LshParams::Paper(HashFamilyType::kApproxMinwise, 7));
  CHECK(scheme.ok());
  const Range q(100, 433);  // the workload's mean-sized range
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme->Identifiers(q));
  }
}
BENCHMARK(BM_LshIdentifiers);

void BM_Sha1(benchmark::State& state) {
  const std::string input(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1::Hash(input));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(21)->Arg(1024)->Arg(65536);

void BM_ChordLookup(benchmark::State& state) {
  auto ring = chord::ChordRing::Make(static_cast<size_t>(state.range(0)), 11);
  CHECK(ring.ok());
  Rng rng(13);
  auto origin = ring->RandomAliveAddress();
  CHECK(origin.ok());
  for (auto _ : state) {
    auto result = ring->Lookup(*origin, rng.Next32());
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ChordLookup)->Arg(100)->Arg(1000)->Arg(5000);

void BM_BucketBestMatch(benchmark::State& state) {
  BucketStore store;
  Rng rng(17);
  const int entries = static_cast<int>(state.range(0));
  for (int i = 0; i < entries; ++i) {
    const uint32_t lo = static_cast<uint32_t>(rng.NextBounded(900));
    store.Insert(42, PartitionDescriptor{
                         PartitionKey{"Numbers", "key",
                                      Range(lo, lo + static_cast<uint32_t>(
                                                        rng.NextBounded(100)))},
                         NetAddress{1, 1}});
  }
  const PartitionKey query{"Numbers", "key", Range(300, 500)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store.BestMatch(42, query, MatchCriterion::kJaccard));
  }
}
BENCHMARK(BM_BucketBestMatch)->Arg(10)->Arg(100)->Arg(1000);

void BM_PeerIndexBestMatch(benchmark::State& state) {
  // The §5.3 peer-wide matcher over the interval index: cost stays
  // near-flat in store size for selective queries.
  BucketStore store;
  Rng rng(19);
  const int entries = static_cast<int>(state.range(0));
  for (int i = 0; i < entries; ++i) {
    const uint32_t lo = static_cast<uint32_t>(rng.NextBounded(100000));
    store.Insert(static_cast<chord::ChordId>(rng.NextBounded(1000)),
                 PartitionDescriptor{
                     PartitionKey{"Numbers", "key",
                                  Range(lo, lo + static_cast<uint32_t>(
                                                     rng.NextBounded(200)))},
                     NetAddress{1, 1}});
  }
  const PartitionKey query{"Numbers", "key", Range(50000, 50400)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store.BestMatchAnywhere(query, MatchCriterion::kContainment));
  }
}
BENCHMARK(BM_PeerIndexBestMatch)->Arg(100)->Arg(10000)->Arg(100000);

void BM_LshIdentifiersInto(benchmark::State& state) {
  // The batched, allocation-free probe-path form.
  auto scheme = LshScheme::Make(LshParams::Paper(HashFamilyType::kApproxMinwise, 7));
  CHECK(scheme.ok());
  const Range q(100, 433);
  std::vector<uint32_t> ids;
  for (auto _ : state) {
    scheme->IdentifiersInto(q, &ids);
    benchmark::DoNotOptimize(ids.data());
  }
}
BENCHMARK(BM_LshIdentifiersInto);

// --- RPC layer: frame codec, envelope codec, live TCP round trip ------

void BM_FrameEncodeParse(benchmark::State& state) {
  const std::string payload(static_cast<size_t>(state.range(0)), 'x');
  std::string buf;
  rpc::FrameParser parser;
  for (auto _ : state) {
    buf.clear();
    rpc::AppendFrame(payload, &buf);
    parser.Feed(buf);
    auto got = parser.Next();
    benchmark::DoNotOptimize(got);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FrameEncodeParse)->Arg(64)->Arg(4096)->Arg(65536);

void BM_EnvelopeEncodeDecode(benchmark::State& state) {
  rpc::RpcHeader header;
  header.type = rpc::MsgType::kProbeBucket;
  const std::string body(128, 'b');
  for (auto _ : state) {
    ++header.call_id;
    auto got = rpc::DecodeEnvelope(rpc::EncodeEnvelope(header, body));
    benchmark::DoNotOptimize(got);
  }
}
BENCHMARK(BM_EnvelopeEncodeDecode);

void BM_TcpLoopbackCall(benchmark::State& state) {
  // Full request/response over a real socket pair: the per-probe cost
  // a live ring pays that the simulator only models.
  NetAddress bind;
  bind.host = 0x7F000001;
  bind.port = 0;
  auto server = rpc::TcpServer::Listen(
      bind, [](rpc::MsgType, std::string_view body) {
        return Result<std::string>(std::string(body));
      });
  CHECK(server.ok());
  std::atomic<bool> stop{false};
  std::thread loop([&] {
    while (!stop) {
      // Bench loop: poll errors surface as latency in the measured
      // path; the server thread itself just keeps pumping.
      server->PollOnce(/*timeout_ms=*/1).IgnoreError();
    }
  });
  rpc::TcpTransport transport;
  const std::string body(static_cast<size_t>(state.range(0)), 'q');
  for (auto _ : state) {
    auto result =
        transport.Call(NetAddress{}, server->address(), rpc::MsgType::kPing,
                       body);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      break;
    }
  }
  stop = true;
  loop.join();
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TcpLoopbackCall)->Arg(64)->Arg(4096);

}  // namespace
}  // namespace p2prange

// BENCHMARK_MAIN plus `--smoke` (tools/check.sh): rewrites the flag
// into a tiny --benchmark_min_time so every benchmark still executes —
// catching crashes and CHECK failures — without a full timing run.
int main(int argc, char** argv) {
  std::vector<char*> args;
  static char min_time[] = "--benchmark_min_time=0.001";
  bool smoke = false;
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  if (smoke) args.push_back(min_time);
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
