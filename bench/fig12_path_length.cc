// Regenerates Figure 12: overlay path lengths of lookups.
//
//  (a) mean / 1st / 99th percentile path length (Chord routing hops per
//      identifier lookup) as the number of peers grows 100..5000 — the
//      paper observes means of order (1/2)log2 N;
//  (b) the probability distribution of path length in a 1000-node
//      network.
//
// Lookups target the actual LSH identifiers of uniform query ranges,
// initiated at uniformly random peers, 5 identifiers per query, per
// the paper's modified find operation.
#include <cmath>
#include <cstdlib>

#include "bench/bench_util.h"
#include "bench/bench_args.h"

namespace p2prange {
namespace bench {
namespace {

Summary MeasureHops(size_t num_peers, size_t num_queries, uint64_t seed,
                    std::vector<double>* raw_out = nullptr) {
  SystemConfig cfg;
  cfg.num_peers = num_peers;
  cfg.lsh = LshParams::Paper(HashFamilyType::kApproxMinwise, seed);
  cfg.seed = seed;
  auto sys = RangeCacheSystem::Make(
      cfg, MakeNumbersCatalog(10, kDomainLo, kDomainHi, 1));
  CHECK(sys.ok()) << sys.status();

  UniformRangeGenerator gen(kDomainLo, kDomainHi, seed ^ 0xABCD);
  Summary hops;
  for (size_t i = 0; i < num_queries; ++i) {
    const Range q = gen.Next();
    const auto origin = sys->ring().RandomAliveAddress();
    CHECK(origin.ok());
    for (uint32_t id : sys->lsh().Identifiers(q)) {
      auto route = sys->ring().Lookup(*origin, id);
      CHECK(route.ok()) << route.status();
      hops.AddCount(static_cast<uint64_t>(route->hops));
      if (raw_out != nullptr) raw_out->push_back(route->hops);
    }
  }
  return hops;
}

void Run(size_t num_queries) {
  TablePrinter a({"peers", "mean hops", "1st pct", "99th pct",
                  "0.5*log2(N) reference"});
  for (size_t peers : {100u, 300u, 1000u, 2000u, 5000u}) {
    const Summary hops = MeasureHops(peers, num_queries, 3);
    a.AddRow({TablePrinter::Fmt(static_cast<uint64_t>(peers)),
              TablePrinter::Fmt(hops.Mean(), 2),
              TablePrinter::Fmt(hops.Percentile(1), 0),
              TablePrinter::Fmt(hops.Percentile(99), 0),
              TablePrinter::Fmt(0.5 * std::log2(static_cast<double>(peers)), 2)});
  }
  a.Print(std::cout, "Figure 12(a): path length vs number of peers (" +
                         std::to_string(num_queries) + " queries x 5 ids)");
  std::cout << "\n";

  std::vector<double> raw;
  (void)MeasureHops(1000, num_queries, 3, &raw);
  const std::vector<double> pdf = DiscretePdf(raw);
  TablePrinter b({"path length (hops)", "probability"});
  for (size_t h = 0; h < pdf.size(); ++h) {
    b.AddRow({TablePrinter::Fmt(static_cast<uint64_t>(h)),
              TablePrinter::Fmt(pdf[h], 4)});
  }
  b.Print(std::cout,
          "Figure 12(b): PDF of path length, 1000-node network");
}

}  // namespace
}  // namespace bench
}  // namespace p2prange

int main(int argc, char** argv) {
  const size_t n = p2prange::bench::CountFromArgs(argc, argv, 1000, 100);
  p2prange::bench::Run(n);
  return 0;
}
