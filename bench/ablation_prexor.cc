// Ablation: the fixed point of the paper's bit-shuffle construction.
//
// Any bit-position permutation maps 0 to 0, so every range containing
// element 0 hashes to 0 under every function of the (approx) min-wise
// families — all such ranges share one bucket signature regardless of
// their similarity. Composing each permutation with a random XOR
// translation (pi(x) = shuffle(x ^ r)) removes the artifact while
// remaining a valid permutation family. This bench quantifies the
// effect on overall match quality and on the affected subpopulation
// (ranges with lo == 0).
#include <cstdlib>

#include "bench/bench_util.h"
#include "bench/bench_args.h"

namespace p2prange {
namespace bench {
namespace {

void Measure(bool pre_xor, size_t n, TablePrinter* table) {
  SystemConfig cfg;
  cfg.num_peers = 500;
  cfg.lsh = LshParams::Paper(HashFamilyType::kApproxMinwise, 42);
  cfg.lsh.pre_xor_mask = pre_xor;
  cfg.seed = 42;

  auto sys = RangeCacheSystem::Make(
      cfg, MakeNumbersCatalog(10, kDomainLo, kDomainHi, 1));
  CHECK(sys.ok()) << sys.status();
  UniformRangeGenerator gen(kDomainLo, kDomainHi, 4242);
  Rng mix_rng(515);
  const size_t warmup = n / 5;
  Summary all_j, zero_j;
  size_t zero_bad = 0, zero_total = 0;
  for (size_t i = 0; i < n; ++i) {
    // 10% of queries are anchored at the domain minimum so that the
    // affected subpopulation is large enough to measure.
    Range q = gen.Next();
    if (mix_rng.NextBernoulli(0.1)) q = Range(kDomainLo, q.hi());
    auto outcome = sys->LookupRange(PartitionKey{"Numbers", "key", q});
    CHECK(outcome.ok());
    if (i < warmup) continue;
    const double j = outcome->match ? outcome->match->jaccard : 0.0;
    all_j.Add(j);
    if (q.lo() == kDomainLo) {
      ++zero_total;
      zero_j.Add(j);
      // A *bad* zero-anchored match: found something, but dissimilar —
      // the signature-0 bucket lumping all [0, x] ranges together.
      if (outcome->match && j < 0.5) ++zero_bad;
    }
  }
  table->AddRow(
      {pre_xor ? "with pre-XOR" : "paper (no mask)",
       TablePrinter::Fmt(all_j.Mean(), 3), TablePrinter::Fmt(zero_j.Mean(), 3),
       TablePrinter::Fmt(static_cast<uint64_t>(zero_total)),
       TablePrinter::Fmt(zero_total == 0
                             ? 0.0
                             : 100.0 * static_cast<double>(zero_bad) /
                                   static_cast<double>(zero_total),
                         1)});
}

void Run(size_t n) {
  TablePrinter table({"variant", "mean match jaccard (all)",
                      "mean jaccard (lo==0 ranges)", "# lo==0 ranges",
                      "% lo==0 matched with sim<0.5"});
  Measure(false, n, &table);
  Measure(true, n, &table);
  table.Print(std::cout,
              "Ablation: bit-shuffle fixed point at 0 and the pre-XOR fix (" +
                  std::to_string(n) + " queries, approx min-wise)");
}

}  // namespace
}  // namespace bench
}  // namespace p2prange

int main(int argc, char** argv) {
  const size_t n = p2prange::bench::CountFromArgs(argc, argv, 6000, 300);
  p2prange::bench::Run(n);
  return 0;
}
