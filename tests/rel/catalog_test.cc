#include "rel/catalog.h"

#include <gtest/gtest.h>

#include "rel/generator.h"

namespace p2prange {
namespace {

TEST(CatalogTest, RegisterAndGetSchema) {
  Catalog cat;
  ASSERT_TRUE(cat.RegisterSchema("T", Schema({Field{"a", ValueType::kInt64,
                                                    AttributeDomain{0, 9}}}))
                  .ok());
  EXPECT_TRUE(cat.HasRelation("T"));
  EXPECT_FALSE(cat.HasRelation("U"));
  auto schema = cat.GetSchema("T");
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->num_fields(), 1u);
  EXPECT_TRUE(cat.GetSchema("U").status().IsNotFound());
  EXPECT_TRUE(cat.RegisterSchema("T", Schema()).IsAlreadyExists());
}

TEST(CatalogTest, InstallBaseDataValidatesSchema) {
  Catalog cat;
  const Schema schema({Field{"a", ValueType::kInt64, AttributeDomain{0, 9}}});
  ASSERT_TRUE(cat.RegisterSchema("T", schema).ok());
  EXPECT_TRUE(cat.InstallBaseData(Relation("U", schema)).IsNotFound());
  EXPECT_TRUE(
      cat.InstallBaseData(Relation("T", Schema())).IsInvalidArgument());
  ASSERT_TRUE(cat.InstallBaseData(Relation("T", schema)).ok());
  auto data = cat.GetBaseData("T");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ((*data)->num_rows(), 0u);
}

TEST(CatalogTest, GetDomainRequiresDeclaredDomain) {
  Catalog cat = MakeMedicalCatalog();
  auto age = cat.GetDomain("Patient", "age");
  ASSERT_TRUE(age.ok());
  EXPECT_EQ(age->lo, 0);
  EXPECT_EQ(age->hi, 120);
  EXPECT_TRUE(cat.GetDomain("Patient", "name").status().IsInvalidArgument());
  EXPECT_TRUE(cat.GetDomain("Patient", "nope").status().IsNotFound());
  EXPECT_TRUE(cat.GetDomain("Nope", "x").status().IsNotFound());
}

TEST(CatalogTest, MedicalCatalogHasPaperSchema) {
  Catalog cat = MakeMedicalCatalog();
  for (const char* rel : {"Patient", "Diagnosis", "Physician", "Prescription"}) {
    EXPECT_TRUE(cat.HasRelation(rel)) << rel;
  }
  auto diag = cat.GetSchema("Diagnosis");
  ASSERT_TRUE(diag.ok());
  EXPECT_TRUE(diag->HasField("patient_id"));
  EXPECT_TRUE(diag->HasField("diagnosis"));
  EXPECT_TRUE(diag->HasField("physician_id"));
  EXPECT_TRUE(diag->HasField("prescription_id"));
  auto date = cat.GetDomain("Prescription", "date");
  ASSERT_TRUE(date.ok());
  EXPECT_EQ(date->lo, MakeDate(1990, 1, 1).days);
}

TEST(GeneratorTest, PopulatesAllRelationsWithRequestedSizes) {
  Catalog cat = MakeMedicalCatalog();
  MedicalDataSpec spec;
  spec.num_patients = 100;
  spec.num_physicians = 10;
  spec.num_prescriptions = 150;
  spec.num_diagnoses = 200;
  ASSERT_TRUE(PopulateMedicalData(spec, &cat).ok());
  EXPECT_EQ((*cat.GetBaseData("Patient"))->num_rows(), 100u);
  EXPECT_EQ((*cat.GetBaseData("Physician"))->num_rows(), 10u);
  EXPECT_EQ((*cat.GetBaseData("Prescription"))->num_rows(), 150u);
  EXPECT_EQ((*cat.GetBaseData("Diagnosis"))->num_rows(), 200u);
}

TEST(GeneratorTest, DiagnosesAreReferentiallyConsistent) {
  Catalog cat = MakeMedicalCatalog();
  MedicalDataSpec spec;
  spec.num_patients = 50;
  spec.num_physicians = 5;
  spec.num_prescriptions = 60;
  spec.num_diagnoses = 100;
  ASSERT_TRUE(PopulateMedicalData(spec, &cat).ok());
  const Relation* diag = *cat.GetBaseData("Diagnosis");
  for (const Row& row : diag->rows()) {
    EXPECT_GE(row[0].AsInt(), 0);
    EXPECT_LT(row[0].AsInt(), 50);  // patient_id
    EXPECT_GE(row[2].AsInt(), 0);
    EXPECT_LT(row[2].AsInt(), 5);  // physician_id
    EXPECT_GE(row[3].AsInt(), 0);
    EXPECT_LT(row[3].AsInt(), 60);  // prescription_id
  }
}

TEST(GeneratorTest, DeterministicForSeed) {
  Catalog a = MakeMedicalCatalog(), b = MakeMedicalCatalog();
  MedicalDataSpec spec;
  spec.num_patients = 20;
  spec.num_diagnoses = 20;
  spec.num_prescriptions = 20;
  spec.num_physicians = 4;
  ASSERT_TRUE(PopulateMedicalData(spec, &a).ok());
  ASSERT_TRUE(PopulateMedicalData(spec, &b).ok());
  const Relation* pa = *a.GetBaseData("Patient");
  const Relation* pb = *b.GetBaseData("Patient");
  ASSERT_EQ(pa->num_rows(), pb->num_rows());
  for (size_t i = 0; i < pa->num_rows(); ++i) {
    EXPECT_EQ(pa->rows()[i], pb->rows()[i]);
  }
}

TEST(GeneratorTest, PatientAgesWithinDomain) {
  Catalog cat = MakeMedicalCatalog();
  ASSERT_TRUE(PopulateMedicalData(MedicalDataSpec{}, &cat).ok());
  auto domain = cat.GetDomain("Patient", "age");
  ASSERT_TRUE(domain.ok());
  const Relation* patients = *cat.GetBaseData("Patient");
  for (const Row& row : patients->rows()) {
    EXPECT_GE(row[2].AsInt(), domain->lo);
    EXPECT_LE(row[2].AsInt(), domain->hi);
  }
}

TEST(GeneratorTest, NumbersCatalog) {
  Catalog cat = MakeNumbersCatalog(500, 0, 1000, 3);
  ASSERT_TRUE(cat.HasRelation("Numbers"));
  const Relation* rows = *cat.GetBaseData("Numbers");
  EXPECT_EQ(rows->num_rows(), 500u);
  for (const Row& row : rows->rows()) {
    EXPECT_GE(row[0].AsInt(), 0);
    EXPECT_LE(row[0].AsInt(), 1000);
  }
  auto domain = cat.GetDomain("Numbers", "key");
  ASSERT_TRUE(domain.ok());
  EXPECT_EQ(domain->hi, 1000);
}

}  // namespace
}  // namespace p2prange
