#include "rel/relation.h"

#include <gtest/gtest.h>

namespace p2prange {
namespace {

Relation People() {
  Schema schema({Field{"id", ValueType::kInt64, AttributeDomain{0, 100}},
                 Field{"name", ValueType::kString, std::nullopt},
                 Field{"age", ValueType::kInt64, AttributeDomain{0, 120}}});
  Relation r("People", schema);
  EXPECT_TRUE(r.Append({Value(int64_t{1}), Value("ann"), Value(int64_t{30})}).ok());
  EXPECT_TRUE(r.Append({Value(int64_t{2}), Value("bob"), Value(int64_t{45})}).ok());
  EXPECT_TRUE(r.Append({Value(int64_t{3}), Value("cal"), Value(int64_t{30})}).ok());
  EXPECT_TRUE(r.Append({Value(int64_t{4}), Value("dee"), Value(int64_t{60})}).ok());
  return r;
}

TEST(RelationTest, AppendChecksArity) {
  Relation r = People();
  EXPECT_TRUE(r.Append({Value(int64_t{9})}).IsInvalidArgument());
}

TEST(RelationTest, AppendChecksTypes) {
  Relation r = People();
  EXPECT_TRUE(
      r.Append({Value("wrong"), Value("x"), Value(int64_t{1})}).IsInvalidArgument());
}

TEST(RelationTest, SelectOrdinalRangeInclusive) {
  const Relation r = People();
  auto sel = r.SelectOrdinalRange("age", 30, 45);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->num_rows(), 3u);
  auto none = r.SelectOrdinalRange("age", 90, 100);
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none->num_rows(), 0u);
}

TEST(RelationTest, SelectOrdinalRangeUnknownAttribute) {
  EXPECT_TRUE(
      People().SelectOrdinalRange("height", 0, 1).status().IsNotFound());
}

TEST(RelationTest, SelectOrdinalRangeOnStringFails) {
  EXPECT_TRUE(
      People().SelectOrdinalRange("name", 0, 1).status().IsInvalidArgument());
}

TEST(RelationTest, SelectEquals) {
  const Relation r = People();
  auto sel = r.SelectEquals("name", Value("bob"));
  ASSERT_TRUE(sel.ok());
  ASSERT_EQ(sel->num_rows(), 1u);
  EXPECT_EQ(sel->rows()[0][0].AsInt(), 2);
  auto ages = r.SelectEquals("age", Value(int64_t{30}));
  ASSERT_TRUE(ages.ok());
  EXPECT_EQ(ages->num_rows(), 2u);
}

TEST(RelationTest, SelectionPreservesSchemaAndName) {
  const Relation r = People();
  auto sel = r.SelectOrdinalRange("age", 0, 120);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->name(), "People");
  EXPECT_EQ(sel->schema(), r.schema());
  EXPECT_EQ(sel->num_rows(), r.num_rows());
}

TEST(RelationTest, ToStringTruncates) {
  const std::string s = People().ToString(/*max_rows=*/2);
  EXPECT_NE(s.find("People"), std::string::npos);
  EXPECT_NE(s.find("... (2 more)"), std::string::npos);
}

}  // namespace
}  // namespace p2prange
