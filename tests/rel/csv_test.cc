#include "rel/csv.h"

#include <gtest/gtest.h>

#include <sstream>

#include "rel/generator.h"

namespace p2prange {
namespace {

Schema TestSchema() {
  return Schema({Field{"id", ValueType::kInt64, AttributeDomain{0, 1000}},
                 Field{"name", ValueType::kString, std::nullopt},
                 Field{"score", ValueType::kDouble, std::nullopt},
                 Field{"when", ValueType::kDate, std::nullopt}});
}

TEST(CsvTest, RoundTripsTypedRows) {
  Relation rel("T", TestSchema());
  ASSERT_TRUE(rel.Append({Value(int64_t{1}), Value("plain"), Value(2.5),
                          Value(MakeDate(2001, 2, 3))})
                  .ok());
  ASSERT_TRUE(rel.Append({Value(int64_t{-7}), Value("comma, inside"),
                          Value(-0.125), Value(MakeDate(1999, 12, 31))})
                  .ok());
  ASSERT_TRUE(rel.Append({Value(int64_t{0}), Value("quote \" and\nnewline"),
                          Value(0.0), Value(MakeDate(1970, 1, 1))})
                  .ok());
  std::stringstream buf;
  ASSERT_TRUE(WriteCsv(rel, &buf).ok());
  auto back = ReadCsv("T", TestSchema(), &buf);
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->num_rows(), rel.num_rows());
  for (size_t i = 0; i < rel.num_rows(); ++i) {
    EXPECT_EQ(back->rows()[i], rel.rows()[i]) << "row " << i;
  }
}

TEST(CsvTest, RoundTripsGeneratedMedicalData) {
  Catalog cat = MakeMedicalCatalog();
  MedicalDataSpec spec;
  spec.num_patients = 80;
  ASSERT_TRUE(PopulateMedicalData(spec, &cat).ok());
  const Relation* patients = *cat.GetBaseData("Patient");
  std::stringstream buf;
  ASSERT_TRUE(WriteCsv(*patients, &buf).ok());
  auto back = ReadCsv("Patient", patients->schema(), &buf);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->num_rows(), patients->num_rows());
  for (size_t i = 0; i < back->num_rows(); ++i) {
    EXPECT_EQ(back->rows()[i], patients->rows()[i]);
  }
}

TEST(CsvTest, HeaderIsValidated) {
  std::stringstream wrong_name("id,WRONG,score,when\n");
  EXPECT_TRUE(
      ReadCsv("T", TestSchema(), &wrong_name).status().IsInvalidArgument());
  std::stringstream wrong_arity("id,name\n");
  EXPECT_TRUE(
      ReadCsv("T", TestSchema(), &wrong_arity).status().IsInvalidArgument());
  std::stringstream empty("");
  EXPECT_TRUE(ReadCsv("T", TestSchema(), &empty).status().IsInvalidArgument());
}

TEST(CsvTest, TypeErrorsAreReported) {
  const std::string header = "id,name,score,when\n";
  std::stringstream bad_int(header + "xx,a,1.0,2001-01-01\n");
  EXPECT_TRUE(ReadCsv("T", TestSchema(), &bad_int).status().IsInvalidArgument());
  std::stringstream bad_double(header + "1,a,nope,2001-01-01\n");
  EXPECT_TRUE(
      ReadCsv("T", TestSchema(), &bad_double).status().IsInvalidArgument());
  std::stringstream bad_date(header + "1,a,1.0,not-a-date!!\n");
  EXPECT_TRUE(ReadCsv("T", TestSchema(), &bad_date).status().IsInvalidArgument());
}

TEST(CsvTest, ArityErrorsAreReported) {
  std::stringstream bad("id,name,score,when\n1,a,1.0\n");
  EXPECT_TRUE(ReadCsv("T", TestSchema(), &bad).status().IsInvalidArgument());
}

TEST(CsvTest, UnterminatedQuoteRejected) {
  std::stringstream bad("id,name,score,when\n1,\"oops,1.0,2001-01-01\n");
  EXPECT_TRUE(ReadCsv("T", TestSchema(), &bad).status().IsInvalidArgument());
}

TEST(CsvTest, ToleratesCrLfAndMissingTrailingNewline) {
  std::stringstream input("id,name,score,when\r\n5,bob,1.5,2002-02-02");
  auto rel = ReadCsv("T", TestSchema(), &input);
  ASSERT_TRUE(rel.ok()) << rel.status();
  ASSERT_EQ(rel->num_rows(), 1u);
  EXPECT_EQ(rel->rows()[0][0].AsInt(), 5);
  EXPECT_EQ(rel->rows()[0][3], Value(MakeDate(2002, 2, 2)));
}

TEST(CsvTest, EmptyRelationWritesHeaderOnly) {
  Relation rel("T", TestSchema());
  std::stringstream buf;
  ASSERT_TRUE(WriteCsv(rel, &buf).ok());
  EXPECT_EQ(buf.str(), "id,name,score,when\n");
  auto back = ReadCsv("T", TestSchema(), &buf);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 0u);
}

}  // namespace
}  // namespace p2prange
