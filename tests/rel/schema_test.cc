#include "rel/schema.h"

#include <gtest/gtest.h>

namespace p2prange {
namespace {

Schema TestSchema() {
  return Schema({Field{"id", ValueType::kInt64, AttributeDomain{0, 1000}},
                 Field{"name", ValueType::kString, std::nullopt},
                 Field{"when", ValueType::kDate,
                       AttributeDomain{MakeDate(2000, 1, 1).days,
                                       MakeDate(2003, 1, 1).days}}});
}

TEST(SchemaTest, FieldIndexLookups) {
  const Schema s = TestSchema();
  EXPECT_EQ(s.num_fields(), 3u);
  auto idx = s.FieldIndex("name");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 1u);
  EXPECT_TRUE(s.FieldIndex("missing").status().IsNotFound());
  EXPECT_TRUE(s.HasField("when"));
  EXPECT_FALSE(s.HasField("nope"));
}

TEST(SchemaTest, EqualityIncludesDomains) {
  EXPECT_EQ(TestSchema(), TestSchema());
  Schema other({Field{"id", ValueType::kInt64, AttributeDomain{0, 999}}});
  EXPECT_NE(TestSchema(), other);
}

TEST(SchemaTest, ToStringListsFields) {
  EXPECT_EQ(TestSchema().ToString(), "(id: int64, name: string, when: date)");
}

TEST(AttributeDomainTest, EncodeRangeOffsetsFromDomainLo) {
  const AttributeDomain d{100, 300};
  auto r = d.EncodeRange(150, 250);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, Range(50, 150));
  EXPECT_EQ(d.DecodeLo(*r), 150);
  EXPECT_EQ(d.DecodeHi(*r), 250);
}

TEST(AttributeDomainTest, EncodeHandlesNegativeDomains) {
  const AttributeDomain d{-500, 500};
  auto r = d.EncodeRange(-100, 100);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, Range(400, 600));
  EXPECT_EQ(d.DecodeLo(*r), -100);
  EXPECT_EQ(d.DecodeHi(*r), 100);
}

TEST(AttributeDomainTest, EncodeRejectsOutOfDomain) {
  const AttributeDomain d{0, 100};
  EXPECT_TRUE(d.EncodeRange(-1, 50).status().IsOutOfRange());
  EXPECT_TRUE(d.EncodeRange(50, 101).status().IsOutOfRange());
  EXPECT_TRUE(d.EncodeRange(60, 50).status().IsInvalidArgument());
}

TEST(AttributeDomainTest, EncodeClampedRange) {
  const AttributeDomain d{0, 100};
  auto r = d.EncodeClampedRange(-50, 150);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, Range(0, 100));
  auto partial = d.EncodeClampedRange(90, 200);
  ASSERT_TRUE(partial.ok());
  EXPECT_EQ(*partial, Range(90, 100));
  EXPECT_TRUE(d.EncodeClampedRange(200, 300).status().IsOutOfRange());
}

TEST(AttributeDomainTest, RejectsDomainsWiderThan32Bits) {
  const AttributeDomain d{0, 1LL << 40};
  EXPECT_TRUE(d.EncodeRange(0, 1LL << 33).status().IsOutOfRange());
  // Narrow selections near the low end still work... they must not:
  // the encoding must be stable for the whole domain, so any range
  // whose offset exceeds 32 bits fails, and small ones succeed.
  EXPECT_TRUE(d.EncodeRange(0, 10).ok());
}

TEST(AttributeDomainTest, WidthAndFullDomainEncoding) {
  const AttributeDomain d{1, 1001};
  EXPECT_EQ(d.width(), 1001u);
  auto full = d.EncodeRange(1, 1001);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(*full, Range(0, 1000));
}

TEST(AttributeDomainTest, DateDomainEncodesDayOffsets) {
  const AttributeDomain d{MakeDate(2000, 1, 1).days, MakeDate(2002, 12, 31).days};
  auto r = d.EncodeRange(MakeDate(2000, 1, 1).days, MakeDate(2000, 1, 31).days);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, Range(0, 30));
}

}  // namespace
}  // namespace p2prange
