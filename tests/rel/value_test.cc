#include "rel/value.h"

#include <gtest/gtest.h>

namespace p2prange {
namespace {

TEST(DateTest, KnownEpochDays) {
  EXPECT_EQ(MakeDate(1970, 1, 1).days, 0);
  EXPECT_EQ(MakeDate(1970, 1, 2).days, 1);
  EXPECT_EQ(MakeDate(1969, 12, 31).days, -1);
  EXPECT_EQ(MakeDate(2000, 1, 1).days, 10957);
  EXPECT_EQ(MakeDate(2000, 3, 1).days, 11017);  // 2000 was a leap year
}

TEST(DateTest, CivilRoundTripAcrossDecades) {
  // Property: ToCivil(FromCivil(y,m,d)) is the identity, including
  // leap days and month boundaries.
  for (int year : {1900, 1970, 1999, 2000, 2001, 2004, 2100}) {
    for (int month : {1, 2, 3, 12}) {
      for (int day : {1, 28, 29}) {
        if (month == 2 && day == 29) {
          const bool leap =
              (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
          if (!leap) continue;
        }
        const Date d = MakeDate(year, month, day);
        int y, m, dd;
        DateToCivil(d, &y, &m, &dd);
        EXPECT_EQ(y, year);
        EXPECT_EQ(m, month);
        EXPECT_EQ(dd, day);
      }
    }
  }
}

TEST(DateTest, ConsecutiveDaysAreConsecutive) {
  // Sweep four years around a leap boundary one day at a time.
  Date d = MakeDate(1999, 1, 1);
  int y, m, dd;
  for (int i = 0; i < 1500; ++i) {
    DateToCivil(Date{d.days + i}, &y, &m, &dd);
    EXPECT_EQ(MakeDate(y, m, dd).days, d.days + i);
  }
}

TEST(DateTest, ParseValid) {
  auto d = ParseDate("2002-12-31");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, MakeDate(2002, 12, 31));
  EXPECT_EQ(DateToString(*d), "2002-12-31");
}

TEST(DateTest, ParseRejectsMalformed) {
  EXPECT_FALSE(ParseDate("").ok());
  EXPECT_FALSE(ParseDate("2002/12/31").ok());
  EXPECT_FALSE(ParseDate("02-12-31").ok());
  EXPECT_FALSE(ParseDate("2002-13-01").ok());
  EXPECT_FALSE(ParseDate("2002-00-10").ok());
  EXPECT_FALSE(ParseDate("2002-12-32").ok());
  EXPECT_FALSE(ParseDate("2002-12-3x").ok());
  EXPECT_FALSE(ParseDate("not-a-date!").ok());
}

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value(int64_t{5}).type(), ValueType::kInt64);
  EXPECT_EQ(Value(2.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value("hi").type(), ValueType::kString);
  EXPECT_EQ(Value(MakeDate(2000, 1, 1)).type(), ValueType::kDate);
  EXPECT_EQ(Value(int64_t{5}).AsInt(), 5);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("hi").AsString(), "hi");
}

TEST(ValueTest, OrdinalForIntAndDate) {
  auto i = Value(int64_t{-7}).Ordinal();
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(*i, -7);
  auto d = Value(MakeDate(1970, 1, 11)).Ordinal();
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, 10);
  EXPECT_TRUE(Value("x").Ordinal().status().IsInvalidArgument());
  EXPECT_TRUE(Value(1.5).Ordinal().status().IsInvalidArgument());
}

TEST(ValueTest, EqualityIsTypeAware) {
  EXPECT_EQ(Value(int64_t{1}), Value(int64_t{1}));
  EXPECT_NE(Value(int64_t{1}), Value(1.0));  // int vs double
  EXPECT_NE(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_EQ(Value("a"), Value("a"));
  EXPECT_EQ(Value(MakeDate(2000, 1, 1)), Value(MakeDate(2000, 1, 1)));
}

TEST(ValueTest, LessThanSameType) {
  EXPECT_TRUE(Value(int64_t{1}).LessThan(Value(int64_t{2})));
  EXPECT_FALSE(Value(int64_t{2}).LessThan(Value(int64_t{1})));
  EXPECT_TRUE(Value("apple").LessThan(Value("banana")));
  EXPECT_TRUE(Value(MakeDate(1999, 1, 1)).LessThan(Value(MakeDate(2000, 1, 1))));
  EXPECT_TRUE(Value(1.5).LessThan(Value(2.5)));
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value("glaucoma").ToString(), "glaucoma");
  EXPECT_EQ(Value(MakeDate(2002, 12, 31)).ToString(), "2002-12-31");
}

TEST(ValueTest, HashConsistentWithEquality) {
  ValueHash h;
  EXPECT_EQ(h(Value(int64_t{5})), h(Value(int64_t{5})));
  EXPECT_EQ(h(Value("key")), h(Value("key")));
  EXPECT_EQ(h(Value(MakeDate(2001, 2, 3))), h(Value(MakeDate(2001, 2, 3))));
  // Different payloads should (overwhelmingly) hash differently.
  EXPECT_NE(h(Value(int64_t{5})), h(Value(int64_t{6})));
}

}  // namespace
}  // namespace p2prange
