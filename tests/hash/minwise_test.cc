#include "hash/minwise.h"

#include <gtest/gtest.h>

#include <limits>
#include <set>
#include <vector>

#include "common/random.h"

namespace p2prange {
namespace {

class MinwiseFamilyTest : public ::testing::TestWithParam<HashFamilyType> {};

INSTANTIATE_TEST_SUITE_P(AllFamilies, MinwiseFamilyTest,
                         ::testing::Values(HashFamilyType::kMinwise,
                                           HashFamilyType::kApproxMinwise,
                                           HashFamilyType::kLinear),
                         [](const auto& name_info) {
                           switch (name_info.param) {
                             case HashFamilyType::kMinwise:
                               return "Minwise";
                             case HashFamilyType::kApproxMinwise:
                               return "ApproxMinwise";
                             case HashFamilyType::kLinear:
                               return "Linear";
                           }
                           return "Unknown";
                         });

TEST_P(MinwiseFamilyTest, HashRangeIsMinOverElements) {
  Rng rng(11);
  auto fn = MakeHashFunction(GetParam(), rng);
  const Range q(100, 180);
  uint32_t expected = std::numeric_limits<uint32_t>::max();
  for (uint32_t x = q.lo(); x <= q.hi(); ++x) {
    expected = std::min(expected, fn->Permute(x));
  }
  EXPECT_EQ(fn->HashRange(q), expected);
}

TEST_P(MinwiseFamilyTest, HashSetMatchesHashRangeOnContiguousSets) {
  Rng rng(13);
  auto fn = MakeHashFunction(GetParam(), rng);
  const Range q(40, 60);
  std::vector<uint32_t> elements;
  for (uint32_t x = q.lo(); x <= q.hi(); ++x) elements.push_back(x);
  EXPECT_EQ(fn->HashSet(elements), fn->HashRange(q));
}

// An empty set has no minimum; a release build used to return
// UINT32_MAX silently, poisoning XOR group signatures. Now a hard
// CHECK in every build mode.
TEST_P(MinwiseFamilyTest, HashSetOfEmptySpanDies) {
  Rng rng(14);
  auto fn = MakeHashFunction(GetParam(), rng);
  EXPECT_DEATH(fn->HashSet({}), "empty set");
}

TEST_P(MinwiseFamilyTest, KernelHashRangeMatchesNaive) {
  Rng rng(15);
  auto fn = MakeHashFunction(GetParam(), rng);
  for (const Range& q : {Range(0, 0), Range(0, 999), Range(4000, 4000),
                         Range(123456, 125000)}) {
    EXPECT_EQ(fn->HashRange(q), fn->HashRangeNaive(q)) << q.ToString();
  }
}

TEST_P(MinwiseFamilyTest, SingletonRangeHashesToPermutedElement) {
  Rng rng(17);
  auto fn = MakeHashFunction(GetParam(), rng);
  EXPECT_EQ(fn->HashRange(Range(42, 42)), fn->Permute(42));
}

TEST_P(MinwiseFamilyTest, DeterministicForSameSeed) {
  Rng a(19), b(19);
  auto f1 = MakeHashFunction(GetParam(), a);
  auto f2 = MakeHashFunction(GetParam(), b);
  for (uint32_t x = 0; x < 500; ++x) EXPECT_EQ(f1->Permute(x), f2->Permute(x));
}

TEST_P(MinwiseFamilyTest, PermuteIsInjectiveOnSample) {
  Rng rng(23);
  auto fn = MakeHashFunction(GetParam(), rng);
  std::set<uint32_t> images;
  for (uint32_t x = 0; x < 5000; ++x) images.insert(fn->Permute(x));
  EXPECT_EQ(images.size(), 5000u);
}

TEST_P(MinwiseFamilyTest, IdenticalRangesAlwaysCollide) {
  Rng rng(29);
  for (int trial = 0; trial < 20; ++trial) {
    auto fn = MakeHashFunction(GetParam(), rng);
    EXPECT_EQ(fn->HashRange(Range(30, 50)), fn->HashRange(Range(30, 50)));
  }
}

TEST_P(MinwiseFamilyTest, FamilyAccessorMatches) {
  Rng rng(31);
  auto fn = MakeHashFunction(GetParam(), rng);
  EXPECT_EQ(fn->family(), GetParam());
}

// The defining min-wise property is Pr[h(Q) = h(R)] = Jaccard(Q, R).
// Only an ideal family achieves it exactly. Broder's linear
// permutations come close for contiguous ranges; the paper's §3.3
// bit-shuffle families are GF(2)-linear bit-position permutations and
// only track Jaccard *monotonically* (they are heuristics — the very
// reason the paper evaluates all three). The test pins down exactly
// that: linear ~= Jaccard; all families monotone in Jaccard with the
// right endpoints.
TEST_P(MinwiseFamilyTest, CollisionProbabilityTracksJaccard) {
  Rng rng(37);
  struct Case {
    Range q, r;
  };
  // Note: ranges deliberately avoid element 0 — every bit-position
  // permutation (the paper's §3.3 construction) fixes 0, so a range
  // containing 0 always hashes to 0. See the FixedPointArtifact test.
  const Case cases[] = {
      {Range(100, 199), Range(100, 199)},  // sim 1.0
      {Range(100, 199), Range(110, 209)},  // sim 90/110 ~= 0.818
      {Range(100, 199), Range(150, 249)},  // sim 50/150 ~= 0.333
      {Range(100, 199), Range(300, 399)},  // sim 0
  };
  const int kTrials = 400;
  std::vector<double> measured;
  for (const Case& c : cases) {
    int collisions = 0;
    for (int t = 0; t < kTrials; ++t) {
      auto fn = MakeHashFunction(GetParam(), rng);
      if (fn->HashRange(c.q) == fn->HashRange(c.r)) ++collisions;
    }
    measured.push_back(static_cast<double>(collisions) / kTrials);
    if (GetParam() == HashFamilyType::kLinear) {
      // A proper (approximately) min-wise family: near-Jaccard.
      EXPECT_NEAR(measured.back(), c.q.Jaccard(c.r), 0.1)
          << "Q=" << c.q.ToString() << " R=" << c.r.ToString();
    }
  }
  // All families: exact endpoints and monotone decrease with Jaccard.
  EXPECT_DOUBLE_EQ(measured[0], 1.0);           // identical ranges
  EXPECT_LE(measured[3], 0.01);                 // disjoint ranges
  EXPECT_GE(measured[1], measured[2]);          // sim 0.82 >= sim 0.33
  EXPECT_GT(measured[1], measured[3] + 0.1);    // high sim clearly above zero
}

// Documents a real property of the paper's §3.3 construction: a bit-
// position permutation maps 0 to 0, so every range containing 0 hashes
// to 0 under every function of the (approx) min-wise families. Linear
// permutations do not share the artifact (π(0) = b).
TEST(MinwiseTest, FixedPointArtifactAtZero) {
  Rng rng(43);
  for (int trial = 0; trial < 10; ++trial) {
    MinwiseHashFunction full(rng);
    ApproxMinwiseHashFunction approx(rng);
    EXPECT_EQ(full.Permute(0), 0u);
    EXPECT_EQ(approx.Permute(0), 0u);
    EXPECT_EQ(full.HashRange(Range(0, 500)), 0u);
    EXPECT_EQ(approx.HashRange(Range(0, 73)), 0u);
  }
  Rng lin_rng(47);
  int nonzero = 0;
  for (int trial = 0; trial < 10; ++trial) {
    LinearHashFunction linear(lin_rng);
    if (linear.Permute(0) != 0u) ++nonzero;
  }
  EXPECT_GE(nonzero, 9);
}

TEST(LinearHashTest, KnownCoefficients) {
  const LinearHashFunction fn(/*a=*/3, /*b=*/10);
  EXPECT_EQ(fn.Permute(0), 10u);
  EXPECT_EQ(fn.Permute(1), 13u);
  EXPECT_EQ(fn.Permute(100), 310u);
}

TEST(LinearHashTest, WrapsModulo32BitPrime) {
  // a = p-1, x = 2: (p-1)*2 + 0 = 2p - 2 ≡ p - 2 (mod p).
  const LinearHashFunction fn(LinearHashFunction::kPrime - 1, 0);
  EXPECT_EQ(fn.Permute(2), static_cast<uint32_t>(LinearHashFunction::kPrime - 2));
}

TEST(LinearHashTest, NoOverflowAtDomainExtremes) {
  const LinearHashFunction fn(LinearHashFunction::kPrime - 1,
                              LinearHashFunction::kPrime - 1);
  // Exercise the largest products; result must stay below the prime.
  const uint32_t max32 = std::numeric_limits<uint32_t>::max();
  EXPECT_LT(fn.Permute(max32), LinearHashFunction::kPrime);
  EXPECT_LT(fn.Permute(max32 - 1), LinearHashFunction::kPrime);
}

TEST(LinearHashTest, MinOverRangeBeatsNaiveScan) {
  Rng rng(41);
  const LinearHashFunction fn(rng.NextInRange(1, LinearHashFunction::kPrime - 1),
                              rng.NextInRange(0, LinearHashFunction::kPrime - 1));
  const Range q(500, 700);
  uint32_t expected = std::numeric_limits<uint32_t>::max();
  for (uint32_t x = q.lo(); x <= q.hi(); ++x) {
    expected = std::min(expected, fn.Permute(x));
  }
  EXPECT_EQ(fn.HashRange(q), expected);
}

TEST(LinearHashTest, CompositeModulusDiesOnDirectConstruction) {
  // 1000001 = 101 * 9901: composite, and exactly the kind of "looks
  // like a big prime" value that slips in.
  EXPECT_DEATH(LinearHashFunction(3, 10, 1000001ULL), "composite");
  Rng rng(53);
  EXPECT_DEATH(LinearHashFunction(rng, /*prime=*/1000), "composite");
}

TEST(IsPrimeTest, AgreesWithNextPrimeAtLeast) {
  EXPECT_FALSE(IsPrime(0));
  EXPECT_FALSE(IsPrime(1));
  EXPECT_TRUE(IsPrime(2));
  EXPECT_TRUE(IsPrime(1009));
  EXPECT_FALSE(IsPrime(1000));
  EXPECT_TRUE(IsPrime(LinearHashFunction::kPrime));
  EXPECT_FALSE(IsPrime(4294967295ULL));
}

TEST(HashFamilyNameTest, NamesMatchPaperLegends) {
  EXPECT_STREQ(HashFamilyName(HashFamilyType::kMinwise), "min-wise independent");
  EXPECT_STREQ(HashFamilyName(HashFamilyType::kApproxMinwise),
               "approx. min-wise independent");
  EXPECT_STREQ(HashFamilyName(HashFamilyType::kLinear), "linear");
}

}  // namespace
}  // namespace p2prange
