#include "hash/sha1.h"

#include <gtest/gtest.h>

#include <string>

namespace p2prange {
namespace {

// FIPS 180-1 Appendix A/B test vectors plus widely published digests.
TEST(Sha1Test, EmptyString) {
  EXPECT_EQ(Sha1::ToHex(Sha1::Hash("")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1Test, Abc) {
  EXPECT_EQ(Sha1::ToHex(Sha1::Hash("abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1Test, FipsTwoBlockMessage) {
  EXPECT_EQ(Sha1::ToHex(Sha1::Hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1Test, QuickBrownFox) {
  EXPECT_EQ(Sha1::ToHex(Sha1::Hash("The quick brown fox jumps over the lazy dog")),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12");
}

TEST(Sha1Test, MillionAs) {
  Sha1 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(Sha1::ToHex(h.Finish()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1Test, IncrementalMatchesOneShot) {
  const std::string msg =
      "peer-to-peer systems with approximate range selection queries";
  for (size_t split = 0; split <= msg.size(); split += 7) {
    Sha1 h;
    h.Update(msg.substr(0, split));
    h.Update(msg.substr(split));
    EXPECT_EQ(h.Finish(), Sha1::Hash(msg)) << "split at " << split;
  }
}

TEST(Sha1Test, ByteAtATimeMatchesOneShot) {
  const std::string msg(129, 'x');  // crosses two block boundaries
  Sha1 h;
  for (char c : msg) h.Update(&c, 1);
  EXPECT_EQ(h.Finish(), Sha1::Hash(msg));
}

TEST(Sha1Test, ExactBlockSizedInputs) {
  // 55/56/63/64/65 bytes hit every padding branch.
  for (size_t len : {55u, 56u, 63u, 64u, 65u, 128u}) {
    const std::string msg(len, 'q');
    Sha1 incremental;
    incremental.Update(msg.substr(0, len / 2));
    incremental.Update(msg.substr(len / 2));
    EXPECT_EQ(incremental.Finish(), Sha1::Hash(msg)) << "len " << len;
  }
}

TEST(Sha1Test, ResetAllowsReuse) {
  Sha1 h;
  h.Update("first message");
  (void)h.Finish();
  h.Reset();
  h.Update("abc");
  EXPECT_EQ(Sha1::ToHex(h.Finish()),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1Test, Hash32IsLeading32BitsBigEndian) {
  // SHA-1("abc") = a9993e36...; leading 32 bits = 0xa9993e36.
  EXPECT_EQ(Sha1::Hash32("abc"), 0xa9993e36u);
  EXPECT_EQ(Sha1::Hash32(""), 0xda39a3eeu);
}

TEST(Sha1Test, DistinctAddressesGetDistinctIds) {
  // Smoke check that node-id derivation separates similar addresses.
  EXPECT_NE(Sha1::Hash32("10.0.0.1:5000"), Sha1::Hash32("10.0.0.1:5001"));
  EXPECT_NE(Sha1::Hash32("10.0.0.1:5000"), Sha1::Hash32("10.0.0.2:5000"));
}

}  // namespace
}  // namespace p2prange
