#include "hash/lsh.h"

#include <gtest/gtest.h>

#include <cmath>

namespace p2prange {
namespace {

TEST(LshParamsTest, PaperConfiguration) {
  const LshParams p = LshParams::Paper(HashFamilyType::kApproxMinwise);
  EXPECT_EQ(p.k, 20);
  EXPECT_EQ(p.l, 5);
  EXPECT_EQ(p.family, HashFamilyType::kApproxMinwise);
}

TEST(LshSchemeTest, RejectsInvalidParams) {
  LshParams p;
  p.k = 0;
  EXPECT_TRUE(LshScheme::Make(p).status().IsInvalidArgument());
  p.k = 5;
  p.l = 0;
  EXPECT_TRUE(LshScheme::Make(p).status().IsInvalidArgument());
}

// Regression: a composite linear_prime used to be accepted silently,
// making the linear permutations non-bijective and skewing Figure 7.
TEST(LshSchemeTest, RejectsCompositeLinearPrime) {
  LshParams p = LshParams::Paper(HashFamilyType::kLinear);
  p.linear_prime = 1000;  // composite; the domain-sized prime is 1009
  const auto result = LshScheme::Make(p);
  ASSERT_TRUE(result.status().IsInvalidArgument());
  EXPECT_NE(result.status().ToString().find("1009"), std::string::npos)
      << "error should name the next prime: " << result.status().ToString();
  p.linear_prime = 0;
  EXPECT_TRUE(LshScheme::Make(p).status().IsInvalidArgument());
  p.linear_prime = 4294967295ULL;  // 2^32 - 1, composite
  EXPECT_TRUE(LshScheme::Make(p).status().IsInvalidArgument());
  // The two moduli the benches actually use remain accepted.
  p.linear_prime = 1009;
  EXPECT_TRUE(LshScheme::Make(p).ok());
  p.linear_prime = LinearHashFunction::kPrime;
  EXPECT_TRUE(LshScheme::Make(p).ok());
}

// Composite moduli are only a linear-family concern; the shuffle
// families ignore linear_prime entirely.
TEST(LshSchemeTest, LinearPrimeIgnoredForShuffleFamilies) {
  LshParams p = LshParams::Paper(HashFamilyType::kApproxMinwise);
  p.linear_prime = 1000;
  EXPECT_TRUE(LshScheme::Make(p).ok());
}

TEST(LshSchemeTest, ProducesLIdentifiers) {
  LshParams p;
  p.k = 4;
  p.l = 7;
  auto scheme = LshScheme::Make(p);
  ASSERT_TRUE(scheme.ok());
  EXPECT_EQ(scheme->Identifiers(Range(0, 10)).size(), 7u);
  EXPECT_EQ(scheme->num_functions(), 28);
}

TEST(LshSchemeTest, DeterministicForSeed) {
  LshParams p = LshParams::Paper(HashFamilyType::kApproxMinwise, /*seed=*/99);
  auto s1 = LshScheme::Make(p);
  auto s2 = LshScheme::Make(p);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s1->Identifiers(Range(30, 50)), s2->Identifiers(Range(30, 50)));
}

TEST(LshSchemeTest, DifferentSeedsGiveDifferentIdentifiers) {
  auto s1 = LshScheme::Make(LshParams::Paper(HashFamilyType::kApproxMinwise, 1));
  auto s2 = LshScheme::Make(LshParams::Paper(HashFamilyType::kApproxMinwise, 2));
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_NE(s1->Identifiers(Range(30, 50)), s2->Identifiers(Range(30, 50)));
}

TEST(LshSchemeTest, IdenticalRangesShareAllIdentifiers) {
  auto scheme = LshScheme::Make(LshParams::Paper(HashFamilyType::kMinwise, 3));
  ASSERT_TRUE(scheme.ok());
  EXPECT_EQ(scheme->Identifiers(Range(100, 200)),
            scheme->Identifiers(Range(100, 200)));
}

TEST(LshSchemeTest, GroupIdentifierMatchesIdentifiersVector) {
  auto scheme = LshScheme::Make(LshParams::Paper(HashFamilyType::kLinear, 5));
  ASSERT_TRUE(scheme.ok());
  const Range q(10, 90);
  const auto ids = scheme->Identifiers(q);
  for (int g = 0; g < scheme->l(); ++g) {
    EXPECT_EQ(scheme->GroupIdentifier(g, q), ids[g]);
  }
}

TEST(LshSchemeTest, CollisionProbabilityFormula) {
  // 1 - (1 - p^k)^l at known points.
  EXPECT_DOUBLE_EQ(LshScheme::CollisionProbability(1.0, 20, 5), 1.0);
  EXPECT_DOUBLE_EQ(LshScheme::CollisionProbability(0.0, 20, 5), 0.0);
  const double p9 = LshScheme::CollisionProbability(0.9, 20, 5);
  EXPECT_NEAR(p9, 1.0 - std::pow(1.0 - std::pow(0.9, 20), 5), 1e-12);
  // The paper's (k=20, l=5) choice approximates a step at 0.9:
  // clearly separated outcomes on either side of the step.
  EXPECT_GT(LshScheme::CollisionProbability(0.95, 20, 5), 0.85);
  EXPECT_LT(LshScheme::CollisionProbability(0.7, 20, 5), 0.01);
}

TEST(LshSchemeTest, CollisionProbabilityIsMonotoneInSimilarity) {
  double prev = -1.0;
  for (int i = 0; i <= 100; ++i) {
    const double sim = static_cast<double>(i) / 100.0;
    const double p = LshScheme::CollisionProbability(sim, 20, 5);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(LshSchemeTest, LargerKSharpensTheStep) {
  // At sub-threshold similarity, larger k suppresses collisions.
  EXPECT_GT(LshScheme::CollisionProbability(0.8, 5, 5),
            LshScheme::CollisionProbability(0.8, 40, 5));
  // At high similarity, larger l compensates.
  EXPECT_LT(LshScheme::CollisionProbability(0.95, 20, 1),
            LshScheme::CollisionProbability(0.95, 20, 10));
}

// Statistical: similar ranges share an identifier far more often than
// dissimilar ones, across independently seeded schemes.
TEST(LshSchemeTest, SimilarRangesCollideMoreOften) {
  int similar_hits = 0, dissimilar_hits = 0;
  const int kTrials = 60;
  for (int seed = 0; seed < kTrials; ++seed) {
    auto scheme =
        LshScheme::Make(LshParams::Paper(HashFamilyType::kMinwise, 1000 + seed));
    ASSERT_TRUE(scheme.ok());
    const auto q = scheme->Identifiers(Range(0, 999));
    const auto similar = scheme->Identifiers(Range(0, 979));    // sim ~0.98
    const auto dissimilar = scheme->Identifiers(Range(300, 699));  // sim 0.4
    auto shares_any = [](const std::vector<uint32_t>& a,
                         const std::vector<uint32_t>& b) {
      for (size_t i = 0; i < a.size(); ++i) {
        if (a[i] == b[i]) return true;  // same group, same identifier
      }
      return false;
    };
    if (shares_any(q, similar)) ++similar_hits;
    if (shares_any(q, dissimilar)) ++dissimilar_hits;
  }
  // sim 0.98: 1-(1-0.98^20)^5 ~= 0.92; sim 0.4: ~= 5.5e-8.
  EXPECT_GT(similar_hits, kTrials / 2);
  EXPECT_LE(dissimilar_hits, 1);
}

}  // namespace
}  // namespace p2prange
