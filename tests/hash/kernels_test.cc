// Differential-testing harness for the sublinear range min-hash
// kernels (hash/kernels.h): the kernels must be *bit-identical* to the
// naive element-by-element scan, because LSH signatures — and with
// them bucket placement and every reproduced figure — depend on exact
// hash values. Property tests pin the primitives; fuzz-style seeded
// sweeps pin kernel == naive over >= 10^5 random ranges per family,
// including domain-edge ranges at lo = 0 and hi = 2^32 - 1.
#include "hash/kernels.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "common/bit_utils.h"
#include "common/random.h"
#include "hash/bit_permutation.h"
#include "hash/lsh.h"
#include "hash/minwise.h"

namespace p2prange {
namespace {

constexpr uint32_t kDomainMax = std::numeric_limits<uint32_t>::max();

// ---------------------------------------------------------------------------
// NextMatchingPattern: the feasibility primitive of the GF(2) kernel.
// ---------------------------------------------------------------------------

// Brute-force oracle over the low 10-bit space.
std::optional<uint32_t> NextMatchingPatternBrute(uint32_t lo, uint32_t mask,
                                                 uint32_t value,
                                                 uint32_t space = 1u << 10) {
  for (uint32_t x = lo; x < space; ++x) {
    if ((x & mask) == value) return x;
  }
  return std::nullopt;
}

TEST(NextMatchingPatternTest, MatchesBruteForceOnSmallSpace) {
  Rng rng(101);
  for (int trial = 0; trial < 20000; ++trial) {
    const uint32_t lo = static_cast<uint32_t>(rng.NextBounded(1u << 10));
    const uint32_t mask = static_cast<uint32_t>(rng.NextBounded(1u << 10));
    const uint32_t value = static_cast<uint32_t>(rng.Next32()) & mask;
    const auto got = NextMatchingPattern(lo, mask, value);
    const auto want = NextMatchingPatternBrute(lo, mask, value);
    if (want.has_value()) {
      ASSERT_TRUE(got.has_value()) << "lo=" << lo << " mask=" << mask
                                   << " value=" << value;
      EXPECT_EQ(*got, *want) << "lo=" << lo << " mask=" << mask
                             << " value=" << value;
    } else if (got.has_value()) {
      // The oracle's space is truncated at 2^10; a result above it is
      // fine as long as it actually matches the pattern and bound.
      EXPECT_GE(*got, 1u << 10);
      EXPECT_EQ(*got & mask, value);
    }
  }
}

TEST(NextMatchingPatternTest, DomainEdges) {
  // Fully constrained: the only candidate is `value` itself.
  EXPECT_EQ(NextMatchingPattern(0, kDomainMax, 123u), 123u);
  EXPECT_EQ(NextMatchingPattern(124u, kDomainMax, 123u), std::nullopt);
  // Unconstrained: the next value is lo itself, at both extremes.
  EXPECT_EQ(NextMatchingPattern(0, 0, 0), 0u);
  EXPECT_EQ(NextMatchingPattern(kDomainMax, 0, 0), kDomainMax);
  // Top bit forced to 0 while lo has it set: infeasible.
  EXPECT_EQ(NextMatchingPattern(0x80000000u, 0x80000000u, 0), std::nullopt);
  // Top bit forced to 1 below lo: jump to the bit, clear the rest.
  EXPECT_EQ(NextMatchingPattern(5u, 0x80000000u, 0x80000000u), 0x80000000u);
}

TEST(NextMatchingPatternTest, ResultAlwaysValidOn32BitSamples) {
  Rng rng(103);
  for (int trial = 0; trial < 20000; ++trial) {
    const uint32_t lo = rng.Next32();
    const uint32_t mask = rng.Next32();
    const uint32_t value = rng.Next32() & mask;
    const auto got = NextMatchingPattern(lo, mask, value);
    if (!got.has_value()) continue;
    EXPECT_GE(*got, lo);
    EXPECT_EQ(*got & mask, value);
    // Minimality: no smaller match in [lo, got). Spot-check got-1 and
    // the pattern-cleared prefix instead of scanning (space is 2^32).
    if (*got > lo) {
      EXPECT_NE((*got - 1) & mask, value);
    }
  }
}

// ---------------------------------------------------------------------------
// Differential sweeps: kernel == naive, >= 10^5 random ranges/family.
// ---------------------------------------------------------------------------

struct SweepCase {
  HashFamilyType family;
  bool pre_xor;
  uint64_t linear_prime;
  const char* name;
};

class KernelSweepTest : public ::testing::TestWithParam<SweepCase> {};

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, KernelSweepTest,
    ::testing::Values(
        SweepCase{HashFamilyType::kMinwise, false, 0, "Minwise"},
        SweepCase{HashFamilyType::kMinwise, true, 0, "MinwisePreXor"},
        SweepCase{HashFamilyType::kApproxMinwise, false, 0, "ApproxMinwise"},
        SweepCase{HashFamilyType::kApproxMinwise, true, 0, "ApproxMinwisePreXor"},
        SweepCase{HashFamilyType::kLinear, false, LinearHashFunction::kPrime,
                  "LinearFullPrime"},
        SweepCase{HashFamilyType::kLinear, false, 1009, "LinearDomainPrime"}),
    [](const auto& name_info) { return name_info.param.name; });

// A range with width in [1, 256] whose placement mixes interior
// positions with the domain edges (lo = 0 and hi = 2^32 - 1), so the
// naive oracle stays affordable while the sweep still exercises the
// kernels' boundary handling.
Range RandomNarrowRange(Rng& rng) {
  const uint32_t width = static_cast<uint32_t>(rng.NextInRange(1, 256));
  const uint64_t coin = rng.NextBounded(16);
  if (coin == 0) return Range(0, width - 1);                     // at lo = 0
  if (coin == 1) return Range(kDomainMax - width + 1, kDomainMax);  // at hi max
  const uint32_t lo =
      static_cast<uint32_t>(rng.NextBounded(uint64_t{kDomainMax} - width + 2));
  return Range(lo, lo + width - 1);
}

// >= 10^5 random ranges per family parameterization, fresh functions
// every 1000 ranges, zero tolerated mismatches.
TEST_P(KernelSweepTest, KernelMatchesNaiveOver100kRandomRanges) {
  const SweepCase& c = GetParam();
  Rng rng(0xD1FFu ^ (static_cast<uint64_t>(c.family) << 8) ^
          static_cast<uint64_t>(c.pre_xor) ^ c.linear_prime);
  constexpr int kRanges = 100000;
  constexpr int kRangesPerFunction = 1000;
  std::unique_ptr<RangeHashFunction> fn;
  for (int i = 0; i < kRanges; ++i) {
    if (i % kRangesPerFunction == 0) {
      fn = MakeHashFunction(c.family, rng, c.pre_xor, c.linear_prime);
    }
    const Range q = RandomNarrowRange(rng);
    const uint32_t kernel = fn->HashRange(q);
    const uint32_t naive = fn->HashRangeNaive(q);
    ASSERT_EQ(kernel, naive)
        << "family=" << HashFamilyName(c.family) << " pre_xor=" << c.pre_xor
        << " q=" << q.ToString() << " at range #" << i;
  }
}

// Medium widths probe deeper recursion levels of the linear kernel and
// longer prefix descents of the GF(2) kernel.
TEST_P(KernelSweepTest, KernelMatchesNaiveOnMediumWidths) {
  const SweepCase& c = GetParam();
  Rng rng(0xBEEF ^ static_cast<uint64_t>(c.family));
  for (int i = 0; i < 200; ++i) {
    auto fn = MakeHashFunction(c.family, rng, c.pre_xor, c.linear_prime);
    const uint32_t width = static_cast<uint32_t>(rng.NextInRange(1000, 50000));
    const uint32_t lo =
        static_cast<uint32_t>(rng.NextBounded(uint64_t{kDomainMax} - width + 2));
    const Range q(lo, lo + width - 1);
    ASSERT_EQ(fn->HashRange(q), fn->HashRangeNaive(q))
        << "q=" << q.ToString();
  }
}

// ---------------------------------------------------------------------------
// Wide and full-domain ranges: the regression the naive scan could not
// survive (a [0, 2^32-1] query used to spin for ~4 billion iterations
// per function). Exact values are forced by bijectivity, so no oracle
// scan is needed; the whole test completes in milliseconds.
// ---------------------------------------------------------------------------

TEST_P(KernelSweepTest, FullDomainRangeHashesToZeroInstantly) {
  const SweepCase& c = GetParam();
  Rng rng(0xF00D ^ static_cast<uint64_t>(c.family));
  const Range full(0, kDomainMax);
  for (int i = 0; i < 25; ++i) {
    auto fn = MakeHashFunction(c.family, rng, c.pre_xor, c.linear_prime);
    // Any bijection of [0, 2^32) attains 0 somewhere; the linear
    // family covers every residue of [0, p) once the width reaches p.
    EXPECT_EQ(fn->HashRange(full), 0u);
  }
}

TEST(KernelWideRangeTest, AlmostFullDomainExactValues) {
  Rng rng(0xCAFE);
  const Range all_but_zero(1, kDomainMax);
  for (int i = 0; i < 25; ++i) {
    // Without the pre-XOR mask, a bit-position permutation fixes 0 and
    // maps [1, 2^32) onto [1, 2^32), so the min over x >= 1 is exactly 1.
    MinwiseHashFunction full(rng);
    ApproxMinwiseHashFunction approx(rng);
    EXPECT_EQ(full.HashRange(all_but_zero), 1u);
    EXPECT_EQ(approx.HashRange(all_but_zero), 1u);
    // Linear with the full 32-bit prime: [1, 2^32) still spans >= p
    // elements, hence every residue, hence 0.
    LinearHashFunction linear(rng);
    EXPECT_EQ(linear.HashRange(all_but_zero), 0u);
  }
}

TEST(KernelWideRangeTest, WideHalfDomainMatchesPermutedProbe) {
  // A width-2^31 range: far beyond any scannable size. Sanity-check the
  // kernel result is a lower bound actually attained nearby: the
  // kernel's value must be <= every probed element's hash.
  Rng rng(0x5EED);
  const Range q(1u << 30, (1u << 30) + (1u << 31));
  for (HashFamilyType family :
       {HashFamilyType::kMinwise, HashFamilyType::kApproxMinwise,
        HashFamilyType::kLinear}) {
    auto fn = MakeHashFunction(family, rng);
    const uint32_t kernel = fn->HashRange(q);
    for (int i = 0; i < 10000; ++i) {
      const uint32_t x = q.lo() + static_cast<uint32_t>(rng.NextBounded(q.size()));
      ASSERT_LE(kernel, fn->Permute(x)) << HashFamilyName(family);
    }
  }
}

// ---------------------------------------------------------------------------
// Scheme-level differentials: the batched identifier path must XOR the
// same per-function values the naive scan produces, across (k, l).
// ---------------------------------------------------------------------------

struct SchemeCase {
  int k;
  int l;
  HashFamilyType family;
  const char* name;
};

class KernelSchemeTest : public ::testing::TestWithParam<SchemeCase> {};

INSTANTIATE_TEST_SUITE_P(
    KlGrid, KernelSchemeTest,
    ::testing::Values(SchemeCase{1, 1, HashFamilyType::kApproxMinwise, "K1L1"},
                      SchemeCase{4, 7, HashFamilyType::kMinwise, "K4L7"},
                      SchemeCase{20, 5, HashFamilyType::kApproxMinwise,
                                 "PaperK20L5"},
                      SchemeCase{3, 2, HashFamilyType::kLinear, "LinearK3L2"}),
    [](const auto& name_info) { return name_info.param.name; });

TEST_P(KernelSchemeTest, BatchedIdentifiersMatchNaivePerFunctionXor) {
  const SchemeCase& c = GetParam();
  LshParams p;
  p.k = c.k;
  p.l = c.l;
  p.family = c.family;
  p.seed = 77;
  auto scheme = LshScheme::Make(p);
  ASSERT_TRUE(scheme.ok());
  Rng rng(0xABCD);
  for (int trial = 0; trial < 50; ++trial) {
    const Range q = RandomNarrowRange(rng);
    const auto ids = scheme->Identifiers(q);
    ASSERT_EQ(ids.size(), static_cast<size_t>(c.l));
    for (int g = 0; g < c.l; ++g) {
      uint32_t expected = 0;
      for (int i = 0; i < c.k; ++i) {
        expected ^= scheme->function(g, i).HashRangeNaive(q);
      }
      EXPECT_EQ(ids[g], bits::Mix32(expected))
          << "group " << g << " q=" << q.ToString();
      EXPECT_EQ(ids[g], scheme->GroupIdentifier(g, q));
    }
  }
}

TEST_P(KernelSchemeTest, IdentifiersIntoReusesBufferAndMatches) {
  const SchemeCase& c = GetParam();
  LshParams p;
  p.k = c.k;
  p.l = c.l;
  p.family = c.family;
  p.seed = 78;
  auto scheme = LshScheme::Make(p);
  ASSERT_TRUE(scheme.ok());
  std::vector<uint32_t> buffer(99, 0xFFFFFFFFu);  // stale oversized buffer
  scheme->IdentifiersInto(Range(500, 900), &buffer);
  EXPECT_EQ(buffer, scheme->Identifiers(Range(500, 900)));
}

// The kernels change no signature bits, so kernel-built schemes must
// reproduce the 1-(1-p^k)^l collision sigmoid exactly as well as the
// naive path: both estimates are computed in the same trials and must
// agree hit-for-hit, and both must track the analytic curve with the
// slack real linear permutations have (they are only *approximately*
// min-wise, and k-fold amplification compounds the per-function
// deficit — true of the naive scan too, which is the point).
TEST(KernelCollisionRateTest, KernelSignaturesReproduceAnalyticSigmoid) {
  struct Pair {
    Range q, r;
  };
  const Pair pairs[] = {
      {Range(100, 199), Range(100, 199)},  // sim 1.0 -> always collide
      {Range(100, 199), Range(110, 209)},  // sim ~0.818
      {Range(100, 199), Range(150, 249)},  // sim ~0.333
      {Range(100, 199), Range(300, 399)},  // sim 0 -> never collide
  };
  const int kK = 4, kL = 2, kTrials = 400;
  std::vector<double> kernel_rate, naive_rate;
  for (const Pair& pr : pairs) {
    int kernel_hits = 0, naive_hits = 0;
    for (int t = 0; t < kTrials; ++t) {
      LshParams p;
      p.k = kK;
      p.l = kL;
      p.family = HashFamilyType::kLinear;
      p.seed = 5000 + static_cast<uint64_t>(t);
      auto scheme = LshScheme::Make(p);
      ASSERT_TRUE(scheme.ok());
      const auto a = scheme->Identifiers(pr.q);
      const auto b = scheme->Identifiers(pr.r);
      bool kernel_hit = false, naive_hit = false;
      for (int g = 0; g < kL; ++g) {
        if (a[g] == b[g]) kernel_hit = true;
        uint32_t qa = 0, qb = 0;
        for (int i = 0; i < kK; ++i) {
          qa ^= scheme->function(g, i).HashRangeNaive(pr.q);
          qb ^= scheme->function(g, i).HashRangeNaive(pr.r);
        }
        if (bits::Mix32(qa) == bits::Mix32(qb)) naive_hit = true;
      }
      kernel_hits += kernel_hit ? 1 : 0;
      naive_hits += naive_hit ? 1 : 0;
    }
    kernel_rate.push_back(static_cast<double>(kernel_hits) / kTrials);
    naive_rate.push_back(static_cast<double>(naive_hits) / kTrials);
  }
  // Kernel and naive estimates agree exactly, pair by pair.
  for (size_t i = 0; i < kernel_rate.size(); ++i) {
    EXPECT_DOUBLE_EQ(kernel_rate[i], naive_rate[i]) << "pair " << i;
  }
  // ...and both track the analytic sigmoid: exact at the endpoints,
  // within real-family slack in the middle, monotone throughout.
  EXPECT_DOUBLE_EQ(kernel_rate[0], 1.0);
  EXPECT_NEAR(kernel_rate[1],
              LshScheme::CollisionProbability(
                  Range(100, 199).Jaccard(Range(110, 209)), kK, kL),
              0.25);
  EXPECT_NEAR(kernel_rate[2],
              LshScheme::CollisionProbability(
                  Range(100, 199).Jaccard(Range(150, 249)), kK, kL),
              0.1);
  EXPECT_LE(kernel_rate[3], 0.01);
  EXPECT_GT(kernel_rate[1], kernel_rate[2]);
  EXPECT_GE(kernel_rate[2], kernel_rate[3]);
}

}  // namespace
}  // namespace p2prange
