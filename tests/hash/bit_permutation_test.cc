#include "hash/bit_permutation.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/bit_utils.h"
#include "common/random.h"

namespace p2prange {
namespace {

TEST(BitShuffleKeysTest, SamplesOneKeyPerLevel) {
  Rng rng(1);
  const BitShuffleKeys keys = BitShuffleKeys::Sample(32, rng);
  // Block sizes 32, 16, 8, 4, 2 -> 5 levels.
  EXPECT_EQ(keys.num_levels(), 5);
  int block = 32;
  for (int i = 0; i < keys.num_levels(); ++i) {
    EXPECT_EQ(bits::PopCount(keys.level_keys[i]), block / 2)
        << "level " << i << " key must be balanced";
    EXPECT_EQ(keys.level_keys[i] & ~bits::LowMask(block), 0u)
        << "level " << i << " key exceeds its block width";
    block /= 2;
  }
}

TEST(BitShuffleKeysTest, EightBitMatchesPaperFigure3Shape) {
  Rng rng(2);
  const BitShuffleKeys keys = BitShuffleKeys::Sample(8, rng);
  // 8-bit key with 4 ones, 4-bit key with 2 ones, 2-bit key with 1 one
  // — exactly the paper's construction.
  ASSERT_EQ(keys.num_levels(), 3);
  EXPECT_EQ(bits::PopCount(keys.level_keys[0]), 4);
  EXPECT_EQ(bits::PopCount(keys.level_keys[1]), 2);
  EXPECT_EQ(bits::PopCount(keys.level_keys[2]), 1);
}

TEST(BitPermutationTest, PositionMapIsAPermutation) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const BitShuffleKeys keys = BitShuffleKeys::Sample(32, rng);
    for (int rounds = 1; rounds <= keys.num_levels(); ++rounds) {
      const BitPermutation perm(keys, rounds);
      std::set<int> targets;
      for (int j = 0; j < 32; ++j) {
        const int p = perm.position_map()[j];
        EXPECT_GE(p, 0);
        EXPECT_LT(p, 32);
        targets.insert(p);
      }
      EXPECT_EQ(targets.size(), 32u) << "position map must be bijective";
    }
  }
}

TEST(BitPermutationTest, TableMatchesNaiveReference) {
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    const BitShuffleKeys keys = BitShuffleKeys::Sample(32, rng);
    for (int rounds : {1, 3, 5}) {
      const BitPermutation perm(keys, rounds);
      Rng values(trial * 100 + rounds);
      for (int i = 0; i < 200; ++i) {
        const uint32_t x = values.Next32();
        EXPECT_EQ(perm.Apply(x), perm.ApplyNaive(x))
            << "x=" << x << " rounds=" << rounds;
      }
      EXPECT_EQ(perm.Apply(0), perm.ApplyNaive(0));
      EXPECT_EQ(perm.Apply(~0u), perm.ApplyNaive(~0u));
    }
  }
}

TEST(BitPermutationTest, ExhaustivelyBijectiveOn16BitDomain) {
  Rng rng(5);
  const BitShuffleKeys keys = BitShuffleKeys::Sample(16, rng);
  const BitPermutation perm(keys, keys.num_levels());
  std::vector<bool> seen(1 << 16, false);
  for (uint32_t x = 0; x < (1u << 16); ++x) {
    const uint32_t y = perm.Apply(x);
    ASSERT_LT(y, 1u << 16) << "image must stay within the domain";
    ASSERT_FALSE(seen[y]) << "collision at " << x;
    seen[y] = true;
  }
}

TEST(BitPermutationTest, SingleRoundSheepAndGoatsSemantics) {
  // Hand-computed example, width 8: key 0b11001010 selects bits
  // {1,3,6,7} to the upper half (in order), rest to the lower half.
  BitShuffleKeys keys;
  keys.width = 8;
  keys.level_keys = {0b11001010};
  const BitPermutation perm(keys, 1);
  // x = 0b01000010: bit1=1 (selected, first) and bit6=1 (selected,
  // third). Upper half order: bit1->pos4, bit3->pos5, bit6->pos6,
  // bit7->pos7. So result = (1<<4) | (1<<6).
  EXPECT_EQ(perm.Apply(0b01000010), 0b01010000u);
  // x = 0b00100001: bit0 (unselected, first clear) -> pos0; bit5
  // (unselected: clear bits are 0,2,4,5 so bit5 is 4th) -> pos3.
  EXPECT_EQ(perm.Apply(0b00100001), 0b00001001u);
}

TEST(BitPermutationTest, RoundsComposeIncrementally) {
  // With the same keys, the (r+1)-round position map equals the
  // r-round map followed by one more sheep-and-goats round — i.e. each
  // additional round refines within ever smaller blocks, so positions
  // can only move within their current block.
  Rng rng(6);
  const BitShuffleKeys keys = BitShuffleKeys::Sample(32, rng);
  for (int r = 1; r < keys.num_levels(); ++r) {
    const BitPermutation shorter(keys, r);
    const BitPermutation longer(keys, r + 1);
    const int block = 32 >> r;  // block size of round r+1
    for (int j = 0; j < 32; ++j) {
      const int before = shorter.position_map()[j];
      const int after = longer.position_map()[j];
      EXPECT_EQ(before / block, after / block)
          << "round " << r + 1 << " moved bit " << j << " across blocks";
    }
  }
}

TEST(BitPermutationTest, ApproxDiffersFromFullAlmostEverywhere) {
  Rng rng(8);
  const BitShuffleKeys keys = BitShuffleKeys::Sample(32, rng);
  const BitPermutation one_round(keys, 1);
  const BitPermutation full(keys, keys.num_levels());
  int differing = 0;
  for (uint32_t x = 1; x < 1000; ++x) {
    if (one_round.Apply(x) != full.Apply(x)) ++differing;
  }
  EXPECT_GT(differing, 900);
}

TEST(BitPermutationTest, DistinctKeysGiveDistinctPermutations) {
  Rng rng(7);
  const BitShuffleKeys k1 = BitShuffleKeys::Sample(32, rng);
  const BitShuffleKeys k2 = BitShuffleKeys::Sample(32, rng);
  const BitPermutation p1(k1, k1.num_levels());
  const BitPermutation p2(k2, k2.num_levels());
  int differing = 0;
  for (uint32_t x = 0; x < 1000; ++x) {
    if (p1.Apply(x) != p2.Apply(x)) ++differing;
  }
  EXPECT_GT(differing, 950);
}

}  // namespace
}  // namespace p2prange
