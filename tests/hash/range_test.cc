#include "hash/range.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/random.h"

namespace p2prange {
namespace {

TEST(RangeTest, MakeValidatesOrder) {
  EXPECT_TRUE(Range::Make(3, 7).ok());
  EXPECT_TRUE(Range::Make(5, 5).ok());
  EXPECT_TRUE(Range::Make(7, 3).status().IsInvalidArgument());
}

TEST(RangeTest, SizeIsInclusive) {
  EXPECT_EQ(Range(3, 7).size(), 5u);
  EXPECT_EQ(Range(5, 5).size(), 1u);
  // Full 32-bit domain: 2^32 elements needs 64-bit size.
  const uint32_t max = std::numeric_limits<uint32_t>::max();
  EXPECT_EQ(Range(0, max).size(), 1ULL << 32);
}

TEST(RangeTest, ContainsElementAndRange) {
  const Range r(10, 20);
  EXPECT_TRUE(r.Contains(10u));
  EXPECT_TRUE(r.Contains(20u));
  EXPECT_FALSE(r.Contains(9u));
  EXPECT_FALSE(r.Contains(21u));
  EXPECT_TRUE(r.Contains(Range(12, 18)));
  EXPECT_TRUE(r.Contains(Range(10, 20)));
  EXPECT_FALSE(r.Contains(Range(9, 20)));
  EXPECT_FALSE(r.Contains(Range(10, 21)));
}

TEST(RangeTest, IntersectionSize) {
  EXPECT_EQ(Range(0, 10).IntersectionSize(Range(5, 15)), 6u);
  EXPECT_EQ(Range(0, 10).IntersectionSize(Range(10, 20)), 1u);
  EXPECT_EQ(Range(0, 10).IntersectionSize(Range(11, 20)), 0u);
  EXPECT_EQ(Range(0, 10).IntersectionSize(Range(0, 10)), 11u);
  EXPECT_EQ(Range(5, 7).IntersectionSize(Range(0, 100)), 3u);
}

TEST(RangeTest, UnionSizeIsSetUnion) {
  // Disjoint ranges: union is the sum, not the hull.
  EXPECT_EQ(Range(0, 9).UnionSize(Range(100, 109)), 20u);
  EXPECT_EQ(Range(0, 10).UnionSize(Range(5, 15)), 16u);
  EXPECT_EQ(Range(0, 10).UnionSize(Range(0, 10)), 11u);
}

TEST(RangeTest, IntersectionRange) {
  auto inter = Range(0, 10).Intersection(Range(5, 15));
  ASSERT_TRUE(inter.has_value());
  EXPECT_EQ(*inter, Range(5, 10));
  EXPECT_FALSE(Range(0, 10).Intersection(Range(20, 30)).has_value());
}

TEST(RangeTest, JaccardKnownValues) {
  EXPECT_DOUBLE_EQ(Range(0, 9).Jaccard(Range(0, 9)), 1.0);
  EXPECT_DOUBLE_EQ(Range(0, 9).Jaccard(Range(100, 109)), 0.0);
  // [0,9] vs [5,14]: inter 5, union 15.
  EXPECT_DOUBLE_EQ(Range(0, 9).Jaccard(Range(5, 14)), 5.0 / 15.0);
  // The paper's motivating pair: [30,50] vs [30,49].
  EXPECT_DOUBLE_EQ(Range(30, 50).Jaccard(Range(30, 49)), 20.0 / 21.0);
}

TEST(RangeTest, JaccardIsSymmetric) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const uint32_t a = static_cast<uint32_t>(rng.NextBounded(1000));
    const uint32_t b = a + static_cast<uint32_t>(rng.NextBounded(100));
    const uint32_t c = static_cast<uint32_t>(rng.NextBounded(1000));
    const uint32_t d = c + static_cast<uint32_t>(rng.NextBounded(100));
    const Range q(a, b), r(c, d);
    EXPECT_DOUBLE_EQ(q.Jaccard(r), r.Jaccard(q));
  }
}

TEST(RangeTest, JaccardDistanceSatisfiesTriangleInequality) {
  // §3.2: d = 1 - Jaccard is a metric; spot-check random triples.
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    auto rand_range = [&] {
      const uint32_t lo = static_cast<uint32_t>(rng.NextBounded(500));
      return Range(lo, lo + static_cast<uint32_t>(rng.NextBounded(200)));
    };
    const Range q = rand_range(), r = rand_range(), s = rand_range();
    const double dqr = 1.0 - q.Jaccard(r);
    const double drs = 1.0 - r.Jaccard(s);
    const double dqs = 1.0 - q.Jaccard(s);
    EXPECT_LE(dqs, dqr + drs + 1e-12);
  }
}

TEST(RangeTest, ContainmentDistanceViolatesTriangleInequality) {
  // §3.2's reason containment admits no LSH family. Counterexample:
  // Q=[0,99] subset of R=[0,199]; S=[100,199] subset of R as well.
  const Range q(0, 99), r(0, 199), s(100, 199);
  const double dqr = 1.0 - q.ContainmentIn(r);  // 0: Q fully inside R
  const double drs = 1.0 - r.ContainmentIn(s);  // 0.5
  const double dqs = 1.0 - q.ContainmentIn(s);  // 1: disjoint
  EXPECT_GT(dqs, dqr + drs);
}

TEST(RangeTest, ContainmentKnownValues) {
  EXPECT_DOUBLE_EQ(Range(30, 49).ContainmentIn(Range(30, 50)), 1.0);
  EXPECT_DOUBLE_EQ(Range(30, 50).ContainmentIn(Range(30, 49)), 20.0 / 21.0);
  EXPECT_DOUBLE_EQ(Range(0, 9).ContainmentIn(Range(5, 100)), 0.5);
  EXPECT_DOUBLE_EQ(Range(0, 9).ContainmentIn(Range(50, 100)), 0.0);
}

TEST(RangeTest, RecallEqualsContainment) {
  const Range q(10, 29), r(0, 19);
  EXPECT_DOUBLE_EQ(q.RecallFrom(r), q.ContainmentIn(r));
  EXPECT_DOUBLE_EQ(q.RecallFrom(r), 0.5);
}

TEST(RangeTest, PaddedExpandsBothEdges) {
  // Size 100, 20% padding = 20 per edge.
  const Range padded = Range(100, 199).Padded(0.2, 0, 1000);
  EXPECT_EQ(padded, Range(80, 219));
}

TEST(RangeTest, PaddedClampsAtDomainBounds) {
  EXPECT_EQ(Range(5, 104).Padded(0.2, 0, 1000), Range(0, 124));
  EXPECT_EQ(Range(900, 999).Padded(0.2, 0, 1000), Range(880, 1000));
  EXPECT_EQ(Range(0, 1000).Padded(0.5, 0, 1000), Range(0, 1000));
}

TEST(RangeTest, PaddedZeroFractionIsIdentity) {
  EXPECT_EQ(Range(7, 42).Padded(0.0, 0, 100), Range(7, 42));
}

TEST(RangeTest, PaddedNearUint32Extremes) {
  const uint32_t max = std::numeric_limits<uint32_t>::max();
  const Range top(max - 9, max);
  EXPECT_EQ(top.Padded(0.5, 0, max), Range(max - 14, max));
  const Range bottom(0, 9);
  EXPECT_EQ(bottom.Padded(0.5, 0, max), Range(0, 14));
}

TEST(RangeTest, PaddedSmallRangeRoundsDown) {
  // Size 4, 20% padding = 0.8 -> pad 0 (rounded down).
  EXPECT_EQ(Range(10, 13).Padded(0.2, 0, 100), Range(10, 13));
  // Size 5, 20% -> pad 1.
  EXPECT_EQ(Range(10, 14).Padded(0.2, 0, 100), Range(9, 15));
}

TEST(RangeTest, ToString) {
  EXPECT_EQ(Range(3, 9).ToString(), "[3, 9]");
}

}  // namespace
}  // namespace p2prange
