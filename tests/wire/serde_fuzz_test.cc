// Byte-level robustness of wire/serde: whatever bytes arrive — torn,
// mutated, or pure garbage — decoding returns a Status. It never
// crashes, never overflows, and never allocates unboundedly.
#include <gtest/gtest.h>

#include "common/random.h"
#include "rel/generator.h"
#include "wire/serde.h"

namespace p2prange {
namespace wire {
namespace {

PartitionDescriptor RandomDescriptor(Rng& rng) {
  const uint32_t lo = rng.Next32() % 100000;
  const uint32_t hi = lo + rng.Next32() % 5000;
  return PartitionDescriptor{
      PartitionKey{"Patient", rng.NextBernoulli(0.5) ? "age" : "weight",
                   Range(lo, hi)},
      NetAddress{rng.Next32(), static_cast<uint16_t>(rng.Next32() & 0xFFFF)}};
}

TEST(SerdeFuzzTest, NetAddressRoundTrips) {
  Rng rng(71);
  for (int i = 0; i < 200; ++i) {
    const NetAddress a{rng.Next32(), static_cast<uint16_t>(rng.Next32() & 0xFFFF)};
    Encoder enc;
    EncodeNetAddress(a, &enc);
    Decoder dec(enc.buffer());
    auto got = DecodeNetAddress(&dec);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, a);
    EXPECT_TRUE(dec.AtEnd());
  }
}

TEST(SerdeFuzzTest, NetAddressRejectsOutOfRangeFields) {
  Encoder enc;
  enc.PutVarint(1ULL << 33);  // host beyond 32 bits
  enc.PutVarint(80);
  Decoder dec(enc.buffer());
  EXPECT_TRUE(DecodeNetAddress(&dec).status().IsInvalidArgument());
  Encoder enc2;
  enc2.PutVarint(42);
  enc2.PutVarint(1ULL << 17);  // port beyond 16 bits
  Decoder dec2(enc2.buffer());
  EXPECT_TRUE(DecodeNetAddress(&dec2).status().IsInvalidArgument());
}

TEST(SerdeFuzzTest, PartitionDescriptorRoundTrips) {
  Rng rng(72);
  for (int i = 0; i < 200; ++i) {
    const PartitionDescriptor d = RandomDescriptor(rng);
    Encoder enc;
    EncodePartitionDescriptor(d, &enc);
    Decoder dec(enc.buffer());
    auto got = DecodePartitionDescriptor(&dec);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, d);
    EXPECT_TRUE(dec.AtEnd());
  }
}

TEST(SerdeFuzzTest, DescriptorTruncationAtEveryPrefixFails) {
  Rng rng(73);
  for (int trial = 0; trial < 32; ++trial) {
    Encoder enc;
    EncodePartitionDescriptor(RandomDescriptor(rng), &enc);
    const std::string& full = enc.buffer();
    for (size_t cut = 0; cut < full.size(); ++cut) {
      Decoder dec(std::string_view(full).substr(0, cut));
      auto got = DecodePartitionDescriptor(&dec);
      EXPECT_FALSE(got.ok() && dec.AtEnd()) << "cut at " << cut;
    }
  }
}

// A mutated valid encoding must decode to *something* or fail cleanly;
// it must never take the process down. (Run under ASan/UBSan in the
// sanitized build, this is the memory-safety net for the WAL replay
// path, which funnels every payload through these decoders.)
TEST(SerdeFuzzTest, MutatedDescriptorBytesNeverMisbehave) {
  Rng rng(74);
  for (int trial = 0; trial < 2000; ++trial) {
    Encoder enc;
    EncodePartitionDescriptor(RandomDescriptor(rng), &enc);
    std::string bytes = enc.Take();
    const int mutations = 1 + static_cast<int>(rng.NextBounded(4));
    for (int m = 0; m < mutations; ++m) {
      const size_t pos = rng.NextBounded(bytes.size());
      bytes[pos] = static_cast<char>(rng.Next32());
    }
    Decoder dec(bytes);
    auto got = DecodePartitionDescriptor(&dec);
    if (got.ok()) {
      // Whatever decoded must satisfy the type's invariants.
      EXPECT_LE(got->key.range.lo(), got->key.range.hi());
    }
  }
}

TEST(SerdeFuzzTest, GarbageBytesNeverMisbehave) {
  Rng rng(75);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string garbage(rng.NextBounded(64), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.Next32());
    // Outcomes are irrelevant: the property under test is "no crash,
    // no UB" on garbage, and the sanitizers are the assertion.
    Decoder d1(garbage);
    DecodePartitionDescriptor(&d1).status().IgnoreError();
    Decoder d2(garbage);
    DecodeNetAddress(&d2).status().IgnoreError();
    Decoder d3(garbage);
    DecodeSchema(&d3).status().IgnoreError();
    Decoder d4(garbage);
    DecodeRelation(&d4).status().IgnoreError();
    Decoder d5(garbage);
    DecodeValue(&d5).status().IgnoreError();
  }
}

// Huge length/count fields must fail by validation, not by attempting
// the allocation they advertise.
TEST(SerdeFuzzTest, OversizedCountsRejectedBeforeAllocation) {
  {
    Encoder enc;
    enc.PutVarint(1ULL << 60);  // schema field count
    Decoder dec(enc.buffer());
    EXPECT_TRUE(DecodeSchema(&dec).status().IsInvalidArgument());
  }
  {
    Encoder enc;
    enc.PutString("R");
    EncodeSchema(Schema({Field{"a", ValueType::kInt64, std::nullopt}}), &enc);
    enc.PutVarint(1ULL << 60);  // row count
    Decoder dec(enc.buffer());
    EXPECT_TRUE(DecodeRelation(&dec).status().IsInvalidArgument());
  }
  {
    Encoder enc;
    enc.PutVarint(1ULL << 60);  // string length far past the buffer
    Decoder dec(enc.buffer());
    EXPECT_TRUE(dec.String().status().IsOutOfRange());
  }
}

TEST(SerdeFuzzTest, MutatedRelationBytesNeverMisbehave) {
  Catalog cat = MakeNumbersCatalog(30, 0, 100, 3);
  Encoder enc;
  EncodeRelation(**cat.GetBaseData("Numbers"), &enc);
  const std::string clean = enc.Take();
  Rng rng(76);
  for (int trial = 0; trial < 1000; ++trial) {
    std::string bytes = clean;
    const size_t pos = rng.NextBounded(bytes.size());
    bytes[pos] = static_cast<char>(rng.Next32());
    Decoder dec(bytes);
    auto got = DecodeRelation(&dec);
    if (got.ok()) {
      // Rows must match the decoded schema arity and types.
      for (const Row& row : got->rows()) {
        ASSERT_EQ(row.size(), got->schema().num_fields());
      }
    }
  }
}

}  // namespace
}  // namespace wire
}  // namespace p2prange
