#include "wire/serde.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/random.h"
#include "rel/generator.h"

namespace p2prange {
namespace wire {
namespace {

TEST(VarintTest, RoundTripsRepresentativeValues) {
  Encoder enc;
  const uint64_t values[] = {0,
                             1,
                             127,
                             128,
                             300,
                             16383,
                             16384,
                             (1ULL << 32) - 1,
                             1ULL << 32,
                             std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : values) enc.PutVarint(v);
  Decoder dec(enc.buffer());
  for (uint64_t v : values) {
    auto got = dec.Varint();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
  EXPECT_TRUE(dec.AtEnd());
}

TEST(VarintTest, SmallValuesAreOneByte) {
  Encoder enc;
  enc.PutVarint(5);
  EXPECT_EQ(enc.size(), 1u);
  enc.PutVarint(127);
  EXPECT_EQ(enc.size(), 2u);
  enc.PutVarint(128);
  EXPECT_EQ(enc.size(), 4u);  // 128 takes two bytes
}

TEST(ZigZagTest, RoundTripsSignedValues) {
  const int64_t values[] = {0, -1, 1, -2, 2, 1000, -1000,
                            std::numeric_limits<int64_t>::max(),
                            std::numeric_limits<int64_t>::min()};
  for (int64_t v : values) {
    EXPECT_EQ(Decoder::UnZigZag(Encoder::ZigZag(v)), v) << v;
  }
}

TEST(DecoderTest, TruncatedBuffersFailCleanly) {
  Encoder enc;
  enc.PutString("hello world");
  const std::string& full = enc.buffer();
  for (size_t cut = 0; cut < full.size(); ++cut) {
    Decoder dec(std::string_view(full).substr(0, cut));
    EXPECT_FALSE(dec.String().ok()) << "cut at " << cut;
  }
}

TEST(DecoderTest, OverlongVarintRejected) {
  // 11 continuation bytes exceed 64 bits of payload.
  std::string bad(11, static_cast<char>(0x80));
  bad.push_back(0x01);
  Decoder dec(bad);
  EXPECT_FALSE(dec.Varint().ok());
}

TEST(ValueSerdeTest, RoundTripsEveryType) {
  const Value values[] = {
      Value(int64_t{0}), Value(int64_t{-123456789}), Value(int64_t{1} << 60),
      Value(0.0), Value(-3.25), Value(1e300),
      Value(""), Value("Glaucoma"), Value(std::string(1000, 'x')),
      Value(MakeDate(1970, 1, 1)), Value(MakeDate(2002, 12, 31)),
      Value(Date{-400000}),
  };
  for (const Value& v : values) {
    Encoder enc;
    EncodeValue(v, &enc);
    Decoder dec(enc.buffer());
    auto got = DecodeValue(&dec);
    ASSERT_TRUE(got.ok()) << v.ToString();
    EXPECT_EQ(*got, v);
    EXPECT_TRUE(dec.AtEnd());
  }
}

TEST(ValueSerdeTest, UnknownTagRejected) {
  std::string bad = "\x09";
  Decoder dec(bad);
  EXPECT_TRUE(DecodeValue(&dec).status().IsInvalidArgument());
}

TEST(SchemaSerdeTest, RoundTripsWithAndWithoutDomains) {
  const Schema schema({Field{"id", ValueType::kInt64, AttributeDomain{-5, 1000}},
                       Field{"name", ValueType::kString, std::nullopt},
                       Field{"when", ValueType::kDate,
                             AttributeDomain{MakeDate(1990, 1, 1).days,
                                             MakeDate(2009, 12, 31).days}}});
  Encoder enc;
  EncodeSchema(schema, &enc);
  Decoder dec(enc.buffer());
  auto got = DecodeSchema(&dec);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(*got, schema);
}

TEST(SchemaSerdeTest, CorruptDomainRejected) {
  Encoder enc;
  EncodeSchema(Schema({Field{"a", ValueType::kInt64, AttributeDomain{5, 3}}}),
               &enc);
  // lo > hi on the wire (we intentionally encoded garbage).
  Decoder dec(enc.buffer());
  EXPECT_FALSE(DecodeSchema(&dec).ok());
}

TEST(RelationSerdeTest, RoundTripsMedicalData) {
  Catalog cat = MakeMedicalCatalog();
  MedicalDataSpec spec;
  spec.num_patients = 60;
  spec.num_prescriptions = 80;
  spec.num_diagnoses = 90;
  spec.num_physicians = 5;
  ASSERT_TRUE(PopulateMedicalData(spec, &cat).ok());
  for (const char* rel : {"Patient", "Diagnosis", "Physician", "Prescription"}) {
    const Relation* original = *cat.GetBaseData(rel);
    Encoder enc;
    EncodeRelation(*original, &enc);
    Decoder dec(enc.buffer());
    auto got = DecodeRelation(&dec);
    ASSERT_TRUE(got.ok()) << rel << ": " << got.status();
    EXPECT_EQ(got->name(), original->name());
    EXPECT_EQ(got->schema(), original->schema());
    ASSERT_EQ(got->num_rows(), original->num_rows());
    for (size_t i = 0; i < got->num_rows(); ++i) {
      EXPECT_EQ(got->rows()[i], original->rows()[i]) << rel << " row " << i;
    }
    EXPECT_TRUE(dec.AtEnd());
  }
}

TEST(RelationSerdeTest, EmptyRelationRoundTrips) {
  const Relation empty("Empty", Schema({Field{"a", ValueType::kInt64,
                                              std::nullopt}}));
  Encoder enc;
  EncodeRelation(empty, &enc);
  Decoder dec(enc.buffer());
  auto got = DecodeRelation(&dec);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->num_rows(), 0u);
}

TEST(RelationSerdeTest, TruncationAtEveryPrefixFails) {
  Catalog cat = MakeNumbersCatalog(20, 0, 100, 3);
  const Relation* rel = *cat.GetBaseData("Numbers");
  Encoder enc;
  EncodeRelation(*rel, &enc);
  const std::string& full = enc.buffer();
  Rng rng(9);
  for (int trial = 0; trial < 64; ++trial) {
    const size_t cut = rng.NextBounded(full.size());
    Decoder dec(std::string_view(full).substr(0, cut));
    EXPECT_FALSE(DecodeRelation(&dec).ok()) << "cut at " << cut;
  }
}

TEST(PartitionKeySerdeTest, RoundTrips) {
  const PartitionKey key{"Patient", "age", Range(30, 50)};
  Encoder enc;
  EncodePartitionKey(key, &enc);
  Decoder dec(enc.buffer());
  auto got = DecodePartitionKey(&dec);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, key);
}

TEST(RelationWireSizeTest, GrowsWithRows) {
  Catalog small = MakeNumbersCatalog(10, 0, 100, 3);
  Catalog large = MakeNumbersCatalog(1000, 0, 100, 3);
  EXPECT_LT(RelationWireSize(**small.GetBaseData("Numbers")),
            RelationWireSize(**large.GetBaseData("Numbers")));
}

}  // namespace
}  // namespace wire
}  // namespace p2prange
