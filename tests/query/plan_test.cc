#include "query/plan.h"

#include <gtest/gtest.h>

#include "query/parser.h"
#include "rel/catalog.h"
#include "rel/generator.h"

namespace p2prange {
namespace {

QueryPlan MustPlan(const std::string& sql, const Catalog& cat) {
  auto stmt = ParseSelect(sql);
  EXPECT_TRUE(stmt.ok()) << stmt.status();
  auto plan = BuildPlan(*stmt, cat);
  EXPECT_TRUE(plan.ok()) << plan.status();
  return *plan;
}

Status PlanError(const std::string& sql, const Catalog& cat) {
  auto stmt = ParseSelect(sql);
  EXPECT_TRUE(stmt.ok()) << stmt.status();
  return BuildPlan(*stmt, cat).status();
}

TEST(PlanTest, PushesRangeToLeaf) {
  const Catalog cat = MakeMedicalCatalog();
  const QueryPlan plan =
      MustPlan("SELECT * FROM Patient WHERE age > 30 AND age < 50", cat);
  ASSERT_EQ(plan.leaves.size(), 1u);
  ASSERT_TRUE(plan.leaves[0].range.has_value());
  EXPECT_EQ(plan.leaves[0].range->attribute, "age");
  EXPECT_EQ(plan.leaves[0].range->lo, 31);
  EXPECT_EQ(plan.leaves[0].range->hi, 49);
}

TEST(PlanTest, OneSidedRangeUsesDomainBound) {
  const Catalog cat = MakeMedicalCatalog();
  const QueryPlan plan = MustPlan("SELECT * FROM Patient WHERE age >= 65", cat);
  ASSERT_TRUE(plan.leaves[0].range.has_value());
  EXPECT_EQ(plan.leaves[0].range->lo, 65);
  EXPECT_EQ(plan.leaves[0].range->hi, 120);  // domain hi
}

TEST(PlanTest, EqualityOnOrdinalBecomesDegenerateRange) {
  const Catalog cat = MakeMedicalCatalog();
  const QueryPlan plan = MustPlan("SELECT * FROM Patient WHERE age = 30", cat);
  ASSERT_TRUE(plan.leaves[0].range.has_value());
  EXPECT_EQ(plan.leaves[0].range->lo, 30);
  EXPECT_EQ(plan.leaves[0].range->hi, 30);
}

TEST(PlanTest, BetweenFoldsIntoRange) {
  const Catalog cat = MakeMedicalCatalog();
  const QueryPlan plan =
      MustPlan("SELECT * FROM Patient WHERE age BETWEEN 30 AND 50", cat);
  ASSERT_TRUE(plan.leaves[0].range.has_value());
  EXPECT_EQ(plan.leaves[0].range->lo, 30);
  EXPECT_EQ(plan.leaves[0].range->hi, 50);
}

TEST(PlanTest, MultipleBoundsIntersect) {
  const Catalog cat = MakeMedicalCatalog();
  const QueryPlan plan = MustPlan(
      "SELECT * FROM Patient WHERE age >= 20 AND age >= 30 AND age <= 60 "
      "AND age < 55",
      cat);
  EXPECT_EQ(plan.leaves[0].range->lo, 30);
  EXPECT_EQ(plan.leaves[0].range->hi, 54);
}

TEST(PlanTest, StringEqualityBecomesFilter) {
  const Catalog cat = MakeMedicalCatalog();
  const QueryPlan plan =
      MustPlan("SELECT * FROM Diagnosis WHERE diagnosis = 'Glaucoma'", cat);
  EXPECT_FALSE(plan.leaves[0].range.has_value());
  ASSERT_EQ(plan.leaves[0].filters.size(), 1u);
  EXPECT_EQ(plan.leaves[0].filters[0].attribute, "diagnosis");
  EXPECT_EQ(plan.leaves[0].filters[0].value, Value("Glaucoma"));
}

TEST(PlanTest, DateRangeOnPrescription) {
  const Catalog cat = MakeMedicalCatalog();
  const QueryPlan plan = MustPlan(
      "SELECT * FROM Prescription WHERE date >= '2000-01-01' AND "
      "date <= '2002-12-31'",
      cat);
  ASSERT_TRUE(plan.leaves[0].range.has_value());
  EXPECT_EQ(plan.leaves[0].range->lo, MakeDate(2000, 1, 1).days);
  EXPECT_EQ(plan.leaves[0].range->hi, MakeDate(2002, 12, 31).days);
}

TEST(PlanTest, PaperExampleFullPlan) {
  const Catalog cat = MakeMedicalCatalog();
  const QueryPlan plan = MustPlan(
      "Select Prescription.prescription "
      "from Patient, Diagnosis, Prescription "
      "where 30 < age and age < 50 "
      "and diagnosis = 'Glaucoma' "
      "and Patient.patient_id = Diagnosis.patient_id "
      "and '2000-01-01' < date and date < '2002-12-31' "
      "and Diagnosis.prescription_id = Prescription.prescription_id",
      cat);
  ASSERT_EQ(plan.leaves.size(), 3u);
  const TableSelection* patient = plan.LeafFor("Patient");
  ASSERT_NE(patient, nullptr);
  EXPECT_EQ(patient->range->lo, 31);
  EXPECT_EQ(patient->range->hi, 49);
  const TableSelection* diagnosis = plan.LeafFor("Diagnosis");
  ASSERT_NE(diagnosis, nullptr);
  EXPECT_FALSE(diagnosis->range.has_value());
  EXPECT_EQ(diagnosis->filters.size(), 1u);
  const TableSelection* prescription = plan.LeafFor("Prescription");
  ASSERT_NE(prescription, nullptr);
  EXPECT_EQ(prescription->range->attribute, "date");
  ASSERT_EQ(plan.joins.size(), 2u);
  ASSERT_EQ(plan.projections.size(), 1u);
  EXPECT_EQ(plan.projections[0].ToString(), "Prescription.prescription");
}

TEST(PlanTest, ResolvesUnqualifiedColumnsUniquely) {
  const Catalog cat = MakeMedicalCatalog();
  const QueryPlan plan =
      MustPlan("SELECT * FROM Patient, Diagnosis WHERE diagnosis = 'X' "
               "AND Patient.patient_id = Diagnosis.patient_id",
               cat);
  EXPECT_EQ(plan.leaves[1].filters[0].attribute, "diagnosis");
}

TEST(PlanTest, RejectsAmbiguousColumn) {
  const Catalog cat = MakeMedicalCatalog();
  // "age" exists in both Patient and Physician.
  EXPECT_TRUE(PlanError("SELECT * FROM Patient, Physician WHERE age > 30 AND "
                        "Patient.name = Physician.name",
                        cat)
                  .IsInvalidArgument());
}

TEST(PlanTest, RejectsUnknownTableAndColumn) {
  const Catalog cat = MakeMedicalCatalog();
  EXPECT_TRUE(PlanError("SELECT * FROM Nothing", cat).IsNotFound());
  EXPECT_TRUE(
      PlanError("SELECT * FROM Patient WHERE height > 3", cat).IsInvalidArgument());
  EXPECT_TRUE(PlanError("SELECT * FROM Patient WHERE Diagnosis.diagnosis = 'X'",
                        cat)
                  .IsInvalidArgument());
}

TEST(PlanTest, RejectsTwoRangeAttributesPerRelation) {
  // The paper's restriction (§2): one range-selected attribute per
  // relation. patient_id and age are both ordinal in Patient.
  const Catalog cat = MakeMedicalCatalog();
  EXPECT_TRUE(PlanError("SELECT * FROM Patient WHERE age > 30 AND "
                        "patient_id < 100",
                        cat)
                  .IsInvalidArgument());
}

TEST(PlanTest, RejectsEmptyRange) {
  const Catalog cat = MakeMedicalCatalog();
  EXPECT_TRUE(PlanError("SELECT * FROM Patient WHERE age > 50 AND age < 40", cat)
                  .IsInvalidArgument());
}

TEST(PlanTest, RejectsRangePredicateOnString) {
  const Catalog cat = MakeMedicalCatalog();
  EXPECT_TRUE(
      PlanError("SELECT * FROM Patient WHERE name > 'Bob'", cat).IsInvalidArgument());
}

TEST(PlanTest, RejectsTypeMismatchedLiteral) {
  const Catalog cat = MakeMedicalCatalog();
  EXPECT_TRUE(PlanError("SELECT * FROM Patient WHERE age > '2000-01-01'", cat)
                  .IsInvalidArgument());
  EXPECT_TRUE(PlanError("SELECT * FROM Patient WHERE name = 3", cat)
                  .IsInvalidArgument());
}

TEST(PlanTest, RejectsJoinTypeMismatch) {
  const Catalog cat = MakeMedicalCatalog();
  EXPECT_TRUE(PlanError("SELECT * FROM Patient, Diagnosis WHERE "
                        "Patient.name = Diagnosis.patient_id",
                        cat)
                  .IsInvalidArgument());
}

TEST(PlanTest, RejectsSelfJoin) {
  const Catalog cat = MakeMedicalCatalog();
  auto stmt = ParseSelect("SELECT * FROM Patient, Patient");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(BuildPlan(*stmt, cat).status().IsNotImplemented());
}

TEST(PlanTest, ToStringMentionsEveryPiece) {
  const Catalog cat = MakeMedicalCatalog();
  const QueryPlan plan = MustPlan(
      "SELECT Patient.name FROM Patient, Diagnosis WHERE age > 30 "
      "AND Patient.patient_id = Diagnosis.patient_id",
      cat);
  const std::string s = plan.ToString();
  EXPECT_NE(s.find("scan Patient"), std::string::npos);
  EXPECT_NE(s.find("join"), std::string::npos);
  EXPECT_NE(s.find("project"), std::string::npos);
}

}  // namespace
}  // namespace p2prange
