#include "query/executor.h"

#include <gtest/gtest.h>

#include <set>

#include "query/parser.h"
#include "rel/catalog.h"
#include "rel/generator.h"

namespace p2prange {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = MakeMedicalCatalog();
    MedicalDataSpec spec;
    spec.num_patients = 200;
    spec.num_physicians = 10;
    spec.num_prescriptions = 300;
    spec.num_diagnoses = 400;
    spec.seed = 99;
    ASSERT_TRUE(PopulateMedicalData(spec, &catalog_).ok());
  }

  QueryPlan Plan(const std::string& sql) {
    auto stmt = ParseSelect(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status();
    auto plan = BuildPlan(*stmt, catalog_);
    EXPECT_TRUE(plan.ok()) << plan.status();
    return *plan;
  }

  std::map<std::string, Relation> FullInputs(const QueryPlan& plan) {
    std::map<std::string, Relation> inputs;
    for (const TableSelection& leaf : plan.leaves) {
      inputs.emplace(leaf.table, **catalog_.GetBaseData(leaf.table));
    }
    return inputs;
  }

  Catalog catalog_;
};

TEST_F(ExecutorTest, SingleTableRangeFilter) {
  const QueryPlan plan = Plan("SELECT * FROM Patient WHERE age > 30 AND age < 50");
  auto result = ExecutePlan(plan, FullInputs(plan));
  ASSERT_TRUE(result.ok()) << result.status();
  const Relation* base = *catalog_.GetBaseData("Patient");
  size_t expected = 0;
  for (const Row& row : base->rows()) {
    const int64_t age = row[2].AsInt();
    if (age > 30 && age < 50) ++expected;
  }
  EXPECT_EQ(result->num_rows(), expected);
  EXPECT_GT(result->num_rows(), 0u);
  // Columns are qualified after execution.
  EXPECT_TRUE(result->schema().HasField("Patient.age"));
}

TEST_F(ExecutorTest, EqualityFilter) {
  const QueryPlan plan =
      Plan("SELECT * FROM Diagnosis WHERE diagnosis = 'Glaucoma'");
  auto result = ExecutePlan(plan, FullInputs(plan));
  ASSERT_TRUE(result.ok());
  ASSERT_GT(result->num_rows(), 0u);
  auto idx = result->schema().FieldIndex("Diagnosis.diagnosis");
  ASSERT_TRUE(idx.ok());
  for (const Row& row : result->rows()) {
    EXPECT_EQ(row[*idx].AsString(), "Glaucoma");
  }
}

TEST_F(ExecutorTest, TwoWayJoinMatchesNestedLoopReference) {
  const QueryPlan plan = Plan(
      "SELECT * FROM Patient, Diagnosis "
      "WHERE Patient.patient_id = Diagnosis.patient_id AND age > 60");
  auto result = ExecutePlan(plan, FullInputs(plan));
  ASSERT_TRUE(result.ok()) << result.status();

  // Reference: nested loops over the base data.
  const Relation* patients = *catalog_.GetBaseData("Patient");
  const Relation* diagnoses = *catalog_.GetBaseData("Diagnosis");
  size_t expected = 0;
  for (const Row& p : patients->rows()) {
    if (p[2].AsInt() <= 60) continue;
    for (const Row& d : diagnoses->rows()) {
      if (p[0] == d[0]) ++expected;
    }
  }
  EXPECT_EQ(result->num_rows(), expected);
  EXPECT_GT(expected, 0u);
}

TEST_F(ExecutorTest, ThreeWayPaperJoin) {
  const QueryPlan plan = Plan(
      "Select Prescription.prescription "
      "from Patient, Diagnosis, Prescription "
      "where 30 < age and age < 50 "
      "and diagnosis = 'Glaucoma' "
      "and Patient.patient_id = Diagnosis.patient_id "
      "and Diagnosis.prescription_id = Prescription.prescription_id");
  auto result = ExecutePlan(plan, FullInputs(plan));
  ASSERT_TRUE(result.ok()) << result.status();
  // Projection keeps exactly one column.
  EXPECT_EQ(result->schema().num_fields(), 1u);
  EXPECT_EQ(result->schema().field(0).name, "Prescription.prescription");

  // Reference count via nested loops.
  const Relation* patients = *catalog_.GetBaseData("Patient");
  const Relation* diagnoses = *catalog_.GetBaseData("Diagnosis");
  const Relation* prescriptions = *catalog_.GetBaseData("Prescription");
  size_t expected = 0;
  for (const Row& d : diagnoses->rows()) {
    if (d[1].AsString() != "Glaucoma") continue;
    for (const Row& p : patients->rows()) {
      if (!(p[0] == d[0])) continue;
      const int64_t age = p[2].AsInt();
      if (age <= 30 || age >= 50) continue;
      for (const Row& rx : prescriptions->rows()) {
        if (rx[0] == d[3]) ++expected;
      }
    }
  }
  EXPECT_EQ(result->num_rows(), expected);
}

TEST_F(ExecutorTest, BroaderInputsAreRefiltered) {
  // Feed the executor a *superset* partition (what an approximate
  // cache match returns) and verify no false positives survive.
  const QueryPlan plan = Plan("SELECT * FROM Patient WHERE age > 40 AND age < 45");
  std::map<std::string, Relation> inputs;
  auto broader = (*catalog_.GetBaseData("Patient"))->SelectOrdinalRange("age", 30, 60);
  ASSERT_TRUE(broader.ok());
  inputs.emplace("Patient", *broader);
  auto result = ExecutePlan(plan, inputs);
  ASSERT_TRUE(result.ok());
  auto idx = result->schema().FieldIndex("Patient.age");
  ASSERT_TRUE(idx.ok());
  for (const Row& row : result->rows()) {
    EXPECT_GT(row[*idx].AsInt(), 40);
    EXPECT_LT(row[*idx].AsInt(), 45);
  }
}

TEST_F(ExecutorTest, NarrowerInputsLoseRowsButStayCorrect) {
  const QueryPlan plan = Plan("SELECT * FROM Patient WHERE age > 30 AND age < 70");
  std::map<std::string, Relation> inputs;
  auto narrower =
      (*catalog_.GetBaseData("Patient"))->SelectOrdinalRange("age", 40, 50);
  ASSERT_TRUE(narrower.ok());
  inputs.emplace("Patient", *narrower);
  auto result = ExecutePlan(plan, inputs);
  ASSERT_TRUE(result.ok());
  // All returned rows satisfy the predicate (subset of the true answer).
  auto idx = result->schema().FieldIndex("Patient.age");
  for (const Row& row : result->rows()) {
    EXPECT_GT(row[*idx].AsInt(), 30);
    EXPECT_LT(row[*idx].AsInt(), 70);
  }
  EXPECT_EQ(result->num_rows(), narrower->num_rows());
}

TEST_F(ExecutorTest, MissingInputIsAnError) {
  const QueryPlan plan = Plan("SELECT * FROM Patient");
  std::map<std::string, Relation> inputs;
  EXPECT_TRUE(ExecutePlan(plan, inputs).status().IsInvalidArgument());
}

TEST_F(ExecutorTest, CrossProductRejected) {
  const QueryPlan plan = Plan("SELECT * FROM Patient, Physician");
  EXPECT_TRUE(ExecutePlan(plan, FullInputs(plan)).status().IsNotImplemented());
}

TEST_F(ExecutorTest, ProjectionOfUnknownColumnFails) {
  QueryPlan plan = Plan("SELECT Patient.name FROM Patient");
  plan.projections[0].column = "bogus";
  EXPECT_FALSE(ExecutePlan(plan, FullInputs(plan)).ok());
}

TEST_F(ExecutorTest, ApplyLeafFiltersComposesRangeAndEquality) {
  TableSelection leaf;
  leaf.table = "Diagnosis";
  leaf.filters.push_back(EqFilter{"diagnosis", Value("Asthma")});
  auto filtered = ApplyLeafFilters(leaf, **catalog_.GetBaseData("Diagnosis"));
  ASSERT_TRUE(filtered.ok());
  for (const Row& row : filtered->rows()) {
    EXPECT_EQ(row[1].AsString(), "Asthma");
  }
}

TEST_F(ExecutorTest, JoinWithEmptySideIsEmpty) {
  // Ages 110-120 are inside the domain but absent from the generated
  // data (generator draws 0-100), so the Patient side filters empty.
  const QueryPlan plan2 = Plan(
      "SELECT * FROM Patient, Diagnosis "
      "WHERE Patient.patient_id = Diagnosis.patient_id AND age BETWEEN 110 AND 120");
  auto result = ExecutePlan(plan2, FullInputs(plan2));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 0u);
}

}  // namespace
}  // namespace p2prange
