#include "query/parser.h"

#include <gtest/gtest.h>

#include "query/tokenizer.h"

namespace p2prange {
namespace {

TEST(TokenizerTest, SplitsKeywordsIdentifiersAndSymbols) {
  auto tokens = Tokenize("SELECT a.b FROM T WHERE x <= 5");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 11u);  // incl. kEnd
  EXPECT_TRUE((*tokens)[0].IsKeyword("SELECT"));
  EXPECT_EQ((*tokens)[1].type, TokenType::kIdentifier);
  EXPECT_TRUE((*tokens)[2].IsSymbol("."));
  EXPECT_TRUE((*tokens)[4].IsKeyword("FROM"));
  EXPECT_TRUE((*tokens)[8].IsSymbol("<="));
  EXPECT_EQ((*tokens)[9].type, TokenType::kNumber);
  EXPECT_EQ((*tokens).back().type, TokenType::kEnd);
}

TEST(TokenizerTest, KeywordsAreCaseInsensitive) {
  auto tokens = Tokenize("select x from t where y = 1 and z = 2");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[0].IsKeyword("SELECT"));
  EXPECT_TRUE((*tokens)[2].IsKeyword("FROM"));
  EXPECT_TRUE((*tokens)[4].IsKeyword("WHERE"));
}

TEST(TokenizerTest, StringLiteralsAndNegativeNumbers) {
  auto tokens = Tokenize("x = 'Glaucoma' and y = -12 and z = 3.5");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[2].type, TokenType::kString);
  EXPECT_EQ((*tokens)[2].text, "Glaucoma");
  EXPECT_EQ((*tokens)[6].text, "-12");
  EXPECT_EQ((*tokens)[10].text, "3.5");
}

TEST(TokenizerTest, RejectsUnterminatedString) {
  EXPECT_TRUE(Tokenize("x = 'oops").status().IsInvalidArgument());
}

TEST(TokenizerTest, RejectsStrayCharacters) {
  EXPECT_TRUE(Tokenize("x # y").status().IsInvalidArgument());
}

TEST(ParserTest, SimpleSelectStar) {
  auto stmt = ParseSelect("SELECT * FROM Patient WHERE age = 30");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(stmt->projections.empty());
  ASSERT_EQ(stmt->tables.size(), 1u);
  EXPECT_EQ(stmt->tables[0], "Patient");
  ASSERT_EQ(stmt->conditions.size(), 1u);
  EXPECT_EQ(stmt->conditions[0].kind, Condition::Kind::kCompare);
  EXPECT_EQ(stmt->conditions[0].op, CompareOp::kEq);
  EXPECT_EQ(stmt->conditions[0].literal, Value(int64_t{30}));
}

TEST(ParserTest, ThePaperExampleQuery) {
  // §2's motivating query, verbatim in spirit.
  auto stmt = ParseSelect(
      "Select Prescription.prescription "
      "from Patient, Diagnosis, Prescription "
      "where 30 < age and age < 50 "
      "and diagnosis = 'Glaucoma' "
      "and Patient.patient_id = Diagnosis.patient_id "
      "and '2000-01-01' <= date and date <= '2002-12-31' "
      "and Diagnosis.prescription_id = Prescription.prescription_id");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  ASSERT_EQ(stmt->projections.size(), 1u);
  EXPECT_EQ(stmt->projections[0].ToString(), "Prescription.prescription");
  EXPECT_EQ(stmt->tables.size(), 3u);
  ASSERT_EQ(stmt->conditions.size(), 7u);
  // "30 < age" must be normalized to age > 30.
  EXPECT_EQ(stmt->conditions[0].lhs.column, "age");
  EXPECT_EQ(stmt->conditions[0].op, CompareOp::kGt);
  // Date literals parse as dates.
  EXPECT_TRUE(stmt->conditions[4].literal.is_date());
  // Join conditions are recognized.
  EXPECT_EQ(stmt->conditions[3].kind, Condition::Kind::kJoin);
  EXPECT_EQ(stmt->conditions[6].kind, Condition::Kind::kJoin);
}

TEST(ParserTest, BetweenCondition) {
  auto stmt = ParseSelect("SELECT * FROM T WHERE age BETWEEN 30 AND 50");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->conditions.size(), 1u);
  EXPECT_EQ(stmt->conditions[0].kind, Condition::Kind::kBetween);
  EXPECT_EQ(stmt->conditions[0].literal, Value(int64_t{30}));
  EXPECT_EQ(stmt->conditions[0].literal_hi, Value(int64_t{50}));
}

TEST(ParserTest, BetweenThenAndChain) {
  auto stmt =
      ParseSelect("SELECT * FROM T WHERE age BETWEEN 30 AND 50 AND x = 'y'");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  ASSERT_EQ(stmt->conditions.size(), 2u);
}

TEST(ParserTest, ProjectionList) {
  auto stmt = ParseSelect("SELECT a, T.b, c FROM T");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->projections.size(), 3u);
  EXPECT_EQ(stmt->projections[0].ToString(), "a");
  EXPECT_EQ(stmt->projections[1].ToString(), "T.b");
}

TEST(ParserTest, NonDateStringsStayStrings) {
  auto stmt = ParseSelect("SELECT * FROM T WHERE d = '2002-13-45'");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(stmt->conditions[0].literal.is_string());
}

TEST(ParserTest, DoublesParse) {
  auto stmt = ParseSelect("SELECT * FROM T WHERE score = 2.5");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(stmt->conditions[0].literal.is_double());
}

TEST(ParserTest, RejectsMissingFrom) {
  EXPECT_FALSE(ParseSelect("SELECT *").ok());
}

TEST(ParserTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(ParseSelect("SELECT * FROM T extra").ok());
}

TEST(ParserTest, RejectsNonEqJoinComparison) {
  EXPECT_TRUE(ParseSelect("SELECT * FROM T, U WHERE T.a < U.b")
                  .status()
                  .IsInvalidArgument());
}

TEST(ParserTest, RejectsEmptyTableName) {
  EXPECT_FALSE(ParseSelect("SELECT * FROM WHERE x = 1").ok());
}

TEST(ParserTest, RoundTripToString) {
  const std::string sql =
      "SELECT T.a FROM T, U WHERE T.a = U.b AND a BETWEEN 1 AND 5 AND name = 'x'";
  auto stmt = ParseSelect(sql);
  ASSERT_TRUE(stmt.ok());
  // Reparsing the printed form yields the same structure.
  auto again = ParseSelect(stmt->ToString());
  ASSERT_TRUE(again.ok()) << stmt->ToString();
  EXPECT_EQ(again->tables, stmt->tables);
  EXPECT_EQ(again->conditions.size(), stmt->conditions.size());
}

}  // namespace
}  // namespace p2prange
