// Corpus: P2P001 must fire on each exception keyword in library code.
#include <stdexcept>

int Parse(const char* s) {
  if (!s) throw std::invalid_argument("null");  // line 5: throw
  try {  // line 6: try
    return 1;
  } catch (const std::exception&) {  // line 8: catch
    return 0;
  }
}
