// Corpus: P2P003 must fire on a naked new but not on WrapUnique(new).
#include <memory>

#include "common/memory.h"

struct Widget {
  int x = 0;
};

Widget* Leaky() {
  return new Widget();  // line 11: naked new
}

std::unique_ptr<Widget> Owned() {
  return p2prange::WrapUnique(new Widget());  // sanctioned: not flagged
}

std::unique_ptr<Widget> OwnedMultiline() {
  return p2prange::WrapUnique(
      new Widget());  // sanctioned across a line break: not flagged
}
