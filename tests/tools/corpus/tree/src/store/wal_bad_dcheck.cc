// Corpus: P2P004 must also fire on the WAL replay path (disk bytes are
// as untrusted as wire bytes).
#include "common/logging.h"

int ReplayRecord(int seq) {
  DCHECK_GT(seq, 0);  // line 6: DCHECK_GT on the WAL path
  return seq;
}
