// Corpus: P2P000 must fire on malformed or reason-less suppressions.
#include <cstdlib>

unsigned A() {
  return static_cast<unsigned>(rand());  // p2plint: allow(P2P002)
}

unsigned B() {
  return static_cast<unsigned>(rand());  // p2plint: allowed?
}

unsigned C() {
  // A well-formed suppression silences the rule and is NOT reported.
  return static_cast<unsigned>(rand());  // p2plint: allow(P2P002): corpus demo
}
