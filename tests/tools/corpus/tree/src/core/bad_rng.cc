// Corpus: P2P002 must fire on every unseeded randomness source.
#include <cstdlib>
#include <random>

unsigned Sample() {
  std::random_device rd;  // line 6: random_device
  std::mt19937 gen(rd());  // line 7: mt19937
  (void)gen;
  return static_cast<unsigned>(rand());  // line 9: rand()
}
