// Corpus: a clean file exercising every rule's near-miss patterns.
// The linter must report nothing here.
#include <map>
#include <memory>
#include <string>
#include <sys/socket.h>

#include "common/logging.h"
#include "common/memory.h"
#include "common/random.h"

struct Entry {
  int weight = 0;
};

// Keywords inside comments never fire: throw, try, catch, rand(),
// new Widget, DCHECK(x), ::write(fd).
int Lookup(std::map<std::string, Entry>* m, const std::string& k) {
  // try_emplace contains `try` as a prefix, not as a token.
  auto [it, inserted] = m->try_emplace(k);
  (void)inserted;
  const char* msg = "never throw; rand() in a string; new in a string";
  (void)msg;
  DCHECK(m != nullptr);  // src/core is a trusted path: DCHECK is fine
  return it->second.weight;
}

std::unique_ptr<Entry> Make() {
  auto a = std::make_unique<Entry>();  // make_unique, not naked new
  (void)a;
  return p2prange::WrapUnique(new Entry());  // the sanctioned spelling
}

void SafeSend(int fd, const char* data, unsigned len) {
  (void)::send(fd, data, len, MSG_NOSIGNAL);
}

unsigned Seeded() {
  p2prange::Rng rng(42);  // the project RNG is always allowed
  return static_cast<unsigned>(rng.Next32());
}
