// Corpus: P2P005 must fire on SIGPIPE-capable socket writes.
#include <sys/socket.h>
#include <unistd.h>

void Flush(int fd, const char* data, unsigned len) {
  (void)::send(fd, data, len, 0);  // line 6: send without MSG_NOSIGNAL
  (void)::write(fd, data, len);  // line 7: write on a socket
}

void FlushSafe(int fd, const char* data, unsigned len) {
  (void)::send(fd, data, len, MSG_NOSIGNAL);  // sanctioned: not flagged
}
