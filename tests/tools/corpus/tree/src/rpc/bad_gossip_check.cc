// Corpus: P2P004 must fire on CHECK over membership wire input — a
// hostile gossip or join body must surface as Status, not crash us.
#include "common/logging.h"

int DecodeGossipEntry(const unsigned char* body, int size) {
  CHECK(size >= 4);  // line 6: CHECK on decoded gossip bytes
  CHECK_EQ(static_cast<int>(body[0]), 1);  // line 7: CHECK_EQ on wire input
  return size;
}
