// Corpus: P2P007 must fire on every raw std sync primitive in src/.
#include <condition_variable>
#include <mutex>

#include "common/sync.h"

namespace {
std::mutex g_raw_mu;               // line 8: raw mutex
std::condition_variable g_raw_cv;  // line 9: raw condition variable
p2prange::Mutex g_mu;              // the annotated layer: not flagged
int g_counter = 0;
}  // namespace

void Bump() {
  std::lock_guard lock(g_raw_mu);  // line 15: raw scoped lock
  ++g_counter;
}

void WaitNonEmpty() {
  std::unique_lock lock(g_raw_mu);  // line 20: raw unique_lock
  g_raw_cv.wait(lock, [] { return g_counter > 0; });
}

int BumpAnnotated() {
  // The sanctioned spelling — the near-miss the rule must not flag.
  p2prange::MutexLock lock(&g_mu);
  return ++g_counter;
}
