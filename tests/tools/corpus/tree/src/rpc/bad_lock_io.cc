// Corpus: P2P008 must fire on a blocking syscall issued while a
// scoped lock from common/sync.h is held in the same block.
#include <poll.h>
#include <unistd.h>

#include "common/sync.h"

namespace {
p2prange::Mutex g_mu;
p2prange::SharedMutex g_data_mu;
int g_shared = 0;
}  // namespace

void SlowPeerStallsEveryone(pollfd* fds) {
  p2prange::MutexLock lock(&g_mu);
  (void)::poll(fds, 1, 10);  // line 16: poll while g_mu is held
  ::usleep(100);             // line 17: sleep while g_mu is held
  ++g_shared;
}

int ReaderBlocks(pollfd* fds) {
  p2prange::ReaderMutexLock lock(&g_data_mu);
  (void)::poll(fds, 1, 10);  // line 23: poll under a reader lock
  return g_shared;
}

void CopyThenBlock(pollfd* fds) {
  // The sanctioned shape: snapshot under the lock, block outside it.
  int copy;
  {
    p2prange::MutexLock lock(&g_mu);
    copy = g_shared;
  }
  (void)copy;
  (void)::poll(fds, 1, 10);  // lock already released: not flagged
}
