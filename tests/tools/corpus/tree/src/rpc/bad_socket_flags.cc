// Golden-corpus violations for P2P006 (nonblock-cloexec).
#include <sys/socket.h>

namespace p2prange {

int OpenListener() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  const int fd2 = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  const int conn = ::accept(fd, nullptr, nullptr);
  const int conn2 = ::accept4(fd, nullptr, nullptr, 0);
  const int good =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  return fd + fd2 + conn + conn2 + good;
}

}  // namespace p2prange
