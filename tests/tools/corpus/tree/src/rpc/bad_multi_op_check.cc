// Corpus: P2P004 must fire on CHECK over a batched-request body — a
// hostile kMultiOp frame (sub-op count, sub-op type byte) must be
// rejected with Status, not crash the worker that decodes it.
#include "common/logging.h"

int DecodeMultiOpHeader(const unsigned char* body, int size) {
  CHECK(size >= 2);  // line 7: CHECK on the raw batch header
  CHECK_LE(static_cast<int>(body[0]), 64);  // line 8: CHECK_LE on the wire count
  DCHECK(body[1] != 0);  // line 9: DCHECK on the first sub-op type
  return size;
}
