// Corpus: P2P004 must fire on DCHECK over wire-derived data.
#include "common/logging.h"

int DecodeLength(const unsigned char* buf, int size) {
  DCHECK(buf != nullptr);  // line 5: DCHECK on untrusted path
  DCHECK_GE(size, 4);  // line 6: DCHECK_GE on untrusted path
  return size;
}
