#!/usr/bin/env python3
"""Golden-corpus test for tools/p2prange_lint.py.

Three assertions:
  1. On the corpus tree (one deliberate violation file per rule plus a
     clean file), the linter reports *exactly* the findings in
     expected.txt — same files, same rule ids, same line numbers — and
     exits 1. A linter that stops firing on a known-bad snippet is a
     broken gate, not a quiet success.
  2. Every rule id (P2P000–P2P006) appears at least once in the corpus
     output, so adding a rule without a corpus snippet fails loudly.
  3. On the corpus's clean file alone, the linter exits 0 with no
     output.

Run directly or via ctest (registered in tests/CMakeLists.txt).
"""

import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
LINTER = os.path.join(REPO, "tools", "p2prange_lint.py")
CORPUS = os.path.join(HERE, "corpus", "tree")
EXPECTED = os.path.join(HERE, "corpus", "expected.txt")

ALL_RULES = ["P2P000", "P2P001", "P2P002", "P2P003", "P2P004", "P2P005",
             "P2P006"]


def fail(msg):
    print("lint_test: FAIL: %s" % msg, file=sys.stderr)
    sys.exit(1)


def run(args):
    proc = subprocess.run([sys.executable, LINTER] + args,
                          capture_output=True, text=True)
    return proc.returncode, proc.stdout


def main():
    rc, out = run(["--root", CORPUS])
    if rc != 1:
        fail("corpus run exited %d, want 1\n%s" % (rc, out))

    with open(EXPECTED, encoding="utf-8") as f:
        expected = f.read()
    if out != expected:
        import difflib
        diff = "\n".join(difflib.unified_diff(
            expected.splitlines(), out.splitlines(),
            "expected.txt", "actual", lineterm=""))
        fail("corpus findings diverge from golden file:\n%s" % diff)

    for rule in ALL_RULES:
        if rule + " " not in out and "for " + rule not in out:
            fail("rule %s has no firing corpus snippet" % rule)

    clean = os.path.join(CORPUS, "src", "core", "clean.cc")
    rc, out = run(["--root", CORPUS, clean])
    if rc != 0 or out:
        fail("clean file produced rc=%d output:\n%s" % (rc, out))

    print("lint_test: PASS (%d golden findings, %d rules)" %
          (len(expected.splitlines()), len(ALL_RULES)))


if __name__ == "__main__":
    main()
