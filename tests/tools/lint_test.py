#!/usr/bin/env python3
"""Golden-corpus test for tools/p2prange_lint.py.

Three assertions:
  1. On the corpus tree (one deliberate violation file per rule plus a
     clean file), the linter reports *exactly* the findings in
     expected.txt — same files, same rule ids, same line numbers — and
     exits 1. A linter that stops firing on a known-bad snippet is a
     broken gate, not a quiet success.
  2. Every rule id (P2P000–P2P008) appears at least once in the corpus
     output, so adding a rule without a corpus snippet fails loudly.
  3. On the corpus's clean file alone, the linter exits 0 with no
     output.
  4. Spot checks for the concurrency rules: P2P007 and P2P008 fire on
     the exact lines of their bad snippets, and their near-miss lines
     (the annotated layer itself; blocking after the lock scope closes)
     stay silent.

Run directly or via ctest (registered in tests/CMakeLists.txt).
"""

import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
LINTER = os.path.join(REPO, "tools", "p2prange_lint.py")
CORPUS = os.path.join(HERE, "corpus", "tree")
EXPECTED = os.path.join(HERE, "corpus", "expected.txt")

ALL_RULES = ["P2P000", "P2P001", "P2P002", "P2P003", "P2P004", "P2P005",
             "P2P006", "P2P007", "P2P008"]

# Exact (file, line, rule) anchors for the concurrency rules — the
# corpus comments label these lines, so a drifting linter (off-by-one
# scope scan, missed primitive) fails here with a precise message.
CONCURRENCY_ANCHORS = [
    ("src/rpc/bad_raw_mutex.cc", 8, "P2P007"),    # std::mutex field
    ("src/rpc/bad_raw_mutex.cc", 9, "P2P007"),    # std::condition_variable
    ("src/rpc/bad_raw_mutex.cc", 15, "P2P007"),   # std::lock_guard
    ("src/rpc/bad_raw_mutex.cc", 20, "P2P007"),   # std::unique_lock
    ("src/rpc/bad_lock_io.cc", 16, "P2P008"),     # ::poll under MutexLock
    ("src/rpc/bad_lock_io.cc", 17, "P2P008"),     # ::usleep under MutexLock
    ("src/rpc/bad_lock_io.cc", 23, "P2P008"),     # ::poll under ReaderMutexLock
]
# Lines that must stay silent: the annotated-layer near-misses.
CONCURRENCY_SILENT = [
    ("src/rpc/bad_raw_mutex.cc", 26),  # p2prange::MutexLock is sanctioned
    ("src/rpc/bad_lock_io.cc", 35),    # blocking after the lock scope closed
]


def fail(msg):
    print("lint_test: FAIL: %s" % msg, file=sys.stderr)
    sys.exit(1)


def run(args):
    proc = subprocess.run([sys.executable, LINTER] + args,
                          capture_output=True, text=True)
    return proc.returncode, proc.stdout


def main():
    rc, out = run(["--root", CORPUS])
    if rc != 1:
        fail("corpus run exited %d, want 1\n%s" % (rc, out))

    with open(EXPECTED, encoding="utf-8") as f:
        expected = f.read()
    if out != expected:
        import difflib
        diff = "\n".join(difflib.unified_diff(
            expected.splitlines(), out.splitlines(),
            "expected.txt", "actual", lineterm=""))
        fail("corpus findings diverge from golden file:\n%s" % diff)

    for rule in ALL_RULES:
        if rule + " " not in out and "for " + rule not in out:
            fail("rule %s has no firing corpus snippet" % rule)

    lines = out.splitlines()
    for rel, line_no, rule in CONCURRENCY_ANCHORS:
        prefix = "%s:%d: %s " % (rel, line_no, rule)
        if not any(l.startswith(prefix) for l in lines):
            fail("expected %s to fire at %s:%d" % (rule, rel, line_no))
    for rel, line_no in CONCURRENCY_SILENT:
        prefix = "%s:%d:" % (rel, line_no)
        if any(l.startswith(prefix) for l in lines):
            fail("near-miss line %s:%d must stay silent" % (rel, line_no))

    clean = os.path.join(CORPUS, "src", "core", "clean.cc")
    rc, out = run(["--root", CORPUS, clean])
    if rc != 0 or out:
        fail("clean file produced rc=%d output:\n%s" % (rc, out))

    print("lint_test: PASS (%d golden findings, %d rules)" %
          (len(expected.splitlines()), len(ALL_RULES)))


if __name__ == "__main__":
    main()
