// Randomized differential testing: random conjunctive queries over the
// medical schema are answered (a) by an independent nested-loop
// evaluator over the base relations and (b) through the full P2P
// system, cold and warm. Results must agree exactly — the cache layer
// may change *where* data comes from, never *what* the answer is
// (partial acceptance is off here).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/random.h"
#include "core/system.h"
#include "rel/generator.h"

namespace p2prange {
namespace {

struct GeneratedQuery {
  std::string sql;
  std::vector<std::string> tables;
};

/// Connected table subsets of the medical schema and the join edges
/// that connect them (Diagnosis is the hub).
struct Shape {
  std::vector<const char*> tables;
  std::vector<const char*> join_conds;
};

const Shape kShapes[] = {
    {{"Patient"}, {}},
    {{"Prescription"}, {}},
    {{"Patient", "Diagnosis"},
     {"Patient.patient_id = Diagnosis.patient_id"}},
    {{"Diagnosis", "Prescription"},
     {"Diagnosis.prescription_id = Prescription.prescription_id"}},
    {{"Physician", "Diagnosis"},
     {"Physician.physician_id = Diagnosis.physician_id"}},
    {{"Patient", "Diagnosis", "Prescription"},
     {"Patient.patient_id = Diagnosis.patient_id",
      "Diagnosis.prescription_id = Prescription.prescription_id"}},
    {{"Patient", "Diagnosis", "Physician"},
     {"Patient.patient_id = Diagnosis.patient_id",
      "Physician.physician_id = Diagnosis.physician_id"}},
};

const char* kDiagnosisValues[] = {"Glaucoma", "Diabetes", "Asthma", "Migraine"};

GeneratedQuery GenerateQuery(Rng& rng) {
  const Shape& shape = kShapes[rng.NextBounded(std::size(kShapes))];
  std::vector<std::string> conds(shape.join_conds.begin(), shape.join_conds.end());

  auto has = [&](const char* t) {
    return std::find_if(shape.tables.begin(), shape.tables.end(), [&](const char* x) {
             return std::string(x) == t;
           }) != shape.tables.end();
  };

  // Range predicate on Patient.age (usually).
  if (has("Patient") && rng.NextBernoulli(0.8)) {
    const uint64_t lo = rng.NextBounded(80);
    const uint64_t hi = lo + 1 + rng.NextBounded(40);
    conds.push_back("age >= " + std::to_string(lo) + " AND age <= " +
                    std::to_string(hi));
  }
  // Range predicate on Prescription.date.
  if (has("Prescription") && rng.NextBernoulli(0.7)) {
    const int y1 = 1992 + static_cast<int>(rng.NextBounded(14));
    const int y2 = y1 + static_cast<int>(rng.NextBounded(4));
    conds.push_back("date >= '" + std::to_string(y1) + "-01-01' AND date <= '" +
                    std::to_string(std::min(y2, 2009)) + "-12-28'");
  }
  // Equality on Diagnosis.diagnosis.
  if (has("Diagnosis") && rng.NextBernoulli(0.6)) {
    conds.push_back(std::string("diagnosis = '") +
                    kDiagnosisValues[rng.NextBounded(std::size(kDiagnosisValues))] +
                    "'");
  }

  std::string sql = "SELECT * FROM ";
  for (size_t i = 0; i < shape.tables.size(); ++i) {
    if (i > 0) sql += ", ";
    sql += shape.tables[i];
  }
  if (!conds.empty()) {
    sql += " WHERE ";
    for (size_t i = 0; i < conds.size(); ++i) {
      if (i > 0) sql += " AND ";
      sql += conds[i];
    }
  }
  GeneratedQuery q;
  q.sql = std::move(sql);
  q.tables.assign(shape.tables.begin(), shape.tables.end());
  return q;
}

/// Canonical multiset fingerprint of a relation's rows (order-free).
std::multiset<std::string> Fingerprint(const Relation& rel) {
  std::multiset<std::string> rows;
  for (const Row& row : rel.rows()) {
    std::string s;
    for (const Value& v : row) {
      s += v.ToString();
      s += '|';
    }
    rows.insert(std::move(s));
  }
  return rows;
}

TEST(RandomQueryTest, SystemAnswersMatchDirectExecutionColdAndWarm) {
  Catalog catalog = MakeMedicalCatalog();
  MedicalDataSpec spec;
  spec.num_patients = 250;
  spec.num_physicians = 12;
  spec.num_prescriptions = 300;
  spec.num_diagnoses = 350;
  ASSERT_TRUE(PopulateMedicalData(spec, &catalog).ok());

  SystemConfig cfg;
  cfg.num_peers = 48;
  cfg.lsh = LshParams::Paper(HashFamilyType::kApproxMinwise, 7);
  cfg.criterion = MatchCriterion::kContainment;
  cfg.seed = 7;
  auto sys = RangeCacheSystem::Make(cfg, catalog);
  ASSERT_TRUE(sys.ok());

  Rng rng(12345);
  int nonempty = 0;
  for (int i = 0; i < 40; ++i) {
    const GeneratedQuery q = GenerateQuery(rng);
    SCOPED_TRACE(q.sql);

    // Independent reference: direct plan execution over base data.
    auto stmt = ParseSelect(q.sql);
    ASSERT_TRUE(stmt.ok()) << stmt.status();
    auto plan = BuildPlan(*stmt, catalog);
    ASSERT_TRUE(plan.ok()) << plan.status();
    std::map<std::string, Relation> inputs;
    for (const std::string& t : q.tables) {
      inputs.emplace(t, **catalog.GetBaseData(t));
    }
    auto reference = ExecutePlan(*plan, inputs);
    ASSERT_TRUE(reference.ok()) << reference.status();
    const auto expected = Fingerprint(*reference);
    if (!expected.empty()) ++nonempty;

    // Through the system, twice: cold path (likely source) and warm
    // path (likely caches).
    for (int run = 0; run < 2; ++run) {
      auto outcome = sys->ExecuteQuery(q.sql);
      ASSERT_TRUE(outcome.ok()) << outcome.status();
      EXPECT_FALSE(outcome->approximate);
      EXPECT_EQ(Fingerprint(outcome->result), expected) << "run " << run;
    }
  }
  // The generator must produce substantial queries, not a pile of
  // empty results.
  EXPECT_GT(nonempty, 20);
}

TEST(RandomQueryTest, AcceptPartialNeverProducesFalsePositives) {
  Catalog catalog = MakeMedicalCatalog();
  MedicalDataSpec spec;
  spec.num_patients = 250;
  ASSERT_TRUE(PopulateMedicalData(spec, &catalog).ok());

  SystemConfig cfg;
  cfg.num_peers = 48;
  cfg.lsh = LshParams::Paper(HashFamilyType::kApproxMinwise, 11);
  cfg.criterion = MatchCriterion::kContainment;
  cfg.accept_partial_answers = true;
  cfg.seed = 11;
  auto sys = RangeCacheSystem::Make(cfg, catalog);
  ASSERT_TRUE(sys.ok());

  Rng rng(54321);
  for (int i = 0; i < 60; ++i) {
    const uint64_t lo = rng.NextBounded(80);
    const uint64_t hi = lo + 1 + rng.NextBounded(30);
    const std::string sql = "SELECT * FROM Patient WHERE age >= " +
                            std::to_string(lo) + " AND age <= " +
                            std::to_string(hi);
    SCOPED_TRACE(sql);
    auto outcome = sys->ExecuteQuery(sql);
    ASSERT_TRUE(outcome.ok());
    // Subset property: every row satisfies the predicate.
    auto idx = outcome->result.schema().FieldIndex("Patient.age");
    ASSERT_TRUE(idx.ok());
    for (const Row& row : outcome->result.rows()) {
      EXPECT_GE(row[*idx].AsInt(), static_cast<int64_t>(lo));
      EXPECT_LE(row[*idx].AsInt(), static_cast<int64_t>(hi));
    }
    // And the count never exceeds the true answer.
    auto reference = (*catalog.GetBaseData("Patient"))
                         ->SelectOrdinalRange("age", static_cast<int64_t>(lo),
                                              static_cast<int64_t>(hi));
    ASSERT_TRUE(reference.ok());
    EXPECT_LE(outcome->result.num_rows(), reference->num_rows());
  }
}

}  // namespace
}  // namespace p2prange
