// Fault-tolerance acceptance tests: abrupt crashes, permanent kills,
// and mid-query failures injected against a full RangeCacheSystem.
// Queries must degrade — visible in SystemMetrics and in the
// RangeLookupOutcome bookkeeping — but never return an error the
// source could have answered.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "chord/ring.h"
#include "core/system.h"
#include "rel/generator.h"
#include "sim/fault_injector.h"
#include "workload/range_workload.h"

namespace p2prange {
namespace {

PartitionKey NumbersKey(uint32_t lo, uint32_t hi) {
  return PartitionKey{"Numbers", "key", Range(lo, hi)};
}

SystemConfig FaultyConfig(uint64_t seed) {
  SystemConfig cfg;
  cfg.num_peers = 48;
  cfg.lsh = LshParams::Paper(HashFamilyType::kApproxMinwise, seed);
  cfg.seed = seed;
  return cfg;
}

RangeCacheSystem MakeNumbersSystem(const SystemConfig& cfg) {
  auto sys = RangeCacheSystem::Make(cfg, MakeNumbersCatalog(2000, 0, 1000, 5));
  EXPECT_TRUE(sys.ok()) << sys.status();
  return std::move(sys).ValueUnsafe();
}

// --- Config validation ------------------------------------------------

TEST(FaultPolicyTest, ValidateRejectsBadFields) {
  FaultPolicy p;
  EXPECT_TRUE(p.Validate().ok());
  p.max_retries = -1;
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
  p = FaultPolicy{};
  p.backoff_multiplier = 0.5;
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
  p = FaultPolicy{};
  p.backoff_jitter = 1.5;
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
  p = FaultPolicy{};
  p.op_budget_ms = -2.0;
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
}

TEST(FaultPolicyTest, SystemMakeValidatesPolicy) {
  SystemConfig cfg = FaultyConfig(3);
  cfg.fault.max_retries = -2;
  EXPECT_TRUE(RangeCacheSystem::Make(cfg, MakeNumbersCatalog(10, 0, 10, 1))
                  .status()
                  .IsInvalidArgument());
}

TEST(LatencyModelTest, ValidateRejectsBadModels) {
  LatencyModel m;
  EXPECT_TRUE(m.Validate().ok());
  m.loss_rate = 1.0;  // would drop every message
  EXPECT_TRUE(m.Validate().IsInvalidArgument());
  m = LatencyModel{};
  m.loss_rate = -0.1;
  EXPECT_TRUE(m.Validate().IsInvalidArgument());
  m = LatencyModel{};
  m.base_ms = -5.0;
  EXPECT_TRUE(m.Validate().IsInvalidArgument());
}

TEST(LatencyModelTest, ChordRingMakeValidatesModel) {
  chord::ChordConfig cfg;
  cfg.latency.loss_rate = 1.5;
  EXPECT_TRUE(chord::ChordRing::Make(16, 11, cfg).status().IsInvalidArgument());
  cfg = chord::ChordConfig{};
  cfg.latency.jitter_ms = -1.0;
  EXPECT_TRUE(chord::ChordRing::Make(16, 11, cfg).status().IsInvalidArgument());
  cfg = chord::ChordConfig{};
  cfg.max_message_retries = -1;
  EXPECT_TRUE(chord::ChordRing::Make(16, 11, cfg).status().IsInvalidArgument());
}

// --- Stale-descriptor plumbing ----------------------------------------

TEST(StaleRepairTest, BucketStoreEraseStaleRemovesAllCopies) {
  BucketStore store;
  const PartitionKey key = NumbersKey(100, 200);
  const NetAddress dead{7, 7}, live{8, 8};
  EXPECT_TRUE(store.Insert(11, PartitionDescriptor{key, dead}));
  EXPECT_TRUE(store.Insert(22, PartitionDescriptor{key, dead}));
  EXPECT_TRUE(store.Insert(33, PartitionDescriptor{NumbersKey(100, 200), live}));
  EXPECT_TRUE(store.Insert(11, PartitionDescriptor{NumbersKey(0, 50), dead}));
  ASSERT_EQ(store.num_descriptors(), 4u);

  EXPECT_EQ(store.EraseStale(key, dead), 2u);
  EXPECT_EQ(store.num_descriptors(), 2u);
  // The live holder's copy and the other range survive.
  EXPECT_TRUE(store.ContainsExact(33, key));
  EXPECT_TRUE(store.ContainsExact(11, NumbersKey(0, 50)));
  EXPECT_FALSE(store.ContainsExact(11, key));
  EXPECT_EQ(store.EraseStale(key, dead), 0u) << "idempotent";
}

TEST(StaleRepairTest, PeerEraseEqDescriptor) {
  Peer peer(chord::NodeInfo{}, 0);
  peer.StoreEqDescriptor(5, EqDescriptor{"k1", NetAddress{1, 1}});
  peer.StoreEqDescriptor(5, EqDescriptor{"k2", NetAddress{2, 2}});
  EXPECT_FALSE(peer.EraseEqDescriptor(5, "k1", NetAddress{9, 9}))
      << "holder must match";
  EXPECT_TRUE(peer.EraseEqDescriptor(5, "k1", NetAddress{1, 1}));
  EXPECT_FALSE(peer.FindEqDescriptor(5, "k1").has_value());
  EXPECT_TRUE(peer.FindEqDescriptor(5, "k2").has_value());
}

// --- Crash / recover at the system layer ------------------------------

TEST(CrashRecoverTest, SourceCannotCrashAndDoubleCrashRejected) {
  auto sys = MakeNumbersSystem(FaultyConfig(9));
  EXPECT_TRUE(sys.CrashPeer(sys.source_address()).IsInvalidArgument());
  auto victim = sys.ring().RandomAliveAddress();
  ASSERT_TRUE(victim.ok());
  while (*victim == sys.source_address()) {
    victim = sys.ring().RandomAliveAddress();
    ASSERT_TRUE(victim.ok());
  }
  ASSERT_TRUE(sys.CrashPeer(*victim).ok());
  EXPECT_TRUE(sys.CrashPeer(*victim).IsInvalidArgument());
  EXPECT_TRUE(sys.RecoverPeer(*victim).ok());
  EXPECT_TRUE(sys.RecoverPeer(*victim).IsInvalidArgument());
}

TEST(CrashRecoverTest, RecoveredPeerKeepsItsDescriptors) {
  SystemConfig cfg = FaultyConfig(21);
  auto sys = MakeNumbersSystem(cfg);
  // Populate caches; find a peer holding descriptors.
  Rng rng(21);
  UniformRangeGenerator gen(0, 1000, 21);
  for (int i = 0; i < 30; ++i) {
    const Range r = gen.Next();
    ASSERT_TRUE(sys.LookupRange(NumbersKey(r.lo(), r.hi())).ok());
  }
  NetAddress loaded{};
  size_t before = 0;
  for (int i = 0; i < 200 && before == 0; ++i) {
    auto addr = sys.ring().RandomAliveAddress();
    ASSERT_TRUE(addr.ok());
    if (*addr == sys.source_address()) continue;
    const Peer* p = sys.peer(*addr);
    ASSERT_NE(p, nullptr);
    if (p->store().num_descriptors() > 0) {
      loaded = *addr;
      before = p->store().num_descriptors();
    }
  }
  ASSERT_GT(before, 0u) << "no peer accumulated descriptors";
  ASSERT_TRUE(sys.CrashPeer(loaded).ok());
  EXPECT_FALSE(sys.ring().network().IsAlive(loaded));
  ASSERT_TRUE(sys.RecoverPeer(loaded).ok());
  EXPECT_TRUE(sys.ring().network().IsAlive(loaded));
  EXPECT_EQ(sys.peer(loaded)->store().num_descriptors(), before)
      << "crash/recover must not lose state";
  // The recovered node routes again.
  auto outcome = sys.LookupRangeFrom(loaded, NumbersKey(100, 200));
  EXPECT_TRUE(outcome.ok()) << outcome.status();
}

// Crashes every owner of the in-flight query at the "probe" step —
// after routing resolved them, before they answer (the moment the ring
// cannot route around).
void CrashOwnersMidQuery(RangeCacheSystem* sys,
                         const std::vector<NetAddress>& owners,
                         const NetAddress& origin) {
  sys->set_step_hook([sys, owners, origin](const char* stage) {
    if (std::string(stage) != "probe") return;
    for (const NetAddress& owner : owners) {
      if (owner == sys->source_address() || owner == origin) continue;
      sys->CrashPeer(owner).IgnoreError();  // idempotent across probes
    }
  });
}

TEST(CrashRecoverTest, CrashedOwnersDegradeLookupsInsteadOfFailingThem) {
  SystemConfig cfg = FaultyConfig(33);
  auto sys = MakeNumbersSystem(cfg);
  ASSERT_TRUE(sys.LookupRange(NumbersKey(300, 400)).ok());
  auto probe = sys.LookupRange(NumbersKey(300, 400));
  ASSERT_TRUE(probe.ok());
  const NetAddress origin = sys.source_address();
  CrashOwnersMidQuery(&sys, probe->probed_owners, origin);
  auto degraded = sys.LookupRangeFrom(origin, NumbersKey(300, 400));
  sys.set_step_hook(nullptr);
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  EXPECT_TRUE(degraded->degraded);
  EXPECT_GT(degraded->probes_failed, 0);
  EXPECT_GT(sys.metrics().probes_failed, 0u);
  EXPECT_GT(sys.metrics().degraded_lookups, 0u);
}

TEST(CrashRecoverTest, ReplicationFailsOverToSuccessors) {
  SystemConfig cfg = FaultyConfig(45);
  cfg.descriptor_replication = 3;
  auto sys = MakeNumbersSystem(cfg);
  ASSERT_TRUE(sys.LookupRange(NumbersKey(500, 600)).ok());
  auto probe = sys.LookupRange(NumbersKey(500, 600));
  ASSERT_TRUE(probe.ok());
  ASSERT_TRUE(probe->match.has_value());
  const NetAddress origin = sys.source_address();
  CrashOwnersMidQuery(&sys, probe->probed_owners, origin);
  auto after = sys.LookupRangeFrom(origin, NumbersKey(500, 600));
  sys.set_step_hook(nullptr);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_TRUE(after->match.has_value())
      << "replicas at the owners' successors should still answer";
  EXPECT_GT(sys.metrics().probe_failovers, 0u);
  EXPECT_GT(after->failovers, 0);
}

TEST(CrashRecoverTest, StaleDescriptorsRepairedAndQueryFallsToSource) {
  SystemConfig cfg = FaultyConfig(57);
  auto sys = MakeNumbersSystem(cfg);
  const std::string sql = "SELECT * FROM Numbers WHERE key >= 250 AND key <= 350";
  auto first = sys.ExecuteQuery(sql);
  ASSERT_TRUE(first.ok()) << first.status();
  const size_t expected = first->result.num_rows();
  ASSERT_GT(expected, 0u);
  // Find the holder the caches now point at; kill it *between* the
  // successful probe and the fetch, so the match is already committed
  // when the holder turns out to be dead.
  auto lookup = sys.LookupRange(NumbersKey(250, 350));
  ASSERT_TRUE(lookup.ok());
  ASSERT_TRUE(lookup->match.has_value());
  const NetAddress holder = lookup->match->holder;
  ASSERT_NE(holder, sys.source_address());

  NetAddress client = sys.source_address();
  for (int i = 0; i < 100 && (client == sys.source_address() || client == holder);
       ++i) {
    auto addr = sys.ring().RandomAliveAddress();
    ASSERT_TRUE(addr.ok());
    client = *addr;
  }
  ASSERT_NE(client, holder);
  sys.set_step_hook([&sys, holder](const char* stage) {
    if (std::string(stage) == "fetch") {
      sys.CrashPeer(holder).IgnoreError();  // repeat fetches: already down
    }
  });
  auto second = sys.ExecuteQueryFrom(client, sql);
  sys.set_step_hook(nullptr);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second->result.num_rows(), expected)
      << "the source answers what the dead cache cannot";
  EXPECT_GT(sys.metrics().stale_evictions, 0u)
      << "probing owners evict the dead holder's descriptors";
  EXPECT_GT(sys.metrics().source_fallbacks, 0u);

  // The repair is durable: a fresh probe no longer surfaces the dead
  // holder as a candidate.
  auto repaired = sys.LookupRangeFrom(client, NumbersKey(250, 350));
  ASSERT_TRUE(repaired.ok());
  for (const RangeMatch& m : repaired->ranked) {
    EXPECT_NE(m.holder, holder);
  }
}

TEST(CrashRecoverTest, OpBudgetCutsLookupsShort) {
  SystemConfig cfg = FaultyConfig(69);
  cfg.fault.op_budget_ms = 0.001;  // practically no budget
  auto sys = MakeNumbersSystem(cfg);
  auto outcome = sys.LookupRange(NumbersKey(10, 90));
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_TRUE(outcome->degraded);
  EXPECT_GT(sys.metrics().budget_exhausted, 0u);
}

// --- FaultInjector harness --------------------------------------------

TEST(FaultInjectorTest, ScriptedCrashAndRecoverCycle) {
  auto sys = MakeNumbersSystem(FaultyConfig(81));
  FaultInjectorConfig fcfg;
  fcfg.seed = 81;
  FaultInjector injector(&sys, fcfg);
  const size_t alive_before = sys.ring().num_alive();
  ASSERT_TRUE(injector.CrashRandomPeer().ok());
  ASSERT_TRUE(injector.CrashRandomPeer().ok());
  EXPECT_EQ(injector.num_crashed(), 2u);
  EXPECT_EQ(sys.ring().num_alive(), alive_before - 2);
  ASSERT_TRUE(injector.RecoverOneCrashedPeer().ok());
  ASSERT_TRUE(injector.RecoverOneCrashedPeer().ok());
  EXPECT_TRUE(injector.RecoverOneCrashedPeer().IsNotFound());
  EXPECT_EQ(sys.ring().num_alive(), alive_before);
}

TEST(FaultInjectorTest, MinAliveFloorHolds) {
  SystemConfig cfg = FaultyConfig(93);
  cfg.num_peers = 8;
  auto sys = MakeNumbersSystem(cfg);
  FaultInjectorConfig fcfg;
  fcfg.min_alive = 6;
  fcfg.seed = 93;
  FaultInjector injector(&sys, fcfg);
  ASSERT_TRUE(injector.CrashRandomPeer().ok());
  ASSERT_TRUE(injector.CrashRandomPeer().ok());
  EXPECT_TRUE(injector.CrashRandomPeer().IsInvalidArgument());
  EXPECT_TRUE(injector.KillRandomPeer().IsInvalidArgument());
  EXPECT_EQ(sys.ring().num_alive(), 6u);
}

TEST(FaultInjectorTest, MidQueryCrashesNeverFailLookups) {
  SystemConfig cfg = FaultyConfig(105);
  cfg.descriptor_replication = 2;
  auto sys = MakeNumbersSystem(cfg);
  FaultInjectorConfig fcfg;
  fcfg.mid_query_crash_prob = 0.15;
  fcfg.recover_prob = 0.5;
  fcfg.stabilize_every = 5;
  fcfg.min_alive = 8;
  fcfg.seed = 105;
  FaultInjector injector(&sys, fcfg);
  UniformRangeGenerator gen(0, 1000, 105);
  auto report = injector.RunLookups(
      [&] {
        const Range r = gen.Next();
        return NumbersKey(r.lo(), r.hi());
      },
      60);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->queries, 60u);
  EXPECT_EQ(report->errors, 0u) << report->ToString();
  EXPECT_GT(report->crashes, 0u) << "the schedule should actually fire";
}

// --- The acceptance bar -----------------------------------------------
//
// 20% of the peers fail abruptly mid-workload while every message
// risks transit loss (loss_rate = 0.1). Zero queries may return an
// error; the degradation must be visible in SystemMetrics.
TEST(FaultInjectorTest, AbruptFailuresWithLossNeverFailQueries) {
  SystemConfig cfg = FaultyConfig(117);
  cfg.num_peers = 50;
  cfg.descriptor_replication = 2;
  cfg.chord.latency.loss_rate = 0.1;
  cfg.chord.max_message_retries = 8;
  cfg.fault.max_retries = 8;
  auto sys = MakeNumbersSystem(cfg);

  FaultInjectorConfig fcfg;
  // Kill 10 of the 50 peers (20%), spread across the workload; crash
  // a few more transiently while queries are in flight.
  for (size_t step = 4; step <= 40; step += 4) {
    fcfg.script.push_back({step, FaultAction::kKill, 1});
  }
  fcfg.mid_query_crash_prob = 0.02;
  fcfg.stabilize_every = 4;
  fcfg.min_alive = 8;
  fcfg.seed = 117;
  FaultInjector injector(&sys, fcfg);

  UniformRangeGenerator gen(0, 1000, 117);
  auto report = injector.RunQueries(
      [&] {
        const Range r = gen.Next();
        return "SELECT * FROM Numbers WHERE key >= " + std::to_string(r.lo()) +
               " AND key <= " + std::to_string(r.hi());
      },
      60);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->queries, 60u);
  EXPECT_EQ(report->errors, 0u) << report->ToString();
  EXPECT_EQ(report->kills, 10u);

  const SystemMetrics& m = sys.metrics();
  EXPECT_GT(m.retransmissions, 0u) << "loss must have been retried";
  EXPECT_GT(m.degraded_lookups + m.probes_failed + m.stale_evictions +
                m.source_fallbacks + m.probe_failovers,
            0u)
      << "degradation must be observable: " << m.ToString();
  // Exact answers throughout: every query was still answered fully
  // (cache or source), never with silently wrong contents.
  EXPECT_EQ(report->complete, report->queries) << report->ToString();
}

}  // namespace
}  // namespace p2prange
