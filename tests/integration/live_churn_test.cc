// Live-ring churn acceptance (DESIGN.md §9): a ring of real
// p2prange_node processes grown one --join at a time, then driven
// through joins, an abrupt SIGKILL, and a graceful rolling restart
// while a seeded query load keeps running. The claims:
//
//  1. Growth works over real RPC — daemons join through a bootstrap
//     member, the views converge, and the client discovers the new
//     members through gossip.
//  2. No query ever fails outright under this churn (replication +
//     failover + redirects absorb every transition).
//  3. Answer quality survives: once the ring re-converges after each
//     event, recall is within two points of the static baseline.
//
// Waits are poll-until-converged loops with deadlines, never fixed
// sleeps, so the test is fast on fast machines and only patient on
// loaded CI boxes. Every child is reaped by RAII.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "rel/generator.h"
#include "rpc/ring_client.h"
#include "rpc/tcp.h"
#include "workload/range_workload.h"

namespace p2prange {
namespace {

namespace fs = std::filesystem;

NetAddress Loopback(uint16_t port) {
  NetAddress a;
  a.host = 0x7F000001;  // 127.0.0.1
  a.port = port;
  return a;
}

std::string NodeBinary() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  const fs::path candidate =
      fs::path(buf).parent_path().parent_path() / "tools" / "p2prange_node";
  return fs::exists(candidate) ? candidate.string() : "";
}

NetAddress ReservePort() {
  auto sock = rpc::Listen(Loopback(0));
  EXPECT_TRUE(sock.ok());
  if (!sock.ok()) return NetAddress{};
  const NetAddress bound = sock->bound;
  ::close(sock->fd);
  return bound;
}

/// One spawned daemon with fast membership timers; the destructor
/// guarantees it dies.
class ChurnDaemon {
 public:
  ChurnDaemon(const std::string& binary, const NetAddress& addr,
              const std::string& wal_dir, const std::string& join) {
    addr_ = addr;
    wal_dir_ = wal_dir;
    std::vector<std::string> argv_store = {
        binary,
        "--listen=" + addr.ToString(),
        "--wal_dir=" + wal_dir,
        "--replication=2",
        // Fast convergence so the acceptance run is quick: probes every
        // 100ms, three strikes at a 300ms timeout ≈ sub-2s detection.
        "--probe_ms=100",
        "--gossip_ms=100",
        "--stabilize_ms=100",
        "--probe_timeout_ms=300",
    };
    if (!join.empty()) argv_store.push_back("--join=" + join);
    std::vector<char*> argv;
    for (std::string& s : argv_store) argv.push_back(s.data());
    argv.push_back(nullptr);
    pid_ = ::fork();
    if (pid_ == 0) {
      ::execv(binary.c_str(), argv.data());
      _exit(127);  // exec failed
    }
  }

  ~ChurnDaemon() {
    if (pid_ <= 0) return;
    ::kill(pid_, SIGKILL);
    int status = 0;
    ::waitpid(pid_, &status, 0);
  }

  ChurnDaemon(const ChurnDaemon&) = delete;
  ChurnDaemon& operator=(const ChurnDaemon&) = delete;

  const NetAddress& address() const { return addr_; }
  const std::string& wal_dir() const { return wal_dir_; }

  void Kill() {
    ::kill(pid_, SIGKILL);
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
  }

  /// SIGTERM (graceful handoff + leave) and require exit 0 within ~10s.
  ::testing::AssertionResult Terminate() {
    if (pid_ <= 0) return ::testing::AssertionFailure() << "not running";
    ::kill(pid_, SIGTERM);
    for (int i = 0; i < 200; ++i) {
      int status = 0;
      const pid_t got = ::waitpid(pid_, &status, WNOHANG);
      if (got == pid_) {
        pid_ = -1;
        if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
          return ::testing::AssertionSuccess();
        }
        return ::testing::AssertionFailure()
               << "daemon exited with status " << status;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    return ::testing::AssertionFailure() << "daemon ignored SIGTERM";
  }

 private:
  pid_t pid_ = -1;
  NetAddress addr_;
  std::string wal_dir_;
};

std::string MakeScratchDir() {
  std::string tmpl = ::testing::TempDir() + "live_churn_XXXXXX";
  char* made = ::mkdtemp(tmpl.data());
  EXPECT_NE(made, nullptr);
  return made ? std::string(made) : std::string();
}

constexpr uint32_t kDomainLo = 0;
constexpr uint32_t kDomainHi = 1000;
constexpr uint64_t kSeed = 7;
constexpr size_t kPublishes = 30;
constexpr size_t kQueries = 20;

rpc::RingClientOptions ClientOptions() {
  rpc::RingClientOptions options;
  options.lsh =
      LshParams::Paper(HashFamilyType::kApproxMinwise, kSeed ^ 0x5bd1e995u);
  options.descriptor_replication = 2;
  // Short enough that a probe into a half-dead peer fails over inside
  // one batch, long enough for sanitized builds on loaded boxes.
  options.deadline_ms = 2000.0;
  options.transport.default_deadline_ms = 2000.0;
  options.fault.max_retries = 1;
  return options;
}

::testing::AssertionResult AwaitPing(rpc::RingClient& client,
                                     const NetAddress& member) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    if (client.Ping(member).ok()) return ::testing::AssertionSuccess();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return ::testing::AssertionFailure()
         << "no pong from " << member.ToString() << " after 10s";
}

/// Polls RefreshView until the client's view holds exactly `expected`
/// alive members — i.e. the ring's own views converged on that count,
/// since the client only relays what the members gossip.
::testing::AssertionResult AwaitViewSize(rpc::RingClient& client,
                                         size_t expected) {
  Status last;
  for (int attempt = 0; attempt < 300; ++attempt) {
    last = client.RefreshView();
    if (last.ok() && client.view().size() == expected) {
      return ::testing::AssertionSuccess();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return ::testing::AssertionFailure()
         << "view stuck at " << client.view().size() << " members, wanted "
         << expected << " (last refresh: " << last.ToString() << ")";
}

struct BatchResult {
  int failed_lookups = 0;  ///< Lookup() itself errored — must never happen
  int probes_failed = 0;   ///< probe groups no replica answered
  int failovers = 0;
  int redirects = 0;
  double recall = 0.0;
};

/// The seeded query batch: the same kQueries draws every time, so
/// recall numbers across phases are directly comparable.
BatchResult QueryBatch(rpc::RingClient& client) {
  BatchResult batch;
  UniformRangeGenerator qgen(kDomainLo, kDomainHi, kSeed ^ 0x9E3779B9);
  for (size_t i = 0; i < kQueries; ++i) {
    const Range q = qgen.Next();
    auto outcome = client.Lookup(PartitionKey{"T", "a", q});
    if (!outcome.ok()) {
      ADD_FAILURE() << "lookup " << i << ": " << outcome.status().ToString();
      ++batch.failed_lookups;
      continue;
    }
    batch.probes_failed += outcome->probes_failed;
    batch.failovers += outcome->failovers;
    batch.redirects += outcome->redirects;
    if (!outcome->ranked.empty()) {
      batch.recall += q.RecallFrom(outcome->ranked.front().descriptor.key.range);
    }
  }
  batch.recall /= static_cast<double>(kQueries);
  return batch;
}

/// Repeats the batch until recall recovers to within two points of the
/// baseline with every probe answered (re-replication is asynchronous;
/// convergence, not instant repair, is the contract). Queries must
/// never fail even while converging.
BatchResult AwaitRecall(rpc::RingClient& client, double baseline) {
  BatchResult batch;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  do {
    batch = QueryBatch(client);
    EXPECT_EQ(batch.failed_lookups, 0);
    if (batch.probes_failed == 0 && batch.recall >= baseline - 0.02) {
      return batch;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  } while (std::chrono::steady_clock::now() < deadline);
  return batch;
}

TEST(LiveChurnTest, RingGrownByJoinsSurvivesKillAndRollingRestart) {
  const std::string binary = NodeBinary();
  ASSERT_FALSE(binary.empty()) << "p2prange_node not built next to tests";
  const std::string scratch = MakeScratchDir();
  ASSERT_FALSE(scratch.empty());
  auto wal = [&](const char* name) {
    const std::string dir = scratch + "/" + name;
    fs::create_directories(dir);
    return dir;
  };

  // Grow the ring one join at a time: a starts alone, b and c enter
  // through it.
  auto a = std::make_unique<ChurnDaemon>(binary, ReservePort(), wal("a"), "");
  auto client_result =
      rpc::RingClient::Make({a->address()}, ClientOptions());
  ASSERT_TRUE(client_result.ok()) << client_result.status().ToString();
  rpc::RingClient& client = **client_result;
  ASSERT_TRUE(AwaitPing(client, a->address()));
  ASSERT_TRUE(AwaitViewSize(client, 1));

  const std::string bootstrap = a->address().ToString();
  auto b = std::make_unique<ChurnDaemon>(binary, ReservePort(), wal("b"),
                                         bootstrap);
  ASSERT_TRUE(AwaitPing(client, b->address()));
  ASSERT_TRUE(AwaitViewSize(client, 2));
  auto c = std::make_unique<ChurnDaemon>(binary, ReservePort(), wal("c"),
                                         bootstrap);
  ASSERT_TRUE(AwaitPing(client, c->address()));
  ASSERT_TRUE(AwaitViewSize(client, 3));

  // Seed the ring (holders round-robin over the members) and take the
  // static baseline.
  {
    UniformRangeGenerator gen(kDomainLo, kDomainHi, kSeed);
    const std::vector<NetAddress> holders = {a->address(), b->address(),
                                             c->address()};
    for (size_t i = 0; i < kPublishes; ++i) {
      ASSERT_TRUE(client
                      .Publish(PartitionKey{"T", "a", gen.Next()},
                               holders[i % holders.size()])
                      .ok())
          << "publish " << i;
    }
  }
  const BatchResult baseline = QueryBatch(client);
  ASSERT_EQ(baseline.failed_lookups, 0);
  ASSERT_EQ(baseline.probes_failed, 0);
  ASSERT_GT(baseline.recall, 0.0) << "the workload found nothing at all";

  // --- Event 1: a fourth member joins under load -----------------------
  auto d = std::make_unique<ChurnDaemon>(binary, ReservePort(), wal("d"),
                                         bootstrap);
  ASSERT_TRUE(AwaitPing(client, d->address()));
  // Queries keep being answered while the join propagates.
  EXPECT_EQ(QueryBatch(client).failed_lookups, 0);
  ASSERT_TRUE(AwaitViewSize(client, 4));
  const BatchResult after_join = AwaitRecall(client, baseline.recall);
  EXPECT_EQ(after_join.probes_failed, 0);
  EXPECT_GE(after_join.recall, baseline.recall - 0.02)
      << "join cost recall: " << after_join.recall << " vs baseline "
      << baseline.recall;

  // --- Event 2: one member dies abruptly (no handoff) ------------------
  b->Kill();
  client.transport().Disconnect(b->address());
  // Queries during the detection window must still all be answered:
  // the dead peer's buckets fail over to their surviving replicas.
  EXPECT_EQ(QueryBatch(client).failed_lookups, 0);
  ASSERT_TRUE(AwaitViewSize(client, 3)) << "failure detector never fired";
  const BatchResult after_kill = AwaitRecall(client, baseline.recall);
  EXPECT_EQ(after_kill.probes_failed, 0);
  EXPECT_GE(after_kill.recall, baseline.recall - 0.02)
      << "abrupt death cost recall: " << after_kill.recall << " vs baseline "
      << baseline.recall;

  // --- Event 3: rolling restart of a remaining member ------------------
  // SIGTERM hands its descriptors to the successor and announces the
  // leave; the replacement process rejoins on the same address and WAL
  // directory and pulls its arc back.
  const NetAddress c_addr = c->address();
  const std::string c_wal = c->wal_dir();
  ASSERT_TRUE(c->Terminate());
  client.transport().Disconnect(c_addr);
  EXPECT_EQ(QueryBatch(client).failed_lookups, 0);
  c = std::make_unique<ChurnDaemon>(binary, c_addr, c_wal, bootstrap);
  ASSERT_TRUE(AwaitPing(client, c_addr));
  ASSERT_TRUE(AwaitViewSize(client, 3));
  const BatchResult after_restart = AwaitRecall(client, baseline.recall);
  EXPECT_EQ(after_restart.probes_failed, 0);
  EXPECT_GE(after_restart.recall, baseline.recall - 0.02)
      << "rolling restart cost recall: " << after_restart.recall
      << " vs baseline " << baseline.recall;

  // Survivors drain gracefully (exit 0) — the ring shrinks member by
  // member without a failure.
  EXPECT_TRUE(d->Terminate());
  EXPECT_TRUE(c->Terminate());
  EXPECT_TRUE(a->Terminate());
}

}  // namespace
}  // namespace p2prange
