// The deployable system, end to end: real p2prange_node processes on
// loopback, driven by a RingClient over real TCP. Three claims:
//
//  1. Answer quality survives deployment — the paper's uniform workload
//     gets the same average recall over the wire as through the
//     in-process simulator (the protocol is the same protocol).
//  2. Failure handling works on a real network — a stopped peer costs
//     deadline timeouts and FaultPolicy retransmissions, a killed peer
//     fails over to replicas, and the answer still comes back.
//  3. Durability holds across process death — a restarted daemon serves
//     the descriptors it had before SIGTERM.
//
// Every child is reaped by RAII (SIGKILL as the last resort) so a
// failing assertion can never leak a daemon into the build machine.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/system.h"
#include "rel/generator.h"
#include "rpc/ring_client.h"
#include "rpc/tcp.h"
#include "workload/range_workload.h"

namespace p2prange {
namespace {

namespace fs = std::filesystem;

NetAddress Loopback(uint16_t port) {
  NetAddress a;
  a.host = 0x7F000001;  // 127.0.0.1
  a.port = port;
  return a;
}

/// The p2prange_node binary, found relative to this test binary
/// (build/tests/p2prange_tests -> build/tools/p2prange_node).
std::string NodeBinary() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  const fs::path candidate =
      fs::path(buf).parent_path().parent_path() / "tools" / "p2prange_node";
  return fs::exists(candidate) ? candidate.string() : "";
}

/// Reserves an ephemeral loopback port: bind port 0, record, close.
/// The daemon re-binds it moments later (SO_REUSEADDR on both sides).
NetAddress ReservePort() {
  auto sock = rpc::Listen(Loopback(0));
  EXPECT_TRUE(sock.ok());
  if (!sock.ok()) return NetAddress{};
  const NetAddress bound = sock->bound;
  ::close(sock->fd);
  return bound;
}

/// One spawned daemon process; the destructor guarantees it dies.
class Daemon {
 public:
  Daemon(const std::string& binary, const NetAddress& addr,
         const std::string& wal_dir, const std::string& metrics_json) {
    addr_ = addr;
    wal_dir_ = wal_dir;
    metrics_json_ = metrics_json;
    std::vector<std::string> argv_store = {
        binary,
        "--listen=" + addr.ToString(),
        "--wal_dir=" + wal_dir,
        "--metrics_json=" + metrics_json,
    };
    std::vector<char*> argv;
    for (std::string& s : argv_store) argv.push_back(s.data());
    argv.push_back(nullptr);
    pid_ = ::fork();
    if (pid_ == 0) {
      ::execv(binary.c_str(), argv.data());
      _exit(127);  // exec failed
    }
  }

  ~Daemon() {
    if (pid_ <= 0) return;
    ::kill(pid_, SIGKILL);
    int status = 0;
    ::waitpid(pid_, &status, 0);
  }

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  const NetAddress& address() const { return addr_; }
  const std::string& wal_dir() const { return wal_dir_; }
  const std::string& metrics_json() const { return metrics_json_; }
  pid_t pid() const { return pid_; }

  void Stop() const { ::kill(pid_, SIGSTOP); }
  void Resume() const { ::kill(pid_, SIGCONT); }
  void Kill() {
    ::kill(pid_, SIGKILL);
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
  }

  /// SIGTERM and require a clean exit within ~5 s.
  ::testing::AssertionResult Terminate() {
    if (pid_ <= 0) return ::testing::AssertionFailure() << "not running";
    ::kill(pid_, SIGTERM);
    for (int i = 0; i < 100; ++i) {
      int status = 0;
      const pid_t got = ::waitpid(pid_, &status, WNOHANG);
      if (got == pid_) {
        pid_ = -1;
        if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
          return ::testing::AssertionSuccess();
        }
        return ::testing::AssertionFailure()
               << "daemon exited with status " << status;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    return ::testing::AssertionFailure() << "daemon ignored SIGTERM";
  }

 private:
  pid_t pid_ = -1;
  NetAddress addr_;
  std::string wal_dir_;
  std::string metrics_json_;
};

/// A temp directory tree for one test's daemons.
std::string MakeScratchDir() {
  std::string tmpl = ::testing::TempDir() + "live_ring_XXXXXX";
  char* made = ::mkdtemp(tmpl.data());
  EXPECT_NE(made, nullptr);
  return made ? std::string(made) : std::string();
}

struct Ring {
  std::vector<std::unique_ptr<Daemon>> daemons;
  std::vector<NetAddress> members;
  std::string scratch;
};

Ring SpawnRing(const std::string& binary, size_t n) {
  Ring ring;
  ring.scratch = MakeScratchDir();
  for (size_t i = 0; i < n; ++i) {
    const NetAddress addr = ReservePort();
    const std::string dir = ring.scratch + "/n" + std::to_string(i);
    fs::create_directories(dir);
    ring.daemons.push_back(std::make_unique<Daemon>(
        binary, addr, dir, dir + "/metrics.json"));
    ring.members.push_back(addr);
  }
  return ring;
}

/// Waits until every member answers a ping (daemons bind fast, but
/// fork+exec is not instantaneous).
::testing::AssertionResult AwaitReady(rpc::RingClient& client,
                                      const std::vector<NetAddress>& members) {
  for (const NetAddress& m : members) {
    bool up = false;
    for (int attempt = 0; attempt < 100; ++attempt) {
      if (client.Ping(m).ok()) {
        up = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (!up) {
      return ::testing::AssertionFailure()
             << "no pong from " << m.ToString() << " after 5s";
    }
  }
  return ::testing::AssertionSuccess();
}

constexpr uint32_t kDomainLo = 0;
constexpr uint32_t kDomainHi = 1000;
constexpr uint64_t kWorkloadSeed = 42;
constexpr uint64_t kSimSeed = 7;

rpc::RingClientOptions ClientOptions() {
  rpc::RingClientOptions options;
  // The simulator derives its LSH seed as config.seed ^ 0x5bd1e995
  // (RangeCacheSystem::Make); the live client must sample the same
  // hash functions or realized bucket collisions — and therefore
  // recall — would only match in expectation, not per query.
  options.lsh =
      LshParams::Paper(HashFamilyType::kApproxMinwise, kSimSeed ^ 0x5bd1e995u);
  // Generous: sanitized builds on loaded single-core CI boxes can take
  // hundreds of ms per probe; a healthy-ring test must not flake on a
  // deadline that only exists to bound the fault tests.
  options.deadline_ms = 10000.0;
  options.transport.default_deadline_ms = 10000.0;
  return options;
}

/// Publishes `publishes` uniform ranges (holders round-robin), then
/// queries `queries` fresh draws; returns average recall with a miss
/// counting as zero. The exact accounting the sim comparator uses.
double RunLiveWorkload(rpc::RingClient& client,
                       const std::vector<NetAddress>& members,
                       size_t publishes, size_t queries) {
  UniformRangeGenerator gen(kDomainLo, kDomainHi, kWorkloadSeed);
  for (size_t i = 0; i < publishes; ++i) {
    const PartitionKey key{"T", "a", gen.Next()};
    EXPECT_TRUE(client.Publish(key, members[i % members.size()]).ok())
        << "publish " << i;
  }
  UniformRangeGenerator qgen(kDomainLo, kDomainHi,
                             kWorkloadSeed ^ 0x9E3779B9);
  double recall_sum = 0.0;
  for (size_t i = 0; i < queries; ++i) {
    const Range q = qgen.Next();
    auto outcome = client.Lookup(PartitionKey{"T", "a", q});
    EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
    if (!outcome.ok()) continue;
    EXPECT_EQ(outcome->probes_failed, 0) << "healthy ring dropped a probe";
    if (!outcome->ranked.empty()) {
      recall_sum += q.RecallFrom(outcome->ranked.front().descriptor.key.range);
    }
  }
  return recall_sum / static_cast<double>(queries);
}

/// The same workload through the in-process simulator. cache_on_miss is
/// off because the live client does not publish on a miss; everything
/// else is the paper's defaults, the same LSH scheme, the same draws.
double RunSimWorkload(size_t publishes, size_t queries) {
  SystemConfig cfg;
  cfg.num_peers = 3;
  cfg.lsh = LshParams::Paper(HashFamilyType::kApproxMinwise, kSimSeed);
  cfg.cache_on_miss = false;
  cfg.seed = kSimSeed;
  auto sys = RangeCacheSystem::Make(
      cfg, MakeNumbersCatalog(10, kDomainLo, kDomainHi, 1));
  EXPECT_TRUE(sys.ok());
  if (!sys.ok()) return -1.0;

  UniformRangeGenerator gen(kDomainLo, kDomainHi, kWorkloadSeed);
  const NetAddress holder = sys->source_address();
  for (size_t i = 0; i < publishes; ++i) {
    EXPECT_TRUE(
        sys->PublishPartition(PartitionKey{"Numbers", "key", gen.Next()},
                              holder)
            .ok());
  }
  UniformRangeGenerator qgen(kDomainLo, kDomainHi,
                             kWorkloadSeed ^ 0x9E3779B9);
  double recall_sum = 0.0;
  for (size_t i = 0; i < queries; ++i) {
    auto outcome =
        sys->LookupRange(PartitionKey{"Numbers", "key", qgen.Next()});
    EXPECT_TRUE(outcome.ok());
    if (outcome.ok() && outcome->match) recall_sum += outcome->match->recall;
  }
  return recall_sum / static_cast<double>(queries);
}

TEST(LiveRingTest, PaperWorkloadRecallMatchesSimulator) {
  const std::string binary = NodeBinary();
  ASSERT_FALSE(binary.empty()) << "p2prange_node not built next to tests";
  Ring ring = SpawnRing(binary, 3);
  ASSERT_EQ(ring.members.size(), 3u);

  auto client = rpc::RingClient::Make(ring.members, ClientOptions());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE(AwaitReady(**client, ring.members));

  const size_t kPublishes = 60, kQueries = 40;
  const double live = RunLiveWorkload(**client, ring.members, kPublishes,
                                      kQueries);
  const double sim = RunSimWorkload(kPublishes, kQueries);
  ASSERT_GE(sim, 0.0);
  EXPECT_GT(live, 0.0) << "the workload found nothing at all";
  EXPECT_NEAR(live, sim, 0.02)
      << "deployment changed answer quality: live=" << live
      << " sim=" << sim;

  // A healthy run costs no timeouts and no retransmissions.
  const rpc::RpcStats& stats = (*client)->transport().rpc_stats();
  EXPECT_EQ(stats.timeouts, 0u);
  EXPECT_EQ(stats.retransmits, 0u);

  // The exported metrics are live: every node served requests and says
  // so in its single-line JSON file.
  for (const auto& daemon : ring.daemons) {
    std::ifstream in(daemon->metrics_json());
    std::string json;
    std::getline(in, json);
    EXPECT_NE(json.find("\"requests_served\":"), std::string::npos)
        << daemon->metrics_json();
    EXPECT_NE(json.find("\"descriptors_stored\":"), std::string::npos);
  }

  for (auto& daemon : ring.daemons) EXPECT_TRUE(daemon->Terminate());
}

TEST(LiveRingTest, StoppedPeerCostsTimeoutsKilledPeerFailsOver) {
  const std::string binary = NodeBinary();
  ASSERT_FALSE(binary.empty()) << "p2prange_node not built next to tests";
  Ring ring = SpawnRing(binary, 3);

  rpc::RingClientOptions options = ClientOptions();
  options.descriptor_replication = 2;  // failover has somewhere to go
  options.deadline_ms = 100.0;
  options.transport.default_deadline_ms = 100.0;
  options.fault.max_retries = 1;
  auto client = rpc::RingClient::Make(ring.members, options);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(AwaitReady(**client, ring.members));

  // Seed the ring while everyone is healthy.
  UniformRangeGenerator gen(kDomainLo, kDomainHi, 99);
  std::vector<Range> published;
  for (size_t i = 0; i < 20; ++i) {
    const Range r = gen.Next();
    published.push_back(r);
    ASSERT_TRUE((*client)
                    ->Publish(PartitionKey{"T", "a", r},
                              ring.members[i % ring.members.size()])
                    .ok());
  }

  // Ring arcs derive from Sha1(addr) of randomly-assigned ephemeral
  // ports, so a fixed daemon index occasionally owns none of the
  // buckets the queries below will probe. Stop the peer that owns the
  // most of them, so the fault is guaranteed to land in the probe path.
  const size_t kStopQueries = 10;
  std::vector<int> owned(ring.members.size(), 0);
  for (size_t i = 0; i < kStopQueries; ++i) {
    for (const chord::ChordId id : (*client)->lsh().Identifiers(published[i])) {
      const NetAddress& owner = (*client)->view().Owner(id);
      for (size_t m = 0; m < ring.members.size(); ++m) {
        if (ring.members[m] == owner) ++owned[m];
      }
    }
  }
  const size_t victim = static_cast<size_t>(
      std::max_element(owned.begin(), owned.end()) - owned.begin());
  ASSERT_GT(owned[victim], 0);

  // A stopped (SIGSTOP) peer still owns a socket the kernel accepts
  // on, so probes to it die by deadline: timeouts and FaultPolicy
  // retransmissions must show up in the client's counters.
  ring.daemons[victim]->Stop();
  const rpc::RpcStats& stats = (*client)->transport().rpc_stats();
  int answered = 0;
  for (size_t i = 0; i < kStopQueries && stats.timeouts == 0; ++i) {
    auto outcome = (*client)->Lookup(PartitionKey{"T", "a", published[i]});
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    ++answered;
  }
  EXPECT_GT(answered, 0);
  EXPECT_GT(stats.timeouts, 0u)
      << "no probe ever hit the stopped peer across " << answered
      << " lookups";
  EXPECT_GT(stats.retransmits, 0u) << "FaultPolicy never retried a timeout";

  // Killed outright, the peer refuses connections: probes fail over to
  // the replica without eating a deadline, and answers keep coming.
  ring.daemons[victim]->Resume();
  ring.daemons[victim]->Kill();
  bool saw_failover = false;
  for (size_t i = 0; i < published.size(); ++i) {
    auto outcome = (*client)->Lookup(PartitionKey{"T", "a", published[i]});
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    if (outcome->failovers > 0) saw_failover = true;
    // The queried range was published: with replication 2 and one dead
    // peer out of three, its descriptor is still reachable.
    EXPECT_FALSE(outcome->ranked.empty()) << published[i].ToString();
  }
  EXPECT_TRUE(saw_failover)
      << "no lookup was answered by a replica of the dead peer";

  for (size_t m = 0; m < ring.daemons.size(); ++m) {
    if (m != victim) {
      EXPECT_TRUE(ring.daemons[m]->Terminate());
    }
  }
}

TEST(LiveRingTest, RestartedDaemonStillServesItsDescriptors) {
  const std::string binary = NodeBinary();
  ASSERT_FALSE(binary.empty()) << "p2prange_node not built next to tests";
  Ring ring = SpawnRing(binary, 1);

  auto client = rpc::RingClient::Make(ring.members, ClientOptions());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(AwaitReady(**client, ring.members));

  const PartitionKey key{"T", "a", Range(250, 750)};
  ASSERT_TRUE((*client)->Publish(key, ring.members[0]).ok());
  auto before = (*client)->Lookup(key);
  ASSERT_TRUE(before.ok());
  ASSERT_FALSE(before->ranked.empty());

  // Clean shutdown, then a new process on the same port and WAL dir.
  ASSERT_TRUE(ring.daemons[0]->Terminate());
  (*client)->transport().Disconnect(ring.members[0]);
  ring.daemons[0] = std::make_unique<Daemon>(
      binary, ring.members[0], ring.daemons[0]->wal_dir(),
      ring.daemons[0]->metrics_json());
  ASSERT_TRUE(AwaitReady(**client, ring.members));

  auto after = (*client)->Lookup(key);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ASSERT_FALSE(after->ranked.empty())
      << "descriptors did not survive the restart";
  EXPECT_EQ(after->ranked.front().descriptor.key, key);

  EXPECT_TRUE(ring.daemons[0]->Terminate());
}

}  // namespace
}  // namespace p2prange
