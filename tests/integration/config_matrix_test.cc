// Property sweep over the system's configuration space: every
// combination must satisfy the same cross-cutting invariants
// regardless of how it trades recall for cost.
#include <gtest/gtest.h>

#include <tuple>

#include "core/system.h"
#include "rel/generator.h"
#include "workload/range_workload.h"

namespace p2prange {
namespace {

using MatrixParam = std::tuple<HashFamilyType, MatchCriterion, double /*padding*/,
                               bool /*peer_index*/, int /*replication*/>;

class ConfigMatrixTest : public ::testing::TestWithParam<MatrixParam> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConfigMatrixTest,
    ::testing::Combine(
        ::testing::Values(HashFamilyType::kMinwise, HashFamilyType::kApproxMinwise,
                          HashFamilyType::kLinear),
        ::testing::Values(MatchCriterion::kJaccard, MatchCriterion::kContainment),
        ::testing::Values(0.0, 0.2),
        ::testing::Values(false, true),
        ::testing::Values(1, 3)),
    [](const auto& name_info) {
      // Note: no structured bindings here — commas inside the binding
      // list would split the INSTANTIATE macro's arguments.
      const HashFamilyType family = std::get<0>(name_info.param);
      const MatchCriterion criterion = std::get<1>(name_info.param);
      const double padding = std::get<2>(name_info.param);
      const bool index = std::get<3>(name_info.param);
      const int repl = std::get<4>(name_info.param);
      std::string name;
      switch (family) {
        case HashFamilyType::kMinwise:
          name += "Minwise";
          break;
        case HashFamilyType::kApproxMinwise:
          name += "Approx";
          break;
        case HashFamilyType::kLinear:
          name += "Linear";
          break;
      }
      name += criterion == MatchCriterion::kJaccard ? "Jaccard" : "Containment";
      name += padding > 0 ? "Padded" : "Unpadded";
      name += index ? "Index" : "Bucket";
      name += "R" + std::to_string(repl);
      return name;
    });

TEST_P(ConfigMatrixTest, ProtocolInvariantsHold) {
  const auto& [family, criterion, padding, peer_index, replication] = GetParam();
  SystemConfig cfg;
  cfg.num_peers = 32;
  cfg.lsh = LshParams::Paper(family, 5);
  cfg.lsh.k = 10;  // cheaper sweep; the k/l ablation covers parameters
  cfg.criterion = criterion;
  cfg.padding = padding;
  cfg.use_peer_index = peer_index;
  cfg.descriptor_replication = replication;
  cfg.seed = 5;
  auto sys = RangeCacheSystem::Make(cfg, MakeNumbersCatalog(10, 0, 1000, 1));
  ASSERT_TRUE(sys.ok()) << sys.status();

  UniformRangeGenerator gen(0, 1000, 6);
  uint64_t lookups = 0;
  for (int i = 0; i < 150; ++i) {
    const Range q = gen.Next();
    auto outcome = sys->LookupRange(PartitionKey{"Numbers", "key", q});
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    ++lookups;

    // Identifier and padding invariants.
    ASSERT_EQ(outcome->identifiers.size(), 5u);
    EXPECT_TRUE(outcome->effective_query.Contains(q));
    if (padding == 0.0) {
      EXPECT_EQ(outcome->effective_query, q);
    }

    // Match invariants.
    if (outcome->match) {
      const RangeMatch& m = outcome->match.value();
      EXPECT_GE(m.recall, 0.0);
      EXPECT_LE(m.recall, 1.0);
      EXPECT_GE(m.jaccard, 0.0);
      EXPECT_LE(m.jaccard, 1.0);
      EXPECT_EQ(m.matched.relation, "Numbers");
      EXPECT_EQ(m.matched.attribute, "key");
      if (m.exact) {
        EXPECT_EQ(m.matched.range, outcome->effective_query);
        EXPECT_DOUBLE_EQ(m.recall, 1.0);
      }
      // The matched holder must be a known peer.
      EXPECT_NE(sys->peer(m.holder), nullptr);
    }
    EXPECT_GE(outcome->peers_contacted, 1);
    EXPECT_LE(outcome->peers_contacted, 5);
  }

  // Metrics consistency.
  const SystemMetrics& m = sys->metrics();
  EXPECT_EQ(m.range_lookups, lookups);
  EXPECT_EQ(m.exact_hits + m.approx_hits + m.misses, lookups);
  EXPECT_EQ(m.partitions_published, m.misses + m.approx_hits)
      << "every non-exact outcome publishes";
  // Replication stores up to R copies per identifier.
  EXPECT_LE(m.descriptors_stored,
            m.partitions_published * 5 * static_cast<uint64_t>(replication));
  // Stored descriptors live somewhere.
  size_t total = 0;
  for (size_t c : sys->DescriptorCountsPerPeer()) total += c;
  EXPECT_EQ(total, m.descriptors_stored);
}

TEST_P(ConfigMatrixTest, DeterministicAcrossRuns) {
  const auto& [family, criterion, padding, peer_index, replication] = GetParam();
  auto run = [&] {
    SystemConfig cfg;
    cfg.num_peers = 16;
    cfg.lsh = LshParams::Paper(family, 9);
    cfg.lsh.k = 5;
    cfg.criterion = criterion;
    cfg.padding = padding;
    cfg.use_peer_index = peer_index;
    cfg.descriptor_replication = replication;
    cfg.seed = 9;
    auto sys = RangeCacheSystem::Make(cfg, MakeNumbersCatalog(10, 0, 1000, 1));
    CHECK(sys.ok());
    UniformRangeGenerator gen(0, 1000, 10);
    std::string transcript;
    for (int i = 0; i < 40; ++i) {
      auto outcome = sys->LookupRange(PartitionKey{"Numbers", "key", gen.Next()});
      CHECK(outcome.ok());
      transcript += outcome->match ? outcome->match->matched.ToString() : "none";
      transcript += ";";
    }
    return transcript;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace p2prange
