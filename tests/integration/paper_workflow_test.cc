// Integration tests that replay the paper's §5 evaluation protocol at
// reduced scale and assert the qualitative findings hold.
#include <gtest/gtest.h>

#include "core/system.h"
#include "rel/generator.h"
#include "stats/summary.h"
#include "workload/range_workload.h"

namespace p2prange {
namespace {

struct RunStats {
  double frac_good_match = 0;     // matched with jaccard in [0.9, 1]
  double frac_mid_match = 0;      // matched with jaccard in [0.1, 0.8)
  double frac_no_match = 0;       // no same-column candidate at all
  double frac_full_recall = 0;    // recall == 1
  double mean_recall = 0;
};

/// Replays the §5.1/§5.2 protocol: `n` uniform ranges over [0,1000],
/// cache-on-miss, first 20% treated as warmup.
RunStats RunWorkload(HashFamilyType family, MatchCriterion criterion,
                     double padding, size_t n, uint64_t seed,
                     uint64_t linear_prime = LinearHashFunction::kPrime) {
  SystemConfig cfg;
  cfg.num_peers = 64;
  cfg.lsh = LshParams::Paper(family, seed);
  cfg.lsh.linear_prime = linear_prime;
  cfg.criterion = criterion;
  cfg.padding = padding;
  cfg.seed = seed;
  auto sys = RangeCacheSystem::Make(cfg, MakeNumbersCatalog(10, 0, 1000, 1));
  CHECK(sys.ok()) << sys.status();

  UniformRangeGenerator gen(0, 1000, seed ^ 0x9e37);
  const size_t warmup = n / 5;
  RunStats stats;
  Summary recalls;
  size_t good = 0, mid = 0, none = 0, full = 0, measured = 0;
  for (size_t i = 0; i < n; ++i) {
    const Range q = gen.Next();
    auto outcome = sys->LookupRange(PartitionKey{"Numbers", "key", q});
    CHECK(outcome.ok()) << outcome.status();
    if (i < warmup) continue;
    ++measured;
    const double jaccard = outcome->match ? outcome->match->jaccard : 0.0;
    const double recall = outcome->match ? outcome->match->recall : 0.0;
    if (!outcome->match) ++none;
    if (jaccard >= 0.9) ++good;
    if (outcome->match && jaccard >= 0.1 && jaccard < 0.8) ++mid;
    if (recall >= 1.0) ++full;
    recalls.Add(recall);
  }
  stats.frac_good_match = static_cast<double>(good) / static_cast<double>(measured);
  stats.frac_mid_match = static_cast<double>(mid) / static_cast<double>(measured);
  stats.frac_no_match = static_cast<double>(none) / static_cast<double>(measured);
  stats.frac_full_recall = static_cast<double>(full) / static_cast<double>(measured);
  stats.mean_recall = recalls.Mean();
  return stats;
}

TEST(PaperWorkflowTest, MinwiseConcentratesMatchesAboveNinety) {
  // Figure 6(a): matches found by min-wise hashing are high-similarity
  // or absent — a step-like behavior.
  const RunStats s =
      RunWorkload(HashFamilyType::kMinwise, MatchCriterion::kJaccard, 0.0,
                  /*n=*/1500, /*seed=*/101);
  EXPECT_GT(s.frac_good_match, 0.10);
  EXPECT_GT(s.frac_no_match, 0.05) << "min-wise leaves low-sim queries unmatched";
}

TEST(PaperWorkflowTest, LinearWithFullPrimeIsAllOrNothing) {
  // Linear permutations over the full 32-bit prime are the sharpest
  // family: matches are near-identical or absent — mid-quality
  // matches essentially never occur.
  const RunStats s =
      RunWorkload(HashFamilyType::kLinear, MatchCriterion::kJaccard, 0.0,
                  /*n=*/1500, /*seed=*/103);
  EXPECT_LT(s.frac_mid_match, 0.02);
  EXPECT_GT(s.frac_no_match, 0.15);
}

TEST(PaperWorkflowTest, LinearWithDomainPrimeGivesPoorQualityMatches) {
  // Figure 7, paper mode: a Broder-style permutation of the attribute
  // universe collapses the XOR signature to ~10 bits, buckets collide
  // across dissimilar ranges, and the matcher frequently returns
  // low-quality candidates — the paper's "quality of matches obtained
  // by them is not good".
  const RunStats s = RunWorkload(HashFamilyType::kLinear,
                                 MatchCriterion::kJaccard, 0.0,
                                 /*n=*/1500, /*seed=*/103,
                                 NextPrimeAtLeast(1001));
  EXPECT_LT(s.frac_no_match, 0.1) << "crowded buckets always offer a candidate";
  EXPECT_GT(s.frac_mid_match, 0.05) << "low/mid-quality matches appear";
}

TEST(PaperWorkflowTest, ContainmentMatchingImprovesRecall) {
  // Figure 9: containment best-match raises recall over Jaccard
  // best-match under the same hashing.
  const RunStats jaccard =
      RunWorkload(HashFamilyType::kApproxMinwise, MatchCriterion::kJaccard, 0.0,
                  2000, 107);
  const RunStats containment =
      RunWorkload(HashFamilyType::kApproxMinwise, MatchCriterion::kContainment,
                  0.0, 2000, 107);
  EXPECT_GE(containment.frac_full_recall, jaccard.frac_full_recall);
  EXPECT_GE(containment.mean_recall, jaccard.mean_recall - 0.02);
}

TEST(PaperWorkflowTest, PaddingImprovesCompleteAnswers) {
  // Figure 10: padded queries complete more often.
  const RunStats plain =
      RunWorkload(HashFamilyType::kApproxMinwise, MatchCriterion::kContainment,
                  0.0, 2000, 109);
  const RunStats padded =
      RunWorkload(HashFamilyType::kApproxMinwise, MatchCriterion::kContainment,
                  0.2, 2000, 109);
  EXPECT_GT(padded.frac_full_recall, plain.frac_full_recall);
}

TEST(PaperWorkflowTest, LoadSpreadsAcrossPeers) {
  // Figure 11's premise: descriptors spread over many peers rather
  // than piling up at a few.
  SystemConfig cfg;
  cfg.num_peers = 100;
  cfg.lsh = LshParams::Paper(HashFamilyType::kApproxMinwise, 211);
  cfg.seed = 211;
  auto sys = RangeCacheSystem::Make(cfg, MakeNumbersCatalog(10, 0, 1000, 1));
  ASSERT_TRUE(sys.ok());
  UniformRangeGenerator gen(0, 1000, 212);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(
        sys->LookupRange(PartitionKey{"Numbers", "key", gen.Next()}).ok());
  }
  const auto counts = sys->DescriptorCountsPerPeer();
  size_t nonempty = 0;
  for (size_t c : counts) nonempty += (c > 0);
  EXPECT_GT(nonempty, 50u) << "most peers should hold some descriptors";
}

TEST(PaperWorkflowTest, LookupPathLengthIsLogarithmic) {
  // Figure 12's premise at small scale.
  SystemConfig cfg;
  cfg.num_peers = 256;
  cfg.lsh = LshParams::Paper(HashFamilyType::kApproxMinwise, 301);
  cfg.seed = 301;
  auto sys = RangeCacheSystem::Make(cfg, MakeNumbersCatalog(10, 0, 1000, 1));
  ASSERT_TRUE(sys.ok());
  UniformRangeGenerator gen(0, 1000, 302);
  Summary hops;
  for (int i = 0; i < 200; ++i) {
    auto outcome = sys->LookupRange(PartitionKey{"Numbers", "key", gen.Next()});
    ASSERT_TRUE(outcome.ok());
    // 5 identifiers per lookup -> per-identifier hop count.
    hops.Add(static_cast<double>(outcome->hops) / 5.0);
  }
  // 0.5*log2(256) = 4; generous band.
  EXPECT_GT(hops.Mean(), 2.0);
  EXPECT_LT(hops.Mean(), 6.5);
}

TEST(PaperWorkflowTest, ChurnDoesNotBreakTheProtocol) {
  // Nodes joining and leaving between queries; lookups keep working
  // and previously cached descriptors on surviving peers remain
  // reachable-or-replaced (the protocol re-publishes on miss).
  SystemConfig cfg;
  cfg.num_peers = 48;
  cfg.lsh = LshParams::Paper(HashFamilyType::kApproxMinwise, 401);
  cfg.seed = 401;
  auto sys = RangeCacheSystem::Make(cfg, MakeNumbersCatalog(10, 0, 1000, 1));
  ASSERT_TRUE(sys.ok());
  UniformRangeGenerator gen(0, 1000, 402);
  Rng churn_rng(403);
  for (int round = 0; round < 10; ++round) {
    for (int q = 0; q < 20; ++q) {
      auto outcome =
          sys->LookupRange(PartitionKey{"Numbers", "key", gen.Next()});
      ASSERT_TRUE(outcome.ok()) << outcome.status();
    }
    // Churn: one leave (graceful or abrupt) and one join per round.
    const auto nodes = sys->ring().AliveNodesSorted();
    const auto victim = nodes[churn_rng.NextBounded(nodes.size())].addr;
    if (victim != sys->source_address()) {
      ASSERT_TRUE(sys->RemovePeer(victim, /*graceful=*/round % 2 == 0).ok());
    }
    auto joined = sys->AddPeer();
    ASSERT_TRUE(joined.ok()) << joined.status();
    sys->ring().StabilizeAll(2);
    sys->ring().FixAllFingers();
  }
  // The overlay is still fully routable after ten churn rounds.
  for (int q = 0; q < 30; ++q) {
    auto outcome = sys->LookupRange(PartitionKey{"Numbers", "key", gen.Next()});
    ASSERT_TRUE(outcome.ok()) << outcome.status();
  }
  EXPECT_GE(sys->ring().num_alive(), 47u);
}

}  // namespace
}  // namespace p2prange
