// Durability acceptance tests: crash a large fraction of the overlay
// mid-workload — with storage faults (torn WAL tails, bit flips)
// injected at crash time — recover everyone through checkpoint + WAL
// replay + replica repair, and require cache effectiveness to come
// back. The acceptance bar from the durability work: after crashing
// 20% of the peers, recovered recall stays within 2 points of the
// pre-crash measurement.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "chord/ring.h"
#include "core/system.h"
#include "rel/generator.h"
#include "sim/fault_injector.h"
#include "workload/range_workload.h"

namespace p2prange {
namespace {

PartitionKey NumbersKey(uint32_t lo, uint32_t hi) {
  return PartitionKey{"Numbers", "key", Range(lo, hi)};
}

SystemConfig RecoveryConfig(uint64_t seed) {
  SystemConfig cfg;
  cfg.num_peers = 50;
  cfg.descriptor_replication = 2;
  cfg.lsh = LshParams::Paper(HashFamilyType::kApproxMinwise, seed);
  cfg.seed = seed;
  return cfg;
}

RangeCacheSystem MakeNumbersSystem(const SystemConfig& cfg) {
  auto sys = RangeCacheSystem::Make(cfg, MakeNumbersCatalog(2000, 0, 1000, 5));
  EXPECT_TRUE(sys.ok()) << sys.status();
  return std::move(sys).ValueUnsafe();
}

/// Mean §5.2 recall over a fixed probe set (0 when nothing matched).
double MeanRecall(RangeCacheSystem& sys, const std::vector<PartitionKey>& probes) {
  double sum = 0.0;
  for (const PartitionKey& key : probes) {
    auto outcome = sys.LookupRange(key);
    EXPECT_TRUE(outcome.ok()) << outcome.status();
    if (outcome.ok() && outcome->match.has_value()) sum += outcome->match->recall;
  }
  return sum / static_cast<double>(probes.size());
}

/// Warms the caches with `n` random-range lookups.
void Warm(RangeCacheSystem& sys, uint64_t seed, int n) {
  UniformRangeGenerator gen(0, 1000, seed);
  for (int i = 0; i < n; ++i) {
    const Range r = gen.Next();
    ASSERT_TRUE(sys.LookupRange(NumbersKey(r.lo(), r.hi())).ok());
  }
}

/// Samples up to `want` distinct live peers (excluding the source)
/// that hold descriptors.
std::vector<NetAddress> LoadedPeers(RangeCacheSystem& sys, size_t want) {
  std::vector<NetAddress> out;
  std::set<NetAddress> seen;
  for (int i = 0; i < 400 && out.size() < want; ++i) {
    auto addr = sys.ring().RandomAliveAddress();
    if (!addr.ok() || *addr == sys.source_address()) continue;
    if (!seen.insert(*addr).second) continue;
    const Peer* p = sys.peer(*addr);
    if (p != nullptr && p->store().num_descriptors() > 0) out.push_back(*addr);
  }
  return out;
}

// The acceptance bar: crash 20% of the peers mid-workload with storage
// faults armed, recover all of them, and recall on a fixed probe set
// must land within 2 points of the pre-crash measurement.
TEST(CrashRecoveryIntegrationTest, TwentyPercentCrashRecoversRecall) {
  SystemConfig cfg = RecoveryConfig(131);
  auto sys = MakeNumbersSystem(cfg);
  Warm(sys, 131, 80);

  std::vector<PartitionKey> probes;
  UniformRangeGenerator probe_gen(0, 1000, 977);
  for (int i = 0; i < 20; ++i) {
    const Range r = probe_gen.Next();
    probes.push_back(NumbersKey(r.lo(), r.hi()));
  }
  const double pre = MeanRecall(sys, probes);
  ASSERT_GT(pre, 0.0) << "warm-up should produce cached matches";

  FaultInjectorConfig fcfg;
  fcfg.torn_write_prob = 0.5;
  fcfg.bit_flip_prob = 0.3;
  fcfg.min_alive = 8;
  fcfg.seed = 131;
  FaultInjector injector(&sys, fcfg);
  const size_t to_crash = cfg.num_peers / 5;  // 20%
  for (size_t i = 0; i < to_crash; ++i) {
    ASSERT_TRUE(injector.CrashRandomPeer().ok());
  }
  ASSERT_EQ(injector.num_crashed(), to_crash);
  while (injector.RecoverOneCrashedPeer().ok()) {
  }
  ASSERT_EQ(injector.num_crashed(), 0u);

  const SystemMetrics& m = sys.metrics();
  EXPECT_EQ(m.peer_crashes, to_crash);
  EXPECT_EQ(m.peer_recoveries, to_crash);
  EXPECT_GT(m.wal_records_replayed, 0u) << "recovery must actually replay";
  EXPECT_GT(m.recovery_descriptors_restored, 0u);

  const double post = MeanRecall(sys, probes);
  EXPECT_GE(post, pre - 0.02)
      << "recall must recover to within 2 points: pre=" << pre
      << " post=" << post << "\n"
      << m.ToString();
}

// With durability disabled a crash is honest total loss: recovery
// replays nothing and (with replication 1) nothing is repaired either.
TEST(CrashRecoveryIntegrationTest, DisabledDurabilityLosesStateHonestly) {
  SystemConfig cfg = RecoveryConfig(57);
  cfg.descriptor_replication = 1;
  cfg.durability.enabled = false;
  auto sys = MakeNumbersSystem(cfg);
  Warm(sys, 57, 30);

  const std::vector<NetAddress> loaded = LoadedPeers(sys, 1);
  ASSERT_FALSE(loaded.empty()) << "no peer accumulated descriptors";
  const NetAddress victim = loaded[0];
  const size_t before = sys.peer(victim)->store().num_descriptors();
  ASSERT_GT(before, 0u);

  ASSERT_TRUE(sys.CrashPeer(victim).ok());
  ASSERT_TRUE(sys.RecoverPeer(victim).ok());
  EXPECT_EQ(sys.peer(victim)->store().num_descriptors(), 0u)
      << "disabled durability must not resurrect descriptors";
  EXPECT_EQ(sys.metrics().recovery_descriptors_restored, 0u);
  EXPECT_EQ(sys.metrics().wal_records_replayed, 0u);

  // The overlay still answers — the source covers what the caches lost.
  auto outcome = sys.LookupRangeFrom(victim, NumbersKey(100, 200));
  EXPECT_TRUE(outcome.ok()) << outcome.status();
}

// Torn WAL tails surface in the recovery metrics, and what replay
// cannot restore, post-recovery repair re-pulls from live replicas.
TEST(CrashRecoveryIntegrationTest, TornWalRepairsFromLiveReplicas) {
  SystemConfig cfg = RecoveryConfig(245);
  cfg.num_peers = 48;
  auto sys = MakeNumbersSystem(cfg);
  Warm(sys, 245, 60);

  size_t torn = 0;
  for (const NetAddress& victim : LoadedPeers(sys, 4)) {
    Peer* p = sys.peer(victim);
    ASSERT_NE(p, nullptr);
    std::string& wal = p->durable().wal().mutable_image();
    if (wal.size() <= store::WriteAheadLog::kFrameHeaderBytes) continue;
    ASSERT_TRUE(sys.CrashPeer(victim).ok());
    // Tear the log mid-frame: everything but a stub of the first
    // record's header is lost in the "crash".
    wal.resize(store::WriteAheadLog::kFrameHeaderBytes / 2);
    ++torn;
    ASSERT_TRUE(sys.RecoverPeer(victim).ok());
  }
  ASSERT_GT(torn, 0u) << "no victim had a non-empty WAL";

  const SystemMetrics& m = sys.metrics();
  EXPECT_EQ(m.recoveries_torn_tail, torn)
      << "every torn log must be detected: " << m.ToString();
  EXPECT_GT(m.recovery_descriptors_repaired, 0u)
      << "replica repair must re-pull what the torn logs lost: "
      << m.ToString();

  // The repaired overlay still serves lookups end to end.
  auto outcome = sys.LookupRange(NumbersKey(400, 500));
  EXPECT_TRUE(outcome.ok()) << outcome.status();
}

}  // namespace
}  // namespace p2prange
