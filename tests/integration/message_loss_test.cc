// Fault injection: messages to live peers dropped in transit
// (LatencyModel::loss_rate). Routing retransmits; the protocol keeps
// its guarantees at the cost of extra messages and latency.
#include <gtest/gtest.h>

#include "chord/ring.h"
#include "core/system.h"
#include "rel/generator.h"
#include "workload/range_workload.h"

namespace p2prange {
namespace {

TEST(MessageLossTest, NetworkCountsLostMessages) {
  LatencyModel model;
  model.loss_rate = 0.5;
  SimNetwork net(model, 3);
  const NetAddress a{1, 1}, b{2, 2};
  net.Register(a);
  net.Register(b);
  size_t lost = 0, delivered = 0;
  for (int i = 0; i < 400; ++i) {
    auto r = net.Deliver(a, b);
    if (r.ok()) {
      ++delivered;
    } else {
      EXPECT_TRUE(r.status().IsIOError());
      ++lost;
    }
  }
  EXPECT_EQ(net.stats().lost_messages, lost);
  EXPECT_NEAR(static_cast<double>(lost) / 400.0, 0.5, 0.1);
  EXPECT_EQ(net.stats().messages, 400u) << "lost messages still hit the wire";
}

TEST(MessageLossTest, ChordLookupsSurviveModerateLoss) {
  chord::ChordConfig cfg;
  cfg.latency.loss_rate = 0.1;
  cfg.max_message_retries = 5;
  auto ring = chord::ChordRing::Make(128, 7, cfg);
  ASSERT_TRUE(ring.ok());
  Rng rng(11);
  int succeeded = 0;
  for (int i = 0; i < 200; ++i) {
    const chord::ChordId target = rng.Next32();
    auto origin = ring->RandomAliveAddress();
    ASSERT_TRUE(origin.ok());
    auto expected = ring->FindSuccessorOracle(target);
    auto result = ring->Lookup(*origin, target);
    ASSERT_TRUE(expected.ok());
    if (result.ok()) {
      ++succeeded;
      EXPECT_EQ(result->owner, *expected);
    }
  }
  // With loss 0.1 and 5 retries, per-hop failure is 1e-6; essentially
  // every lookup completes.
  EXPECT_GE(succeeded, 199);
  EXPECT_GT(ring->network().stats().lost_messages, 0u);
}

TEST(MessageLossTest, RetriesInflateMessageCountNotHops) {
  chord::ChordConfig lossless;
  chord::ChordConfig lossy;
  lossy.latency.loss_rate = 0.2;
  lossy.max_message_retries = 8;
  auto ring_ok = chord::ChordRing::Make(64, 9, lossless);
  auto ring_lossy = chord::ChordRing::Make(64, 9, lossy);
  ASSERT_TRUE(ring_ok.ok());
  ASSERT_TRUE(ring_lossy.ok());
  Rng rng(13);
  uint64_t hops_ok = 0, hops_lossy = 0;
  for (int i = 0; i < 100; ++i) {
    const chord::ChordId target = rng.Next32();
    auto o1 = ring_ok->RandomAliveAddress();
    auto o2 = ring_lossy->RandomAliveAddress();
    ASSERT_TRUE(o1.ok());
    ASSERT_TRUE(o2.ok());
    auto r1 = ring_ok->Lookup(*o1, target);
    auto r2 = ring_lossy->Lookup(*o2, target);
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r2.ok()) << r2.status();
    hops_ok += static_cast<uint64_t>(r1->hops);
    hops_lossy += static_cast<uint64_t>(r2->hops);
  }
  // Hops measure distinct peers contacted; both rings are built with
  // the same seed, so the totals match while the lossy ring sends more
  // raw messages.
  EXPECT_EQ(hops_ok, hops_lossy);
  EXPECT_GT(ring_lossy->network().stats().messages,
            ring_ok->network().stats().messages);
}

TEST(MessageLossTest, EndToEndQueriesRemainExactUnderLoss) {
  Catalog cat = MakeMedicalCatalog();
  MedicalDataSpec spec;
  spec.num_patients = 150;
  ASSERT_TRUE(PopulateMedicalData(spec, &cat).ok());
  SystemConfig cfg;
  cfg.num_peers = 32;
  cfg.lsh = LshParams::Paper(HashFamilyType::kApproxMinwise, 15);
  cfg.criterion = MatchCriterion::kContainment;
  cfg.chord.latency.loss_rate = 0.05;
  cfg.chord.max_message_retries = 6;
  cfg.seed = 15;
  auto sys = RangeCacheSystem::Make(cfg, cat);
  ASSERT_TRUE(sys.ok());
  size_t expected = 0;
  for (const Row& row : (*cat.GetBaseData("Patient"))->rows()) {
    const int64_t age = row[2].AsInt();
    if (age >= 30 && age <= 60) ++expected;
  }
  for (int i = 0; i < 10; ++i) {
    auto outcome =
        sys->ExecuteQuery("SELECT * FROM Patient WHERE age >= 30 AND age <= 60");
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    EXPECT_EQ(outcome->result.num_rows(), expected);
  }
  EXPECT_GT(sys->ring().network().stats().lost_messages, 0u);
}

// System-level robustness: abrupt departures *between* queries while
// every message risks transit loss. No query may fail, and because
// partial answers are off, every answer stays exact — a dead cache
// holder just reroutes the leaf to the source.
TEST(MessageLossTest, QueriesStayExactUnderAbruptChurnAndLoss) {
  SystemConfig cfg;
  cfg.num_peers = 40;
  cfg.lsh = LshParams::Paper(HashFamilyType::kApproxMinwise, 23);
  cfg.descriptor_replication = 2;
  cfg.chord.latency.loss_rate = 0.1;
  cfg.chord.max_message_retries = 8;
  cfg.fault.max_retries = 8;
  cfg.seed = 23;
  auto sys = RangeCacheSystem::Make(cfg, MakeNumbersCatalog(1500, 0, 1000, 9));
  ASSERT_TRUE(sys.ok()) << sys.status();
  UniformRangeGenerator gen(0, 1000, 23);
  int removed = 0;
  for (int i = 0; i < 40; ++i) {
    if (i % 5 == 4 && removed < 8) {
      // One abrupt departure between queries: no leave protocol, no
      // handoff, descriptors pointing at it go stale.
      for (int tries = 0; tries < 20; ++tries) {
        auto victim = sys->ring().RandomAliveAddress();
        ASSERT_TRUE(victim.ok());
        if (*victim == sys->source_address()) continue;
        ASSERT_TRUE(sys->RemovePeer(*victim, /*graceful=*/false).ok());
        ++removed;
        break;
      }
      sys->ring().StabilizeAll(1);
    }
    const Range r = gen.Next();
    size_t expected = 0;
    for (const Row& row : (*sys->catalog().GetBaseData("Numbers"))->rows()) {
      const int64_t key = row[0].AsInt();
      if (key >= r.lo() && key <= r.hi()) ++expected;
    }
    auto outcome = sys->ExecuteQuery(
        "SELECT * FROM Numbers WHERE key >= " + std::to_string(r.lo()) +
        " AND key <= " + std::to_string(r.hi()));
    ASSERT_TRUE(outcome.ok()) << outcome.status() << " at query " << i;
    EXPECT_EQ(outcome->result.num_rows(), expected) << "query " << i;
  }
  EXPECT_EQ(removed, 8);
  EXPECT_GT(sys->ring().network().stats().lost_messages, 0u);
  EXPECT_GT(sys->metrics().retransmissions, 0u);
}

}  // namespace
}  // namespace p2prange
