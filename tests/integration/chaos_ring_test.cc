// Chaos acceptance (DESIGN.md §11): a ring of real p2prange_node
// processes whose every inter-node and client link runs through a
// p2prange_chaosproxy, so scripted network faults hit real sockets.
// The claims:
//
//  1. An asymmetric partition that outlasts the failure detector is
//     not permanent: after the heal, the reconnect sweep resurrects
//     the tombstoned members, the views re-converge, and recall
//     recovers to within two points of the pre-fault baseline.
//  2. Byte corruption on the inter-node links (the paper's hostile
//     WAN) costs CRC-rejected frames, not the ring: queries keep
//     being answered and the membership view holds steady.
//  3. The daemon's slow-loris guard works end to end: a socket that
//     trickles bytes is cut by the first-frame deadline while honest
//     clients keep being served.
//
// Topology: daemon i binds 127.0.1.<i+1> (distinct loopback hosts so
// the proxy can classify links by source address) and advertises its
// proxy-side address; the proxy is rescheduled mid-test by rewriting
// its plan file and sending SIGHUP (which restarts the plan clock).
// Every child is reaped by RAII.
#include <gtest/gtest.h>

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "rel/generator.h"
#include "rpc/ring_client.h"
#include "rpc/tcp.h"
#include "workload/range_workload.h"

namespace p2prange {
namespace {

namespace fs = std::filesystem;

/// 127.0.1.<index+1>: one loopback host per daemon, all local, all
/// distinguishable by getpeername on the proxy side.
NetAddress NodeHost(size_t index, uint16_t port) {
  NetAddress a;
  a.host = 0x7F000100u + static_cast<uint32_t>(index + 1);
  a.port = port;
  return a;
}

NetAddress ClientHost(uint16_t port) {
  NetAddress a;
  a.host = 0x7F000001;  // 127.0.0.1 — what the proxy binds
  a.port = port;
  return a;
}

std::string BinaryNextToTests(const char* name) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  const fs::path candidate =
      fs::path(buf).parent_path().parent_path() / "tools" / name;
  return fs::exists(candidate) ? candidate.string() : "";
}

/// Reserves an ephemeral port on `host`: bind port 0, record, close.
NetAddress ReservePortOn(const NetAddress& host) {
  auto sock = rpc::Listen(host);
  EXPECT_TRUE(sock.ok()) << sock.status().ToString();
  if (!sock.ok()) return NetAddress{};
  const NetAddress bound = sock->bound;
  ::close(sock->fd);
  return bound;
}

/// One forked child (daemon or proxy); the destructor guarantees it
/// dies.
class Child {
 public:
  Child(const std::string& binary, std::vector<std::string> args) {
    args.insert(args.begin(), binary);
    std::vector<char*> argv;
    for (std::string& s : args) argv.push_back(s.data());
    argv.push_back(nullptr);
    pid_ = ::fork();
    if (pid_ == 0) {
      ::execv(binary.c_str(), argv.data());
      _exit(127);  // exec failed
    }
  }

  ~Child() {
    if (pid_ <= 0) return;
    ::kill(pid_, SIGKILL);
    int status = 0;
    ::waitpid(pid_, &status, 0);
  }

  Child(const Child&) = delete;
  Child& operator=(const Child&) = delete;

  pid_t pid() const { return pid_; }

  void Signal(int signo) const { ::kill(pid_, signo); }

  /// SIGTERM and require a clean exit within ~10s.
  ::testing::AssertionResult Terminate() {
    if (pid_ <= 0) return ::testing::AssertionFailure() << "not running";
    ::kill(pid_, SIGTERM);
    for (int i = 0; i < 200; ++i) {
      int status = 0;
      const pid_t got = ::waitpid(pid_, &status, WNOHANG);
      if (got == pid_) {
        pid_ = -1;
        if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
          return ::testing::AssertionSuccess();
        }
        return ::testing::AssertionFailure()
               << "child exited with status " << status;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    return ::testing::AssertionFailure() << "child ignored SIGTERM";
  }

 private:
  pid_t pid_ = -1;
};

std::string MakeScratchDir() {
  std::string tmpl = ::testing::TempDir() + "chaos_ring_XXXXXX";
  char* made = ::mkdtemp(tmpl.data());
  EXPECT_NE(made, nullptr);
  return made ? std::string(made) : std::string();
}

std::string JoinComma(const std::vector<NetAddress>& addrs) {
  std::string out;
  for (const NetAddress& a : addrs) {
    if (!out.empty()) out += ",";
    out += a.ToString();
  }
  return out;
}

void WriteFileAtomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    out << content;
  }
  ASSERT_EQ(std::rename(tmp.c_str(), path.c_str()), 0);
}

/// Sums every `"key":<integer>` occurrence in a (possibly absent)
/// JSON metrics file. Good enough for the flat snapshots the daemon
/// and proxy write.
uint64_t SumJsonCounter(const std::string& path, const std::string& key) {
  std::ifstream in(path);
  if (!in) return 0;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  const std::string needle = "\"" + key + "\":";
  uint64_t sum = 0;
  for (size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    sum += std::strtoull(text.c_str() + pos + needle.size(), nullptr, 10);
  }
  return sum;
}

// --- Topology under the proxy -----------------------------------------

struct ChaosRing {
  std::string scratch;
  std::string plan_path;
  std::string proxy_metrics;
  std::vector<NetAddress> real;       ///< daemon listen addresses
  std::vector<NetAddress> advertised; ///< proxy-side (client-facing)
  std::vector<std::string> metrics;   ///< per-daemon metrics files
  std::unique_ptr<Child> proxy;
  std::vector<std::unique_ptr<Child>> daemons;

  ::testing::AssertionResult Replan(const std::string& rules) {
    WriteFileAtomic(plan_path, rules);
    if (::testing::Test::HasFatalFailure()) {
      return ::testing::AssertionFailure() << "plan rewrite failed";
    }
    proxy->Signal(SIGHUP);  // reload + restart the schedule clock
    return ::testing::AssertionSuccess();
  }
};

/// Spawns the proxy and `n` daemons joined into one ring, every
/// address the daemons advertise pointing through the proxy.
ChaosRing SpawnChaosRing(size_t n, const std::string& initial_plan) {
  ChaosRing ring;
  ring.scratch = MakeScratchDir();
  ring.plan_path = ring.scratch + "/plan.chaos";
  ring.proxy_metrics = ring.scratch + "/proxy_metrics.json";
  WriteFileAtomic(ring.plan_path, initial_plan);

  const std::string proxy_binary = BinaryNextToTests("p2prange_chaosproxy");
  const std::string node_binary = BinaryNextToTests("p2prange_node");
  EXPECT_FALSE(proxy_binary.empty()) << "p2prange_chaosproxy not built";
  EXPECT_FALSE(node_binary.empty()) << "p2prange_node not built";
  if (proxy_binary.empty() || node_binary.empty()) return ring;

  for (size_t i = 0; i < n; ++i) {
    ring.real.push_back(ReservePortOn(NodeHost(i, 0)));
    ring.advertised.push_back(ReservePortOn(ClientHost(0)));
  }
  ring.proxy = std::make_unique<Child>(
      proxy_binary,
      std::vector<std::string>{
          "--listen=" + JoinComma(ring.advertised),
          "--upstream=" + JoinComma(ring.real),
          "--plan=" + ring.plan_path,
          "--metrics_json=" + ring.proxy_metrics,
          "--seed=42",
      });

  for (size_t i = 0; i < n; ++i) {
    const std::string dir = ring.scratch + "/n" + std::to_string(i);
    fs::create_directories(dir);
    ring.metrics.push_back(dir + "/metrics.json");
    std::vector<std::string> args = {
        "--listen=" + ring.real[i].ToString(),
        "--advertise=" + ring.advertised[i].ToString(),
        "--wal_dir=" + dir,
        "--metrics_json=" + ring.metrics.back(),
        "--replication=2",
        // Fast failure detection and a fast reconnect sweep so the
        // partition round-trip fits an acceptance test's budget.
        "--probe_ms=100",
        "--gossip_ms=100",
        "--stabilize_ms=100",
        "--probe_timeout_ms=300",
        "--reconnect_ms=300",
        // Cap probe backoff well below strike decay (5 s) or a
        // partitioned node's strikes go stale between probes and it
        // never finishes marking the far side dead.
        "--backoff_max_ms=400",
        "--handoff_deadline_ms=3000",
    };
    if (i > 0) args.push_back("--join=" + ring.advertised[0].ToString());
    ring.daemons.push_back(std::make_unique<Child>(node_binary, args));
    // Joins are sequential: each daemon must be reachable before the
    // next one bootstraps through the advertised address of daemon 0.
  }
  return ring;
}

constexpr uint32_t kDomainLo = 0;
constexpr uint32_t kDomainHi = 1000;
constexpr uint64_t kSeed = 7;
constexpr size_t kPublishes = 30;
constexpr size_t kQueries = 20;

rpc::RingClientOptions ClientOptions() {
  rpc::RingClientOptions options;
  options.lsh =
      LshParams::Paper(HashFamilyType::kApproxMinwise, kSeed ^ 0x5bd1e995u);
  options.descriptor_replication = 2;
  options.deadline_ms = 2000.0;
  options.transport.default_deadline_ms = 2000.0;
  // Corrupted frames poison the stream and surface as IOError; the
  // policy retries them on a fresh connection.
  options.fault.max_retries = 2;
  return options;
}

::testing::AssertionResult AwaitPing(rpc::RingClient& client,
                                     const NetAddress& member) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    if (client.Ping(member).ok()) return ::testing::AssertionSuccess();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return ::testing::AssertionFailure()
         << "no pong from " << member.ToString() << " after 10s";
}

::testing::AssertionResult AwaitViewSize(rpc::RingClient& client,
                                         size_t expected) {
  Status last;
  for (int attempt = 0; attempt < 600; ++attempt) {
    last = client.RefreshView();
    if (last.ok() && client.view().size() == expected) {
      return ::testing::AssertionSuccess();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return ::testing::AssertionFailure()
         << "view stuck at " << client.view().size() << " members, wanted "
         << expected << " (last refresh: " << last.ToString() << ")";
}

/// Awaits the failure detector: the view shrinks below `below` on
/// whichever side of the cut the refresh lands.
::testing::AssertionResult AwaitViewBelow(rpc::RingClient& client,
                                          size_t below) {
  for (int attempt = 0; attempt < 600; ++attempt) {
    client.RefreshView().IgnoreError();
    if (client.view().size() < below) return ::testing::AssertionSuccess();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return ::testing::AssertionFailure()
         << "view still holds " << client.view().size() << " members";
}

/// Awaits a *total* split of the `0 | 1,2` partition: daemon 0 sees
/// only itself and each majority-side daemon sees exactly its own
/// group. Only then is gossip provably unable to heal the ring — every
/// cross-group edge is a dead tombstone at a tied incarnation, ties
/// resolve toward dead, and gossip/probes only target alive members —
/// leaving the reconnect sweep as the sole reconciliation channel. (A
/// partial split heals through ordinary refutation via whichever alive
/// cross-edge survived, which is correct behavior but not the
/// mechanism this test pins down.) Observed via the daemons' own
/// membership_alive gauge: local strike counters would not do, because
/// the majority side mostly *learns* the minority's tombstone from a
/// neighbor's gossip rather than striking it out itself.
::testing::AssertionResult AwaitTotalSplit(const ChaosRing& ring) {
  for (int attempt = 0; attempt < 600; ++attempt) {
    if (SumJsonCounter(ring.metrics[0], "membership_alive") == 1 &&
        SumJsonCounter(ring.metrics[1], "membership_alive") == 2 &&
        SumJsonCounter(ring.metrics[2], "membership_alive") == 2) {
      return ::testing::AssertionSuccess();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return ::testing::AssertionFailure()
         << "split never became total: alive = "
         << SumJsonCounter(ring.metrics[0], "membership_alive") << "/"
         << SumJsonCounter(ring.metrics[1], "membership_alive") << "/"
         << SumJsonCounter(ring.metrics[2], "membership_alive");
}

struct BatchResult {
  int failed_lookups = 0;
  int probes_failed = 0;
  double recall = 0.0;
};

BatchResult QueryBatch(rpc::RingClient& client) {
  BatchResult batch;
  UniformRangeGenerator qgen(kDomainLo, kDomainHi, kSeed ^ 0x9E3779B9);
  for (size_t i = 0; i < kQueries; ++i) {
    const Range q = qgen.Next();
    auto outcome = client.Lookup(PartitionKey{"T", "a", q});
    if (!outcome.ok()) {
      ADD_FAILURE() << "lookup " << i << ": " << outcome.status().ToString();
      ++batch.failed_lookups;
      continue;
    }
    batch.probes_failed += outcome->probes_failed;
    if (!outcome->ranked.empty()) {
      batch.recall += q.RecallFrom(outcome->ranked.front().descriptor.key.range);
    }
  }
  batch.recall /= static_cast<double>(kQueries);
  return batch;
}

/// Repeats the batch until recall recovers to within two points of the
/// baseline with every probe answered. Queries must never fail even
/// while converging.
BatchResult AwaitRecall(rpc::RingClient& client, double baseline) {
  BatchResult batch;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  do {
    batch = QueryBatch(client);
    EXPECT_EQ(batch.failed_lookups, 0);
    if (batch.probes_failed == 0 && batch.recall >= baseline - 0.02) {
      return batch;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  } while (std::chrono::steady_clock::now() < deadline);
  return batch;
}

void SeedRing(rpc::RingClient& client, const std::vector<NetAddress>& holders) {
  UniformRangeGenerator gen(kDomainLo, kDomainHi, kSeed);
  for (size_t i = 0; i < kPublishes; ++i) {
    ASSERT_TRUE(client
                    .Publish(PartitionKey{"T", "a", gen.Next()},
                             holders[i % holders.size()])
                    .ok())
        << "publish " << i;
  }
}

TEST(ChaosRingTest, AsymmetricPartitionHealsThroughReconnectSweep) {
  ChaosRing ring = SpawnChaosRing(3, "# clean network\n");
  ASSERT_NE(ring.proxy, nullptr);
  ASSERT_EQ(ring.daemons.size(), 3u);

  auto client_result =
      rpc::RingClient::Make(ring.advertised, ClientOptions());
  ASSERT_TRUE(client_result.ok()) << client_result.status().ToString();
  rpc::RingClient& client = **client_result;
  for (const NetAddress& a : ring.advertised) {
    ASSERT_TRUE(AwaitPing(client, a));
  }
  ASSERT_TRUE(AwaitViewSize(client, 3));

  SeedRing(client, ring.advertised);
  const BatchResult baseline = QueryBatch(client);
  ASSERT_EQ(baseline.failed_lookups, 0);
  ASSERT_EQ(baseline.probes_failed, 0);
  ASSERT_GT(baseline.recall, 0.0) << "the workload found nothing at all";

  // Cut daemon 0 off from 1 and 2 — node links only; the client still
  // reaches everyone, so queries must keep being answered while the
  // failure detectors on both sides strike the other side out.
  ASSERT_TRUE(ring.Replan("0..inf link=* partition groups=0|1,2\n"));
  ASSERT_TRUE(AwaitViewBelow(client, 3)) << "failure detector never fired";
  // Hold the cut until *every* cross-group edge is a dead tombstone on
  // both sides; a shorter partition can heal through a surviving alive
  // edge without ever needing the reconnect sweep.
  ASSERT_TRUE(AwaitTotalSplit(ring));
  EXPECT_EQ(QueryBatch(client).failed_lookups, 0)
      << "a query failed outright during the partition";

  // Heal. Both sides hold dead tombstones for each other and neither
  // probes nor gossips to dead members — only the reconnect sweep can
  // reconcile the split, and the view change it emits re-replicates
  // whatever the minority missed.
  ASSERT_TRUE(ring.Replan("# healed\n"));
  ASSERT_TRUE(AwaitViewSize(client, 3)) << "ring never re-converged";
  const BatchResult healed = AwaitRecall(client, baseline.recall);
  EXPECT_EQ(healed.probes_failed, 0);
  EXPECT_GE(healed.recall, baseline.recall - 0.02)
      << "partition+heal cost recall: " << healed.recall << " vs baseline "
      << baseline.recall;

  // The daemons say how they healed: somebody's reconnect sweep ran
  // and resurrected a tombstoned member.
  uint64_t resurrected = 0;
  for (int attempt = 0; attempt < 100 && resurrected == 0; ++attempt) {
    resurrected = 0;
    for (const std::string& m : ring.metrics) {
      resurrected += SumJsonCounter(m, "members_resurrected");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_GE(resurrected, 1u) << "nobody reports a reconnect resurrection";

  for (auto& daemon : ring.daemons) EXPECT_TRUE(daemon->Terminate());
  EXPECT_TRUE(ring.proxy->Terminate());
}

TEST(ChaosRingTest, CorruptInterNodeLinksCostFramesNotTheRing) {
  ChaosRing ring = SpawnChaosRing(3, "# clean network\n");
  ASSERT_NE(ring.proxy, nullptr);
  ASSERT_EQ(ring.daemons.size(), 3u);

  auto client_result =
      rpc::RingClient::Make(ring.advertised, ClientOptions());
  ASSERT_TRUE(client_result.ok()) << client_result.status().ToString();
  rpc::RingClient& client = **client_result;
  for (const NetAddress& a : ring.advertised) {
    ASSERT_TRUE(AwaitPing(client, a));
  }
  ASSERT_TRUE(AwaitViewSize(client, 3));

  SeedRing(client, ring.advertised);
  const BatchResult baseline = QueryBatch(client);
  ASSERT_EQ(baseline.failed_lookups, 0);
  ASSERT_GT(baseline.recall, 0.0);

  // The paper's hostile WAN: every inter-node direction flips a bit in
  // ~1% of segments and carries a little jitter. Client links stay
  // clean — the claim under test is that the *ring* absorbs the noise
  // (CRC rejections, reconnects, strike decay), not the client.
  std::string rules;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      if (i == j) continue;
      rules += "0..inf link=" + std::to_string(i) + "->" + std::to_string(j) +
               " corrupt p=0.01\n";
      rules += "0..inf link=" + std::to_string(i) + "->" + std::to_string(j) +
               " delay ms=2 jitter=2\n";
    }
  }
  ASSERT_TRUE(ring.Replan(rules));

  // Keep the load running until the proxy has demonstrably corrupted
  // traffic; the queries must never fail while it does.
  uint64_t corrupted = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (corrupted == 0 && std::chrono::steady_clock::now() < deadline) {
    EXPECT_EQ(QueryBatch(client).failed_lookups, 0);
    corrupted = SumJsonCounter(ring.proxy_metrics, "segments_corrupted");
  }
  EXPECT_GE(corrupted, 1u) << "the proxy never corrupted a segment";

  // The view held: flap damping and strike decay keep 1% corruption
  // from walking members to their deaths.
  ASSERT_TRUE(AwaitViewSize(client, 3));
  const BatchResult noisy = AwaitRecall(client, baseline.recall);
  EXPECT_EQ(noisy.failed_lookups, 0);
  EXPECT_GE(noisy.recall, baseline.recall - 0.02)
      << "corruption cost recall: " << noisy.recall << " vs baseline "
      << baseline.recall;

  // Heal before the graceful drain so handoffs run on clean links.
  ASSERT_TRUE(ring.Replan("# healed\n"));
  for (auto& daemon : ring.daemons) EXPECT_TRUE(daemon->Terminate());
  EXPECT_TRUE(ring.proxy->Terminate());
}

TEST(ChaosRingTest, SlowLorisIsCutWhileHonestClientsAreServed) {
  const std::string node_binary = BinaryNextToTests("p2prange_node");
  ASSERT_FALSE(node_binary.empty());
  const std::string scratch = MakeScratchDir();
  ASSERT_FALSE(scratch.empty());
  const NetAddress addr = ReservePortOn(ClientHost(0));
  const std::string metrics = scratch + "/metrics.json";
  Child daemon(node_binary, {
                                "--listen=" + addr.ToString(),
                                "--wal_dir=" + scratch,
                                "--metrics_json=" + metrics,
                                "--first_frame_timeout_ms=200",
                                "--idle_timeout_ms=2000",
                            });

  rpc::RingClientOptions options = ClientOptions();
  options.descriptor_replication = 1;  // a ring of one
  auto client_result = rpc::RingClient::Make({addr}, options);
  ASSERT_TRUE(client_result.ok());
  rpc::RingClient& client = **client_result;
  ASSERT_TRUE(AwaitPing(client, addr));

  // The attack: connect, send a single byte, then hold the socket.
  auto fd_result = rpc::StartConnect(addr);
  ASSERT_TRUE(fd_result.ok()) << fd_result.status().ToString();
  const int fd = *fd_result;
  ASSERT_TRUE(rpc::FinishConnect(fd, 2000).ok());
  const char byte = 'x';
  ASSERT_EQ(::send(fd, &byte, 1, MSG_NOSIGNAL), 1);

  // The daemon must cut the trickler: a clean FIN/RST shows up as a
  // readable-EOF on our end within a few deadline periods.
  bool closed = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!closed && std::chrono::steady_clock::now() < deadline) {
    pollfd p{fd, POLLIN, 0};
    if (::poll(&p, 1, 100) > 0 && (p.revents & (POLLIN | POLLHUP | POLLERR))) {
      char buf[16];
      const ssize_t n = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
      if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK)) {
        closed = true;
      }
    }
    // Honest traffic flows the whole time the attacker dangles.
    EXPECT_TRUE(client.Ping(addr).ok());
  }
  ::close(fd);
  EXPECT_TRUE(closed) << "slow-loris socket was never cut";

  // The daemon accounted for the kill.
  uint64_t idle_closed = 0;
  for (int attempt = 0; attempt < 100 && idle_closed == 0; ++attempt) {
    idle_closed = SumJsonCounter(metrics, "idle_closed");
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_GE(idle_closed, 1u);

  EXPECT_TRUE(daemon.Terminate());
}

}  // namespace
}  // namespace p2prange
