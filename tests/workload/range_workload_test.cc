#include "workload/range_workload.h"

#include <gtest/gtest.h>

namespace p2prange {
namespace {

TEST(UniformRangeGeneratorTest, StaysInDomainAndOrdered) {
  UniformRangeGenerator gen(0, 1000, 5);
  for (int i = 0; i < 5000; ++i) {
    const Range r = gen.Next();
    EXPECT_LE(r.lo(), r.hi());
    EXPECT_LE(r.hi(), 1000u);
  }
}

TEST(UniformRangeGeneratorTest, DeterministicForSeed) {
  UniformRangeGenerator a(0, 1000, 9), b(0, 1000, 9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(UniformRangeGeneratorTest, MeanSizeNearOneThirdOfDomain) {
  // Two ordered uniform endpoints: E[hi - lo] = width/3.
  UniformRangeGenerator gen(0, 1000, 13);
  double total = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += static_cast<double>(gen.Next().size());
  EXPECT_NEAR(total / n, 1000.0 / 3.0 + 1.0, 15.0);
}

TEST(UniformRangeGeneratorTest, PaperWorkloadRepetitionRateIsTiny) {
  // The paper reports ~0.2% repeats for 10,000 uniform ranges over
  // [0,1000]; the birthday bound for ordered uniform endpoint pairs
  // puts the true rate near 1%. Either way: a small fraction.
  UniformRangeGenerator gen(0, 1000, 42);
  const auto ranges = DrawRanges(gen, 10000);
  const double rate = RepetitionRate(ranges);
  EXPECT_GT(rate, 0.0001);
  EXPECT_LT(rate, 0.02);
}

TEST(UniformRangeGeneratorTest, OffsetDomain) {
  UniformRangeGenerator gen(500, 600, 3);
  for (int i = 0; i < 500; ++i) {
    const Range r = gen.Next();
    EXPECT_GE(r.lo(), 500u);
    EXPECT_LE(r.hi(), 600u);
  }
}

TEST(FixedSizeRangeGeneratorTest, AllRangesHaveRequestedSize) {
  FixedSizeRangeGenerator gen(0, 10000, 137, 7);
  for (int i = 0; i < 1000; ++i) {
    const Range r = gen.Next();
    EXPECT_EQ(r.size(), 137u);
    EXPECT_LE(r.hi(), 10000u);
  }
}

TEST(FixedSizeRangeGeneratorTest, SizeOneAndFullDomain) {
  FixedSizeRangeGenerator ones(0, 100, 1, 11);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ones.Next().size(), 1u);
  FixedSizeRangeGenerator full(0, 100, 101, 11);
  EXPECT_EQ(full.Next(), Range(0, 100));
}

TEST(ZipfRangeGeneratorTest, StaysInDomain) {
  ZipfRangeGenerator gen(0, 1000, 0.9, 50.0, 17);
  for (int i = 0; i < 2000; ++i) {
    const Range r = gen.Next();
    EXPECT_LE(r.hi(), 1000u);
  }
}

TEST(ZipfRangeGeneratorTest, HotRegionDominates) {
  ZipfRangeGenerator gen(0, 10000, 0.99, 20.0, 23);
  int low_centered = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    if (gen.Next().lo() < 1000) ++low_centered;
  }
  EXPECT_GT(low_centered, n / 2);
}

TEST(RepetitionRateTest, ExactComputation) {
  std::vector<Range> ranges = {Range(0, 1), Range(0, 1), Range(2, 3), Range(0, 1)};
  EXPECT_DOUBLE_EQ(RepetitionRate(ranges), 0.5);
  EXPECT_DOUBLE_EQ(RepetitionRate({}), 0.0);
  EXPECT_DOUBLE_EQ(RepetitionRate({Range(1, 2)}), 0.0);
}

}  // namespace
}  // namespace p2prange
