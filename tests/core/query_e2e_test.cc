// End-to-end SQL over the P2P system: every leaf resolved through the
// overlay (caches or source), joins executed at the querying peer.
#include <gtest/gtest.h>

#include "core/system.h"
#include "query/executor.h"
#include "query/parser.h"
#include "rel/generator.h"

namespace p2prange {
namespace {

Catalog MedicalData(uint64_t seed = 3) {
  Catalog cat = MakeMedicalCatalog();
  MedicalDataSpec spec;
  spec.num_patients = 300;
  spec.num_physicians = 20;
  spec.num_prescriptions = 400;
  spec.num_diagnoses = 500;
  spec.seed = seed;
  CHECK(PopulateMedicalData(spec, &cat).ok());
  return cat;
}

SystemConfig MedConfig(uint64_t seed = 21) {
  SystemConfig cfg;
  cfg.num_peers = 24;
  cfg.lsh = LshParams::Paper(HashFamilyType::kApproxMinwise, seed);
  cfg.seed = seed;
  return cfg;
}

/// Ground truth: run the same SQL directly over the base relations.
Relation Reference(const Catalog& cat, const std::string& sql) {
  auto stmt = ParseSelect(sql);
  CHECK(stmt.ok()) << stmt.status();
  auto plan = BuildPlan(*stmt, cat);
  CHECK(plan.ok()) << plan.status();
  std::map<std::string, Relation> inputs;
  for (const TableSelection& leaf : plan->leaves) {
    inputs.emplace(leaf.table, **cat.GetBaseData(leaf.table));
  }
  auto result = ExecutePlan(*plan, inputs);
  CHECK(result.ok()) << result.status();
  return *result;
}

class QueryE2eTest : public ::testing::Test {
 protected:
  QueryE2eTest() : catalog_(MedicalData()) {}

  RangeCacheSystem MakeSystem(SystemConfig cfg) {
    auto sys = RangeCacheSystem::Make(cfg, catalog_);
    CHECK(sys.ok()) << sys.status();
    return std::move(sys).ValueUnsafe();
  }

  Catalog catalog_;
};

TEST_F(QueryE2eTest, ColdSingleTableQueryMatchesReference) {
  auto sys = MakeSystem(MedConfig());
  const std::string sql = "SELECT * FROM Patient WHERE age > 30 AND age < 50";
  auto outcome = sys.ExecuteQuery(sql);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  const Relation ref = Reference(catalog_, sql);
  EXPECT_EQ(outcome->result.num_rows(), ref.num_rows());
  EXPECT_FALSE(outcome->approximate);
  ASSERT_EQ(outcome->leaves.size(), 1u);
  EXPECT_TRUE(outcome->leaves[0].from_source) << "cold cache must hit the source";
  EXPECT_EQ(sys.metrics().source_fetches, 1u);
}

TEST_F(QueryE2eTest, RepeatedQueryServedFromCache) {
  auto sys = MakeSystem(MedConfig());
  const std::string sql = "SELECT * FROM Patient WHERE age > 30 AND age < 50";
  ASSERT_TRUE(sys.ExecuteQuery(sql).ok());
  const uint64_t source_before = sys.metrics().source_fetches;
  auto outcome = sys.ExecuteQuery(sql);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(sys.metrics().source_fetches, source_before)
      << "second run must not touch the source";
  EXPECT_TRUE(outcome->leaves[0].used_cache);
  EXPECT_EQ(outcome->result.num_rows(),
            Reference(catalog_, sql).num_rows());
  EXPECT_GT(sys.metrics().cache_fetches, 0u);
}

TEST_F(QueryE2eTest, PaperJoinQueryMatchesReferenceColdAndWarm) {
  auto sys = MakeSystem(MedConfig());
  const std::string sql =
      "Select Prescription.prescription "
      "from Patient, Diagnosis, Prescription "
      "where 30 < age and age < 50 "
      "and diagnosis = 'Glaucoma' "
      "and Patient.patient_id = Diagnosis.patient_id "
      "and '1995-01-01' < date and date < '2005-12-31' "
      "and Diagnosis.prescription_id = Prescription.prescription_id";
  const Relation ref = Reference(catalog_, sql);
  ASSERT_GT(ref.num_rows(), 0u) << "test data must produce a non-empty answer";

  auto cold = sys.ExecuteQuery(sql);
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_EQ(cold->result.num_rows(), ref.num_rows());
  EXPECT_FALSE(cold->approximate);

  auto warm = sys.ExecuteQuery(sql);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->result.num_rows(), ref.num_rows());
  // All three leaves cached now (two range leaves + one eq leaf).
  for (const LeafOutcome& leaf : warm->leaves) {
    EXPECT_TRUE(leaf.used_cache) << leaf.table;
  }
}

TEST_F(QueryE2eTest, EqualityLeafUsesExactMatchPath) {
  auto sys = MakeSystem(MedConfig());
  const std::string sql = "SELECT * FROM Diagnosis WHERE diagnosis = 'Asthma'";
  ASSERT_TRUE(sys.ExecuteQuery(sql).ok());
  EXPECT_EQ(sys.metrics().eq_lookups, 1u);
  EXPECT_EQ(sys.metrics().eq_hits, 0u);
  auto warm = sys.ExecuteQuery(sql);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(sys.metrics().eq_lookups, 2u);
  EXPECT_EQ(sys.metrics().eq_hits, 1u);
  EXPECT_EQ(warm->result.num_rows(), Reference(catalog_, sql).num_rows());
}

TEST_F(QueryE2eTest, SimilarQueryAnsweredApproximatelyWhenAccepted) {
  SystemConfig cfg = MedConfig(33);
  cfg.accept_partial_answers = true;
  auto sys = MakeSystem(cfg);
  ASSERT_TRUE(
      sys.ExecuteQuery("SELECT * FROM Patient WHERE age >= 30 AND age <= 50").ok());
  // A slightly different range: the cached [30,50] partition has
  // recall 20/21 for [31,51]... whether the LSH finds it is
  // probabilistic; if found, the answer is the correct subset.
  auto outcome =
      sys.ExecuteQuery("SELECT * FROM Patient WHERE age >= 31 AND age <= 51");
  ASSERT_TRUE(outcome.ok());
  const Relation ref = Reference(
      catalog_, "SELECT * FROM Patient WHERE age >= 31 AND age <= 51");
  if (outcome->approximate) {
    EXPECT_LE(outcome->result.num_rows(), ref.num_rows());
    // No false positives: every returned row satisfies the predicate.
    auto idx = outcome->result.schema().FieldIndex("Patient.age");
    ASSERT_TRUE(idx.ok());
    for (const Row& row : outcome->result.rows()) {
      EXPECT_GE(row[*idx].AsInt(), 31);
      EXPECT_LE(row[*idx].AsInt(), 51);
    }
  } else {
    EXPECT_EQ(outcome->result.num_rows(), ref.num_rows());
  }
}

TEST_F(QueryE2eTest, WithoutPartialAcceptanceAnswersAreAlwaysComplete) {
  auto sys = MakeSystem(MedConfig(44));
  const char* queries[] = {
      "SELECT * FROM Patient WHERE age >= 30 AND age <= 50",
      "SELECT * FROM Patient WHERE age >= 31 AND age <= 51",
      "SELECT * FROM Patient WHERE age >= 29 AND age <= 49",
      "SELECT * FROM Patient WHERE age >= 30 AND age <= 49",
  };
  for (const char* sql : queries) {
    auto outcome = sys.ExecuteQuery(sql);
    ASSERT_TRUE(outcome.ok()) << sql;
    EXPECT_FALSE(outcome->approximate);
    EXPECT_EQ(outcome->result.num_rows(), Reference(catalog_, sql).num_rows())
        << sql;
  }
}

TEST_F(QueryE2eTest, PaddedSystemStillReturnsCorrectRows) {
  SystemConfig cfg = MedConfig(55);
  cfg.padding = 0.2;
  auto sys = MakeSystem(cfg);
  const std::string sql = "SELECT * FROM Patient WHERE age >= 40 AND age <= 60";
  auto cold = sys.ExecuteQuery(sql);
  ASSERT_TRUE(cold.ok());
  // The executor refilters padded partitions back down to the query.
  EXPECT_EQ(cold->result.num_rows(), Reference(catalog_, sql).num_rows());
  auto warm = sys.ExecuteQuery(sql);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->result.num_rows(), Reference(catalog_, sql).num_rows());
}

TEST_F(QueryE2eTest, InvalidSqlSurfacesParseError) {
  auto sys = MakeSystem(MedConfig());
  EXPECT_FALSE(sys.ExecuteQuery("SELEKT oops").ok());
  EXPECT_FALSE(sys.ExecuteQuery("SELECT * FROM NoSuchTable").ok());
}

TEST_F(QueryE2eTest, QueryFromSpecificClientMaterializesThere) {
  auto sys = MakeSystem(MedConfig());
  const auto client = sys.ring().RandomAliveAddress();
  ASSERT_TRUE(client.ok());
  const std::string sql = "SELECT * FROM Patient WHERE age >= 20 AND age <= 40";
  ASSERT_TRUE(sys.ExecuteQueryFrom(*client, sql).ok());
  EXPECT_GT(sys.peer(*client)->num_materialized(), 0u)
      << "the querying peer becomes the holder of the fetched partition";
}

}  // namespace
}  // namespace p2prange
