// Tests for the §6 / robustness extensions: whole-query result caching
// and descriptor replication under churn.
#include <gtest/gtest.h>

#include "core/system.h"
#include "rel/generator.h"

namespace p2prange {
namespace {

SystemConfig BaseConfig(uint64_t seed) {
  SystemConfig cfg;
  cfg.num_peers = 40;
  cfg.lsh = LshParams::Paper(HashFamilyType::kApproxMinwise, seed);
  cfg.criterion = MatchCriterion::kContainment;
  cfg.seed = seed;
  return cfg;
}

RangeCacheSystem MakeMedicalSystem(SystemConfig cfg) {
  Catalog cat = MakeMedicalCatalog();
  MedicalDataSpec spec;
  spec.num_patients = 300;
  CHECK(PopulateMedicalData(spec, &cat).ok());
  auto sys = RangeCacheSystem::Make(cfg, std::move(cat));
  CHECK(sys.ok()) << sys.status();
  return std::move(sys).ValueUnsafe();
}

TEST(ResultCacheTest, SecondIdenticalQueryReturnsCachedResult) {
  SystemConfig cfg = BaseConfig(81);
  cfg.cache_query_results = true;
  auto sys = MakeMedicalSystem(cfg);
  const std::string sql = "SELECT * FROM Patient WHERE age > 30 AND age < 50";
  auto first = sys.ExecuteQuery(sql);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->from_result_cache);
  EXPECT_EQ(sys.metrics().result_cache_lookups, 1u);
  EXPECT_EQ(sys.metrics().result_cache_hits, 0u);

  auto second = sys.ExecuteQuery(sql);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->from_result_cache);
  EXPECT_TRUE(second->leaves.empty());
  EXPECT_EQ(second->result.num_rows(), first->result.num_rows());
  EXPECT_EQ(sys.metrics().result_cache_hits, 1u);
}

TEST(ResultCacheTest, EquivalentSpellingsShareTheCacheEntry) {
  SystemConfig cfg = BaseConfig(83);
  cfg.cache_query_results = true;
  auto sys = MakeMedicalSystem(cfg);
  // Same plan, different literal arrangement: "30 < age" vs "age > 30"
  // and BETWEEN both normalize to the same leaf range.
  ASSERT_TRUE(
      sys.ExecuteQuery("SELECT * FROM Patient WHERE 30 <= age AND age <= 50")
          .ok());
  auto other =
      sys.ExecuteQuery("SELECT * FROM Patient WHERE age BETWEEN 30 AND 50");
  ASSERT_TRUE(other.ok());
  EXPECT_TRUE(other->from_result_cache);
}

TEST(ResultCacheTest, DifferentQueriesDoNotCollide) {
  SystemConfig cfg = BaseConfig(85);
  cfg.cache_query_results = true;
  auto sys = MakeMedicalSystem(cfg);
  ASSERT_TRUE(
      sys.ExecuteQuery("SELECT * FROM Patient WHERE age > 30 AND age < 50").ok());
  auto other =
      sys.ExecuteQuery("SELECT * FROM Patient WHERE age > 30 AND age < 51");
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(other->from_result_cache);
}

TEST(ResultCacheTest, JoinResultsAreCachedToo) {
  SystemConfig cfg = BaseConfig(87);
  cfg.cache_query_results = true;
  auto sys = MakeMedicalSystem(cfg);
  const std::string sql =
      "SELECT Patient.name FROM Patient, Diagnosis "
      "WHERE age > 30 AND diagnosis = 'Glaucoma' "
      "AND Patient.patient_id = Diagnosis.patient_id";
  auto first = sys.ExecuteQuery(sql);
  ASSERT_TRUE(first.ok()) << first.status();
  auto second = sys.ExecuteQuery(sql);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->from_result_cache);
  EXPECT_EQ(second->result.num_rows(), first->result.num_rows());
}

TEST(ResultCacheTest, DisabledByDefault) {
  auto sys = MakeMedicalSystem(BaseConfig(89));
  const std::string sql = "SELECT * FROM Patient WHERE age > 30 AND age < 50";
  ASSERT_TRUE(sys.ExecuteQuery(sql).ok());
  auto second = sys.ExecuteQuery(sql);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->from_result_cache);
  EXPECT_EQ(sys.metrics().result_cache_lookups, 0u);
}

TEST(ByteAccountingTest, CacheHitsMoveTrafficOffTheSource) {
  auto sys = MakeMedicalSystem(BaseConfig(95));
  const std::string sql = "SELECT * FROM Patient WHERE age > 20 AND age < 70";
  ASSERT_TRUE(sys.ExecuteQuery(sql).ok());
  const uint64_t src_after_cold = sys.metrics().bytes_from_source;
  EXPECT_GT(src_after_cold, 0u);
  EXPECT_EQ(sys.metrics().bytes_from_cache, 0u);
  ASSERT_TRUE(sys.ExecuteQuery(sql).ok());
  EXPECT_EQ(sys.metrics().bytes_from_source, src_after_cold)
      << "warm query must not touch the source";
  EXPECT_GT(sys.metrics().bytes_from_cache, 0u);
  // The same partition moved both times, so the byte volumes match.
  EXPECT_EQ(sys.metrics().bytes_from_cache, src_after_cold);
}

TEST(ReplicationTest, ReplicationMultipliesStoredDescriptors) {
  SystemConfig plain = BaseConfig(91);
  SystemConfig replicated = BaseConfig(91);
  replicated.descriptor_replication = 3;
  auto sys1 = MakeMedicalSystem(plain);
  auto sys3 = MakeMedicalSystem(replicated);
  const PartitionKey key{"Patient", "age", Range(30, 50)};
  ASSERT_TRUE(sys1.LookupRange(key).ok());
  ASSERT_TRUE(sys3.LookupRange(key).ok());
  EXPECT_EQ(sys1.metrics().descriptors_stored, 5u);
  EXPECT_EQ(sys3.metrics().descriptors_stored, 15u);
}

TEST(ReplicationTest, CachedMatchesSurviveOwnerDepartureWithReplication) {
  // With replication 3, the identifier's new owner after a departure
  // (the old owner's successor) already holds a replica, so a repeat
  // query still finds the exact match. Without replication the match
  // is lost. Run over several seeds since one seed's owner sets vary.
  int survived_with = 0, survived_without = 0;
  const int kTrials = 8;
  for (int trial = 0; trial < kTrials; ++trial) {
    for (bool replicate : {false, true}) {
      SystemConfig cfg = BaseConfig(1000 + trial);
      cfg.descriptor_replication = replicate ? 3 : 1;
      auto sys = MakeMedicalSystem(cfg);
      const PartitionKey key{"Patient", "age", Range(30, 50)};
      const auto origin = sys.ring().RandomAliveAddress();
      ASSERT_TRUE(origin.ok());
      ASSERT_TRUE(sys.LookupRangeFrom(*origin, key).ok());  // publishes

      // Fail every identifier owner (except the querying origin).
      for (uint32_t id : sys.lsh().Identifiers(key.range)) {
        auto owner = sys.ring().FindSuccessorOracle(id);
        ASSERT_TRUE(owner.ok());
        if (owner->addr == *origin || owner->addr == sys.source_address()) {
          continue;
        }
        // Already-removed owners (duplicate identifiers) are fine.
        sys.RemovePeer(owner->addr, /*graceful=*/false).IgnoreError();
      }
      sys.ring().StabilizeAll(2);
      sys.ring().FixAllFingers();

      auto again = sys.LookupRangeFrom(*origin, key);
      ASSERT_TRUE(again.ok()) << again.status();
      const bool found_exact = again->match && again->match->exact;
      if (replicate) {
        survived_with += found_exact;
      } else {
        survived_without += found_exact;
      }
    }
  }
  EXPECT_GT(survived_with, survived_without);
  EXPECT_GE(survived_with, kTrials - 1) << "replication should almost always survive";
}

}  // namespace
}  // namespace p2prange
