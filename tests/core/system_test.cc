#include "core/system.h"

#include <gtest/gtest.h>

#include "rel/generator.h"

namespace p2prange {
namespace {

SystemConfig SmallConfig(uint64_t seed = 1) {
  SystemConfig cfg;
  cfg.num_peers = 32;
  cfg.lsh = LshParams::Paper(HashFamilyType::kApproxMinwise, seed);
  cfg.seed = seed;
  return cfg;
}

PartitionKey NumbersKey(uint32_t lo, uint32_t hi) {
  return PartitionKey{"Numbers", "key", Range(lo, hi)};
}

class SystemTest : public ::testing::Test {
 protected:
  RangeCacheSystem MakeSystem(SystemConfig cfg) {
    auto sys = RangeCacheSystem::Make(cfg, MakeNumbersCatalog(2000, 0, 1000, 5));
    EXPECT_TRUE(sys.ok()) << sys.status();
    return std::move(sys).ValueUnsafe();
  }
};

TEST_F(SystemTest, MakeRejectsNegativePadding) {
  SystemConfig cfg = SmallConfig();
  cfg.padding = -0.1;
  EXPECT_TRUE(RangeCacheSystem::Make(cfg, MakeNumbersCatalog(10, 0, 10, 1))
                  .status()
                  .IsInvalidArgument());
}

TEST_F(SystemTest, FirstLookupMissesAndCaches) {
  auto sys = MakeSystem(SmallConfig());
  auto outcome = sys.LookupRange(NumbersKey(100, 200));
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_FALSE(outcome->match.has_value());
  EXPECT_EQ(outcome->identifiers.size(), 5u);
  EXPECT_EQ(sys.metrics().misses, 1u);
  EXPECT_EQ(sys.metrics().partitions_published, 1u);
  EXPECT_EQ(sys.metrics().descriptors_stored, 5u);
}

TEST_F(SystemTest, SecondIdenticalLookupIsExactHit) {
  auto sys = MakeSystem(SmallConfig());
  ASSERT_TRUE(sys.LookupRange(NumbersKey(100, 200)).ok());
  auto outcome = sys.LookupRange(NumbersKey(100, 200));
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->match.has_value());
  EXPECT_TRUE(outcome->match->exact);
  EXPECT_DOUBLE_EQ(outcome->match->jaccard, 1.0);
  EXPECT_DOUBLE_EQ(outcome->match->recall, 1.0);
  EXPECT_EQ(sys.metrics().exact_hits, 1u);
  // An exact hit does not republish.
  EXPECT_EQ(sys.metrics().partitions_published, 1u);
}

TEST_F(SystemTest, VerySimilarRangeFindsApproximateMatch) {
  auto sys = MakeSystem(SmallConfig());
  ASSERT_TRUE(sys.LookupRange(NumbersKey(100, 200)).ok());
  // Jaccard([101,200],[100,200]) = 100/101 ~ 0.99. Under ideal
  // min-wise independence the hit probability would be ~0.9998; the
  // paper's one-round bit-shuffle family is weaker in practice, so we
  // assert a solid but not near-certain hit rate across seeds.
  int found = 0;
  for (uint64_t seed = 10; seed < 20; ++seed) {
    auto s = MakeSystem(SmallConfig(seed));
    ASSERT_TRUE(s.LookupRange(NumbersKey(100, 200)).ok());
    auto outcome = s.LookupRange(NumbersKey(101, 200));
    ASSERT_TRUE(outcome.ok());
    if (outcome->match && outcome->match->jaccard > 0.9) ++found;
  }
  EXPECT_GE(found, 4);
}

TEST_F(SystemTest, DissimilarRangeDoesNotMatch) {
  auto sys = MakeSystem(SmallConfig());
  ASSERT_TRUE(sys.LookupRange(NumbersKey(100, 200)).ok());
  auto outcome = sys.LookupRange(NumbersKey(600, 900));
  ASSERT_TRUE(outcome.ok());
  // Jaccard 0 -> collision essentially impossible.
  EXPECT_FALSE(outcome->match.has_value());
}

TEST_F(SystemTest, LookupFromSpecificOriginChargesHops) {
  auto sys = MakeSystem(SmallConfig());
  const auto origin = sys.ring().RandomAliveAddress();
  ASSERT_TRUE(origin.ok());
  auto outcome = sys.LookupRangeFrom(*origin, NumbersKey(10, 50));
  ASSERT_TRUE(outcome.ok());
  EXPECT_GE(outcome->hops, 0);
  EXPECT_GE(outcome->peers_contacted, 1);
  EXPECT_LE(outcome->peers_contacted, 5);
  EXPECT_EQ(sys.metrics().chord_hops, static_cast<uint64_t>(outcome->hops));
}

TEST_F(SystemTest, UnknownOriginRejected) {
  auto sys = MakeSystem(SmallConfig());
  EXPECT_TRUE(sys.LookupRangeFrom(NetAddress{1, 2}, NumbersKey(0, 5))
                  .status()
                  .IsInvalidArgument());
}

TEST_F(SystemTest, CacheOnMissDisabled) {
  SystemConfig cfg = SmallConfig();
  cfg.cache_on_miss = false;
  auto sys = MakeSystem(cfg);
  ASSERT_TRUE(sys.LookupRange(NumbersKey(100, 200)).ok());
  auto outcome = sys.LookupRange(NumbersKey(100, 200));
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->match.has_value()) << "nothing should have been stored";
  EXPECT_EQ(sys.metrics().descriptors_stored, 0u);
}

TEST_F(SystemTest, PaddingExpandsEffectiveQuery) {
  SystemConfig cfg = SmallConfig();
  cfg.padding = 0.2;
  auto sys = MakeSystem(cfg);
  auto outcome = sys.LookupRange(NumbersKey(100, 199));
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->query, Range(100, 199));
  EXPECT_EQ(outcome->effective_query, Range(80, 219));
  // Padded partitions are what get published.
  auto second = sys.LookupRange(NumbersKey(100, 199));
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second->match.has_value());
  EXPECT_EQ(second->match->matched.range, Range(80, 219));
  EXPECT_TRUE(second->match->exact) << "same padded range is an exact identifier hit";
  EXPECT_DOUBLE_EQ(second->match->recall, 1.0);
}

TEST_F(SystemTest, PaddingClampedAtDomainEdges) {
  SystemConfig cfg = SmallConfig();
  cfg.padding = 0.5;
  auto sys = MakeSystem(cfg);
  auto outcome = sys.LookupRange(NumbersKey(0, 99));
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->effective_query, Range(0, 149));
  auto high = sys.LookupRange(NumbersKey(950, 1000));
  ASSERT_TRUE(high.ok());
  EXPECT_EQ(high->effective_query, Range(925, 1000));
}

TEST_F(SystemTest, ContainmentCriterionPrefersCoveringPartition) {
  SystemConfig cfg = SmallConfig(77);
  cfg.criterion = MatchCriterion::kContainment;
  auto sys = MakeSystem(cfg);
  const auto origin = sys.ring().RandomAliveAddress();
  ASSERT_TRUE(origin.ok());
  // Publish a broad partition, then query a strict subrange. With the
  // peer-index disabled the query still has to land in the right
  // bucket, so publish under the query's own identifiers by storing
  // the query first and the broad range under the same bucket ids via
  // direct store access.
  ASSERT_TRUE(sys.PublishPartition(NumbersKey(0, 1000), *origin).ok());
  const auto ids = sys.lsh().Identifiers(Range(100, 110));
  for (uint32_t id : ids) {
    auto owner = sys.ring().FindSuccessorOracle(id);
    ASSERT_TRUE(owner.ok());
    sys.peer(owner->addr)->store().Insert(
        id, PartitionDescriptor{NumbersKey(0, 1000), *origin});
  }
  auto outcome = sys.LookupRangeFrom(*origin, NumbersKey(100, 110));
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->match.has_value());
  EXPECT_EQ(outcome->match->matched.range, Range(0, 1000));
  EXPECT_DOUBLE_EQ(outcome->match->recall, 1.0);
}

TEST_F(SystemTest, PeerIndexFindsMatchesAcrossBuckets) {
  // With use_peer_index, a partition stored in *any* bucket of the
  // probed peer is considered (§5.3).
  SystemConfig cfg = SmallConfig(88);
  cfg.use_peer_index = true;
  auto sys = MakeSystem(cfg);
  const auto origin = sys.ring().RandomAliveAddress();
  ASSERT_TRUE(origin.ok());
  // Store a broad partition into an arbitrary bucket of every peer.
  for (const auto& info : sys.ring().AliveNodesSorted()) {
    sys.peer(info.addr)->store().Insert(
        info.id, PartitionDescriptor{NumbersKey(0, 1000), *origin});
  }
  auto outcome = sys.LookupRangeFrom(*origin, NumbersKey(400, 500));
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->match.has_value());
  EXPECT_EQ(outcome->match->matched.range, Range(0, 1000));
}

TEST_F(SystemTest, PublishThenMaterializeServesData) {
  auto sys = MakeSystem(SmallConfig());
  const auto holder = sys.ring().RandomAliveAddress();
  ASSERT_TRUE(holder.ok());
  const PartitionKey key = NumbersKey(200, 300);
  ASSERT_TRUE(sys.PublishPartition(key, *holder).ok());
  ASSERT_TRUE(sys.MaterializePartition(key, *holder).ok());
  const Relation* data = sys.peer(*holder)->GetPartitionData(key);
  ASSERT_NE(data, nullptr);
  for (const Row& row : data->rows()) {
    EXPECT_GE(row[0].AsInt(), 200);
    EXPECT_LE(row[0].AsInt(), 300);
  }
  EXPECT_EQ(sys.metrics().source_fetches, 1u);
}

TEST_F(SystemTest, DescriptorCountsSumToStored) {
  auto sys = MakeSystem(SmallConfig());
  for (uint32_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(sys.LookupRange(NumbersKey(i * 10, i * 10 + 100)).ok());
  }
  const auto counts = sys.DescriptorCountsPerPeer();
  EXPECT_EQ(counts.size(), 32u);
  size_t total = 0;
  for (size_t c : counts) total += c;
  EXPECT_EQ(total, sys.metrics().descriptors_stored);
}

TEST_F(SystemTest, MetricsResetClearsCounters) {
  auto sys = MakeSystem(SmallConfig());
  ASSERT_TRUE(sys.LookupRange(NumbersKey(1, 5)).ok());
  EXPECT_GT(sys.metrics().range_lookups, 0u);
  sys.ResetMetrics();
  EXPECT_EQ(sys.metrics().range_lookups, 0u);
  EXPECT_EQ(sys.metrics().ToString().find("range_lookups=0"), 0u);
}

TEST_F(SystemTest, StoreCapacityBoundsPerPeerState) {
  SystemConfig cfg = SmallConfig();
  cfg.store_capacity = 3;
  auto sys = MakeSystem(cfg);
  for (uint32_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(sys.LookupRange(NumbersKey(i, i + 50)).ok());
  }
  for (size_t c : sys.DescriptorCountsPerPeer()) {
    EXPECT_LE(c, 3u);
  }
}

}  // namespace
}  // namespace p2prange
