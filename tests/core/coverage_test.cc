#include "core/coverage.h"

#include <gtest/gtest.h>

#include "core/system.h"
#include "rel/generator.h"

namespace p2prange {
namespace {

PartitionDescriptor Desc(uint32_t lo, uint32_t hi, uint16_t port = 1) {
  return PartitionDescriptor{PartitionKey{"Numbers", "key", Range(lo, hi)},
                             NetAddress{1, port}};
}

TEST(AssembleCoverageTest, EmptyCandidates) {
  const CoverageResult r = AssembleCoverage(Range(10, 100), {}, 8);
  EXPECT_TRUE(r.pieces.empty());
  EXPECT_DOUBLE_EQ(r.covered_fraction, 0.0);
}

TEST(AssembleCoverageTest, SingleCoveringPiece) {
  const CoverageResult r =
      AssembleCoverage(Range(10, 100), {Desc(0, 200)}, 8);
  ASSERT_EQ(r.pieces.size(), 1u);
  EXPECT_DOUBLE_EQ(r.covered_fraction, 1.0);
}

TEST(AssembleCoverageTest, TwoOverlappingPiecesCoverFully) {
  const CoverageResult r =
      AssembleCoverage(Range(10, 100), {Desc(0, 60), Desc(50, 120)}, 8);
  ASSERT_EQ(r.pieces.size(), 2u);
  EXPECT_DOUBLE_EQ(r.covered_fraction, 1.0);
  EXPECT_EQ(r.pieces[0].key.range, Range(0, 60));
  EXPECT_EQ(r.pieces[1].key.range, Range(50, 120));
}

TEST(AssembleCoverageTest, GapsYieldPartialCoverage) {
  // [10,100] covered by [10,39] and [70,100]: 30 + 31 of 91 elements.
  const CoverageResult r =
      AssembleCoverage(Range(10, 100), {Desc(10, 39), Desc(70, 100)}, 8);
  ASSERT_EQ(r.pieces.size(), 2u);
  EXPECT_NEAR(r.covered_fraction, 61.0 / 91.0, 1e-12);
}

TEST(AssembleCoverageTest, GreedyPicksFurthestReaching) {
  // Both [0,30] and [0,80] start before the query; greedy must take
  // [0,80] and then [75,120], skipping the useless [20,50].
  const CoverageResult r = AssembleCoverage(
      Range(10, 100), {Desc(0, 30), Desc(0, 80), Desc(20, 50), Desc(75, 120)},
      8);
  ASSERT_EQ(r.pieces.size(), 2u);
  EXPECT_EQ(r.pieces[0].key.range, Range(0, 80));
  EXPECT_EQ(r.pieces[1].key.range, Range(75, 120));
  EXPECT_DOUBLE_EQ(r.covered_fraction, 1.0);
}

TEST(AssembleCoverageTest, NonOverlappingCandidatesIgnored) {
  const CoverageResult r = AssembleCoverage(
      Range(10, 100), {Desc(200, 300), Desc(50, 70)}, 8);
  ASSERT_EQ(r.pieces.size(), 1u);
  EXPECT_EQ(r.pieces[0].key.range, Range(50, 70));
}

TEST(AssembleCoverageTest, PieceBudgetIsRespected) {
  // Full cover needs 5 pieces; with a budget of 2 only a prefix fits.
  std::vector<PartitionDescriptor> candidates;
  for (uint32_t i = 0; i < 5; ++i) {
    candidates.push_back(Desc(i * 20, i * 20 + 21));
  }
  const CoverageResult r = AssembleCoverage(Range(0, 100), candidates, 2);
  EXPECT_EQ(r.pieces.size(), 2u);
  EXPECT_LT(r.covered_fraction, 1.0);
  EXPECT_GT(r.covered_fraction, 0.3);
  const CoverageResult full = AssembleCoverage(Range(0, 100), candidates, 8);
  EXPECT_DOUBLE_EQ(full.covered_fraction, 1.0);
}

TEST(AssembleCoverageTest, QueryAtDomainExtremes) {
  const uint32_t max = 0xFFFFFFFFu;
  const CoverageResult r = AssembleCoverage(
      Range(max - 10, max), {Desc(max - 20, max - 5), Desc(max - 6, max)}, 8);
  EXPECT_DOUBLE_EQ(r.covered_fraction, 1.0);
  ASSERT_EQ(r.pieces.size(), 2u);
}

TEST(AssembleCoverageTest, ZeroBudget) {
  const CoverageResult r = AssembleCoverage(Range(0, 10), {Desc(0, 10)}, 0);
  EXPECT_TRUE(r.pieces.empty());
}

class CoverageSystemTest : public ::testing::Test {
 protected:
  RangeCacheSystem MakeSystem(bool coverage, uint64_t seed = 51) {
    SystemConfig cfg;
    cfg.num_peers = 32;
    cfg.lsh = LshParams::Paper(HashFamilyType::kApproxMinwise, seed);
    cfg.criterion = MatchCriterion::kContainment;
    cfg.assemble_coverage = coverage;
    cfg.seed = seed;
    auto sys =
        RangeCacheSystem::Make(cfg, MakeNumbersCatalog(3000, 0, 1000, 5));
    CHECK(sys.ok()) << sys.status();
    return std::move(sys).ValueUnsafe();
  }
};

TEST_F(CoverageSystemTest, LeafServedFromTwoPartitions) {
  auto sys = MakeSystem(/*coverage=*/true);
  // Materialize two halves through real queries.
  ASSERT_TRUE(
      sys.ExecuteQuery("SELECT * FROM Numbers WHERE key >= 100 AND key <= 300")
          .ok());
  ASSERT_TRUE(
      sys.ExecuteQuery("SELECT * FROM Numbers WHERE key >= 280 AND key <= 500")
          .ok());
  // The union query is covered by the two cached partitions, but any
  // single partition covers at most ~55% of it. Whether the LSH finds
  // both depends on similarity; the probe is padded by construction:
  // [100,500] has containment... verify via the lookup directly.
  auto outcome = sys.LookupRange(PartitionKey{"Numbers", "key", Range(150, 450)});
  ASSERT_TRUE(outcome.ok());
  if (outcome->coverage_recall >= 1.0) {
    EXPECT_GE(outcome->coverage_pieces.size(), 2u);
  }
  // End-to-end: the SQL path must produce the exact answer either way
  // (from coverage, a single partition, or the source).
  auto q = sys.ExecuteQuery("SELECT * FROM Numbers WHERE key >= 150 AND key <= 450");
  ASSERT_TRUE(q.ok());
  auto idx = q->result.schema().FieldIndex("Numbers.key");
  ASSERT_TRUE(idx.ok());
  size_t expected = 0;
  for (const Row& row :
       (*sys.catalog().GetBaseData("Numbers"))->rows()) {
    const int64_t k = row[0].AsInt();
    if (k >= 150 && k <= 450) ++expected;
  }
  EXPECT_EQ(q->result.num_rows(), expected);
  EXPECT_FALSE(q->approximate);
}

TEST_F(CoverageSystemTest, AssemblesFromHighSimilarityBucketMates) {
  // Coverage candidates come from the query's own buckets, so they
  // must be LSH-similar to the query. Publish two partitions that are
  // each ~0.985-similar to the enclosing query (they collide with it
  // with high probability) but individually cover only ~98.5% of it —
  // together they cover 100%.
  int assembled = 0, single_full = 0;
  const int kSeeds = 10;
  for (uint64_t seed = 300; seed < 300 + kSeeds; ++seed) {
    auto sys = MakeSystem(/*coverage=*/true, seed);
    ASSERT_TRUE(
        sys.ExecuteQuery("SELECT * FROM Numbers WHERE key >= 100 AND key <= 297")
            .ok());
    ASSERT_TRUE(
        sys.ExecuteQuery("SELECT * FROM Numbers WHERE key >= 103 AND key <= 300")
            .ok());
    auto outcome =
        sys.LookupRange(PartitionKey{"Numbers", "key", Range(100, 300)});
    ASSERT_TRUE(outcome.ok());
    if (outcome->match && outcome->match->recall >= 1.0) ++single_full;
    if (outcome->coverage_recall >= 1.0) ++assembled;
  }
  // No single cached partition covers [100,300]; assembly should
  // complete it for a solid share of seeds (both pieces must collide;
  // the one-round bit-shuffle family is weaker than the ideal sigmoid).
  EXPECT_EQ(single_full, 0);
  EXPECT_GE(assembled, 3);
}

TEST_F(CoverageSystemTest, AssembledSqlAnswerIsExact) {
  // End-to-end over the same scenario: the enclosing query must return
  // the exact answer whether it was assembled or fetched from the
  // source.
  auto sys = MakeSystem(/*coverage=*/true, 304);
  ASSERT_TRUE(
      sys.ExecuteQuery("SELECT * FROM Numbers WHERE key >= 100 AND key <= 297")
          .ok());
  ASSERT_TRUE(
      sys.ExecuteQuery("SELECT * FROM Numbers WHERE key >= 103 AND key <= 300")
          .ok());
  auto outcome =
      sys.ExecuteQuery("SELECT * FROM Numbers WHERE key >= 100 AND key <= 300");
  ASSERT_TRUE(outcome.ok());
  size_t expected = 0;
  for (const Row& row : (*sys.catalog().GetBaseData("Numbers"))->rows()) {
    const int64_t k = row[0].AsInt();
    if (k >= 100 && k <= 300) ++expected;
  }
  EXPECT_EQ(outcome->result.num_rows(), expected);
  EXPECT_FALSE(outcome->approximate);
}

TEST_F(CoverageSystemTest, MetricsCountAssemblies) {
  auto sys = MakeSystem(/*coverage=*/true, 61);
  ASSERT_TRUE(
      sys.ExecuteQuery("SELECT * FROM Numbers WHERE key >= 0 AND key <= 200").ok());
  ASSERT_TRUE(
      sys.ExecuteQuery("SELECT * FROM Numbers WHERE key >= 180 AND key <= 400")
          .ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        sys.ExecuteQuery("SELECT * FROM Numbers WHERE key >= 50 AND key <= 350")
            .ok());
  }
  // At least some of the repeat queries should have assembled (the
  // exact count depends on LSH collisions).
  EXPECT_LE(sys.metrics().coverage_assemblies, 10u);
}

}  // namespace
}  // namespace p2prange
