#include "core/adaptive_padding.h"

#include <gtest/gtest.h>

#include "core/system.h"
#include "rel/generator.h"
#include "workload/range_workload.h"

namespace p2prange {
namespace {

TEST(AdaptivePaddingControllerTest, StartsAtInitial) {
  AdaptivePaddingController c;
  EXPECT_DOUBLE_EQ(c.Get("T.a"), c.config().initial);
}

TEST(AdaptivePaddingControllerTest, IncreasesOnIncompleteAnswers) {
  AdaptivePaddingController c;
  const double before = c.Get("T.a");
  c.Observe("T.a", 0.5);
  EXPECT_GT(c.Get("T.a"), before);
}

TEST(AdaptivePaddingControllerTest, DecaysOnCompleteAnswers) {
  AdaptivePaddingController c;
  c.Observe("T.a", 0.0);
  c.Observe("T.a", 0.0);
  const double high = c.Get("T.a");
  c.Observe("T.a", 1.0);
  EXPECT_LT(c.Get("T.a"), high);
}

TEST(AdaptivePaddingControllerTest, ClampsToBounds) {
  AdaptivePaddingConfig cfg;
  cfg.max = 0.3;
  AdaptivePaddingController c(cfg);
  for (int i = 0; i < 50; ++i) c.Observe("T.a", 0.0);
  EXPECT_DOUBLE_EQ(c.Get("T.a"), 0.3);
  for (int i = 0; i < 500; ++i) c.Observe("T.a", 1.0);
  EXPECT_GE(c.Get("T.a"), cfg.min);
  EXPECT_LT(c.Get("T.a"), 0.01);
}

TEST(AdaptivePaddingControllerTest, IncreaseFromZeroUsesStepFloor) {
  AdaptivePaddingConfig cfg;
  cfg.initial = 0.0;
  AdaptivePaddingController c(cfg);
  c.Observe("T.a", 0.2);
  EXPECT_DOUBLE_EQ(c.Get("T.a"), cfg.step_floor);
}

TEST(AdaptivePaddingControllerTest, ColumnsAreIndependent) {
  AdaptivePaddingController c;
  c.Observe("T.a", 0.0);
  c.Observe("T.a", 0.0);
  EXPECT_GT(c.Get("T.a"), c.Get("T.b"));
}

TEST(AdaptivePaddingSystemTest, PaddingRespondsToWorkload) {
  SystemConfig cfg;
  cfg.num_peers = 64;
  cfg.lsh = LshParams::Paper(HashFamilyType::kApproxMinwise, 19);
  cfg.criterion = MatchCriterion::kContainment;
  cfg.adaptive_padding = true;
  cfg.seed = 19;
  auto sys = RangeCacheSystem::Make(cfg, MakeNumbersCatalog(10, 0, 1000, 1));
  ASSERT_TRUE(sys.ok());
  // A fresh system misses constantly: padding must climb.
  UniformRangeGenerator gen(0, 1000, 20);
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(
        sys->LookupRange(PartitionKey{"Numbers", "key", gen.Next()}).ok());
  }
  const double after_misses = sys->padding_controller().Get("Numbers.key");
  EXPECT_GT(after_misses, cfg.adaptive.initial);
  // A long run of exact repeats: padding must decay again.
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        sys->LookupRange(PartitionKey{"Numbers", "key", Range(100, 200)}).ok());
  }
  EXPECT_LT(sys->padding_controller().Get("Numbers.key"), after_misses);
}

TEST(AdaptivePaddingSystemTest, AdaptiveBeatsNoPaddingOnCompletion) {
  auto run = [](bool adaptive) {
    SystemConfig cfg;
    cfg.num_peers = 64;
    cfg.lsh = LshParams::Paper(HashFamilyType::kApproxMinwise, 23);
    cfg.criterion = MatchCriterion::kContainment;
    cfg.adaptive_padding = adaptive;
    if (adaptive) cfg.adaptive.initial = 0.0;  // must earn its padding
    cfg.seed = 23;
    auto sys = RangeCacheSystem::Make(cfg, MakeNumbersCatalog(10, 0, 1000, 1));
    CHECK(sys.ok());
    UniformRangeGenerator gen(0, 1000, 24);
    size_t complete = 0, measured = 0;
    for (int i = 0; i < 2000; ++i) {
      auto outcome = sys->LookupRange(PartitionKey{"Numbers", "key", gen.Next()});
      CHECK(outcome.ok());
      if (i < 400) continue;
      ++measured;
      if (outcome->match && outcome->match->recall >= 1.0) ++complete;
    }
    return static_cast<double>(complete) / static_cast<double>(measured);
  };
  const double fixed_zero = run(false);
  const double adaptive = run(true);
  EXPECT_GT(adaptive, fixed_zero);
}

}  // namespace
}  // namespace p2prange
