#include "core/peer.h"

#include <gtest/gtest.h>

#include "rel/generator.h"

namespace p2prange {
namespace {

Peer MakePeer(uint16_t port = 7, size_t capacity = 0) {
  return Peer(chord::NodeInfo{123, NetAddress{1, port}}, capacity);
}

Relation SomeRows(int n) {
  Catalog cat = MakeNumbersCatalog(n, 0, 100, 3);
  return **cat.GetBaseData("Numbers");
}

TEST(PeerTest, IdentityAccessors) {
  Peer p = MakePeer(9);
  EXPECT_EQ(p.info().id, 123u);
  EXPECT_EQ(p.addr().port, 9u);
}

TEST(PeerTest, PartitionDataRoundTrip) {
  Peer p = MakePeer();
  const PartitionKey key{"Numbers", "key", Range(10, 20)};
  EXPECT_EQ(p.GetPartitionData(key), nullptr);
  p.StorePartitionData(key, SomeRows(5));
  const Relation* data = p.GetPartitionData(key);
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(data->num_rows(), 5u);
  EXPECT_EQ(p.num_materialized(), 1u);
  // Overwrite replaces.
  p.StorePartitionData(key, SomeRows(8));
  EXPECT_EQ(p.GetPartitionData(key)->num_rows(), 8u);
  EXPECT_EQ(p.num_materialized(), 1u);
  // Distinct keys are independent.
  EXPECT_EQ(p.GetPartitionData(PartitionKey{"Numbers", "key", Range(10, 21)}),
            nullptr);
}

TEST(PeerTest, EqDescriptorInsertFindRefresh) {
  Peer p = MakePeer();
  EXPECT_FALSE(p.FindEqDescriptor(42, "k").has_value());
  p.StoreEqDescriptor(42, EqDescriptor{"k", NetAddress{5, 5}});
  p.StoreEqDescriptor(42, EqDescriptor{"other", NetAddress{6, 6}});
  auto found = p.FindEqDescriptor(42, "k");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->holder.host, 5u);
  // Same key refreshes the holder instead of duplicating.
  p.StoreEqDescriptor(42, EqDescriptor{"k", NetAddress{9, 9}});
  found = p.FindEqDescriptor(42, "k");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->holder.host, 9u);
  // Different bucket id is a different namespace.
  EXPECT_FALSE(p.FindEqDescriptor(43, "k").has_value());
}

TEST(PeerTest, EqDataRoundTrip) {
  Peer p = MakePeer();
  EXPECT_EQ(p.GetEqData("q1"), nullptr);
  p.StoreEqData("q1", SomeRows(3));
  ASSERT_NE(p.GetEqData("q1"), nullptr);
  EXPECT_EQ(p.GetEqData("q1")->num_rows(), 3u);
}

TEST(PeerTest, StoreCapacityIsWiredThrough) {
  Peer p = MakePeer(7, /*capacity=*/2);
  for (uint32_t i = 0; i < 5; ++i) {
    p.store().Insert(i, PartitionDescriptor{
                            PartitionKey{"N", "k", Range(i, i + 1)},
                            NetAddress{1, 1}});
  }
  EXPECT_EQ(p.store().num_descriptors(), 2u);
  EXPECT_EQ(p.store().evictions(), 3u);
}

}  // namespace
}  // namespace p2prange
