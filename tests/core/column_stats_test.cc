#include "core/column_stats.h"

#include <gtest/gtest.h>

#include "core/system.h"
#include "rel/generator.h"
#include "workload/range_workload.h"

namespace p2prange {
namespace {

TEST(ColumnStatsTest, OptimisticUntilObserved) {
  ColumnStats stats;
  EXPECT_DOUBLE_EQ(stats.ExpectedRecall("T.a"), 1.0);
  EXPECT_EQ(stats.Probes("T.a"), 0u);
}

TEST(ColumnStatsTest, AlwaysProbesDuringExploration) {
  StatsPlanningConfig cfg;
  cfg.min_probes = 5;
  ColumnStats stats(cfg);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(stats.ShouldProbe("T.a"));
    stats.Observe("T.a", 0.0);
  }
  // After min_probes of zero recall, probing stops.
  EXPECT_FALSE(stats.ShouldProbe("T.a"));
}

TEST(ColumnStatsTest, EmaTracksObservations) {
  StatsPlanningConfig cfg;
  cfg.alpha = 0.5;
  ColumnStats stats(cfg);
  stats.Observe("T.a", 1.0);
  EXPECT_DOUBLE_EQ(stats.ExpectedRecall("T.a"), 1.0);
  stats.Observe("T.a", 0.0);
  EXPECT_DOUBLE_EQ(stats.ExpectedRecall("T.a"), 0.5);
  stats.Observe("T.a", 0.0);
  EXPECT_DOUBLE_EQ(stats.ExpectedRecall("T.a"), 0.25);
}

TEST(ColumnStatsTest, GoodColumnsKeepProbing) {
  StatsPlanningConfig cfg;
  cfg.min_probes = 3;
  ColumnStats stats(cfg);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(stats.ShouldProbe("T.a"));
    stats.Observe("T.a", 0.95);
  }
}

TEST(ColumnStatsTest, ExplorationResumesPeriodically) {
  StatsPlanningConfig cfg;
  cfg.min_probes = 2;
  cfg.explore_every = 4;
  ColumnStats stats(cfg);
  stats.Observe("T.a", 0.0);
  stats.Observe("T.a", 0.0);
  int probes = 0;
  for (int i = 0; i < 16; ++i) {
    if (stats.ShouldProbe("T.a")) ++probes;
  }
  EXPECT_EQ(probes, 4) << "every 4th decision explores";
}

TEST(ColumnStatsTest, RecoveryAfterCacheWarmsUp) {
  StatsPlanningConfig cfg;
  cfg.min_probes = 2;
  cfg.explore_every = 3;
  cfg.alpha = 0.5;
  ColumnStats stats(cfg);
  stats.Observe("T.a", 0.0);
  stats.Observe("T.a", 0.0);
  EXPECT_FALSE(stats.ShouldProbe("T.a"));
  // Exploration probes find a warm cache now:
  for (int i = 0; i < 12; ++i) {
    if (stats.ShouldProbe("T.a")) stats.Observe("T.a", 1.0);
  }
  EXPECT_GT(stats.ExpectedRecall("T.a"), cfg.skip_threshold);
  EXPECT_TRUE(stats.ShouldProbe("T.a")) << "column rehabilitated";
}

TEST(StatsPlanningSystemTest, SkipsProbesForColdColumnOnly) {
  Catalog cat = MakeMedicalCatalog();
  MedicalDataSpec spec;
  spec.num_patients = 200;
  CHECK(PopulateMedicalData(spec, &cat).ok());
  SystemConfig cfg;
  cfg.num_peers = 32;
  cfg.lsh = LshParams::Paper(HashFamilyType::kApproxMinwise, 33);
  cfg.criterion = MatchCriterion::kContainment;
  cfg.stats_planning = true;
  cfg.stats.min_probes = 10;
  cfg.seed = 33;
  auto sys = RangeCacheSystem::Make(cfg, std::move(cat));
  ASSERT_TRUE(sys.ok());

  // Hot column: the same age band over and over -> cache always hits
  // after the first -> probing continues.
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(
        sys->ExecuteQuery("SELECT * FROM Patient WHERE age >= 30 AND age <= 50")
            .ok());
  }
  EXPECT_EQ(sys->metrics().lookups_skipped, 0u);
  EXPECT_GT(sys->column_stats().ExpectedRecall("Patient.age"), 0.5);

  // Cold column: every query asks a fresh disjoint id band; the cache
  // never helps, so after min_probes the system stops probing (except
  // exploration).
  for (int i = 0; i < 40; ++i) {
    const int lo = (i * 20000) % 900000;
    const std::string sql = "SELECT * FROM Patient WHERE patient_id >= " +
                            std::to_string(lo) + " AND patient_id <= " +
                            std::to_string(lo + 1000);
    ASSERT_TRUE(sys->ExecuteQuery(sql).ok());
  }
  EXPECT_GT(sys->metrics().lookups_skipped, 15u);
  EXPECT_LT(sys->column_stats().ExpectedRecall("Patient.patient_id"),
            cfg.stats.skip_threshold);
  // Answers remain correct even when probes are skipped.
  auto outcome = sys->ExecuteQuery(
      "SELECT * FROM Patient WHERE patient_id >= 0 AND patient_id <= 1000000");
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->result.num_rows(), 200u);
}

}  // namespace
}  // namespace p2prange
