// Edge cases and error paths of the core system.
#include <gtest/gtest.h>

#include "core/system.h"
#include "rel/generator.h"

namespace p2prange {
namespace {

SystemConfig Cfg(uint64_t seed = 1) {
  SystemConfig cfg;
  cfg.num_peers = 8;
  cfg.lsh = LshParams::Paper(HashFamilyType::kApproxMinwise, seed);
  cfg.seed = seed;
  return cfg;
}

RangeCacheSystem MakeSys(SystemConfig cfg) {
  auto sys = RangeCacheSystem::Make(cfg, MakeNumbersCatalog(100, 0, 1000, 1));
  CHECK(sys.ok()) << sys.status();
  return std::move(sys).ValueUnsafe();
}

TEST(SystemEdgeTest, SourcePeerCannotLeave) {
  auto sys = MakeSys(Cfg());
  EXPECT_TRUE(sys.RemovePeer(sys.source_address()).IsInvalidArgument());
}

TEST(SystemEdgeTest, RemoveUnknownPeer) {
  auto sys = MakeSys(Cfg());
  EXPECT_TRUE(sys.RemovePeer(NetAddress{99, 99}).IsNotFound());
}

TEST(SystemEdgeTest, LookupOnUnknownRelationFailsWithPadding) {
  SystemConfig cfg = Cfg();
  cfg.padding = 0.2;  // padding needs the attribute domain
  auto sys = MakeSys(cfg);
  EXPECT_FALSE(
      sys.LookupRange(PartitionKey{"Nope", "key", Range(0, 10)}).ok());
}

TEST(SystemEdgeTest, SingleElementRangeWorks) {
  auto sys = MakeSys(Cfg(3));
  const PartitionKey key{"Numbers", "key", Range(500, 500)};
  ASSERT_TRUE(sys.LookupRange(key).ok());
  auto second = sys.LookupRange(key);
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second->match.has_value());
  EXPECT_TRUE(second->match->exact);
}

TEST(SystemEdgeTest, FullDomainRangeWorks) {
  auto sys = MakeSys(Cfg(5));
  const PartitionKey key{"Numbers", "key", Range(0, 1000)};
  ASSERT_TRUE(sys.LookupRange(key).ok());
  auto outcome =
      sys.ExecuteQuery("SELECT * FROM Numbers WHERE key >= 0 AND key <= 1000");
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->result.num_rows(), 100u);
}

TEST(SystemEdgeTest, PublishToUnknownHolderRejected) {
  auto sys = MakeSys(Cfg(7));
  EXPECT_TRUE(sys.PublishPartition(PartitionKey{"Numbers", "key", Range(0, 5)},
                                   NetAddress{99, 99})
                  .IsInvalidArgument());
  EXPECT_TRUE(sys.MaterializePartition(PartitionKey{"Numbers", "key", Range(0, 5)},
                                       NetAddress{99, 99})
                  .IsInvalidArgument());
}

TEST(SystemEdgeTest, MaterializeUnknownRelationIsNotFound) {
  auto sys = MakeSys(Cfg(9));
  auto holder = sys.ring().RandomAliveAddress();
  ASSERT_TRUE(holder.ok());
  EXPECT_TRUE(
      sys.MaterializePartition(PartitionKey{"Ghost", "key", Range(0, 5)}, *holder)
          .IsNotFound());
}

TEST(SystemEdgeTest, TwoPeerSystemEndToEnd) {
  SystemConfig cfg = Cfg(11);
  cfg.num_peers = 2;
  auto sys = MakeSys(cfg);
  for (int i = 0; i < 5; ++i) {
    auto outcome =
        sys.ExecuteQuery("SELECT * FROM Numbers WHERE key >= 100 AND key <= 300");
    ASSERT_TRUE(outcome.ok()) << outcome.status();
  }
  EXPECT_GT(sys.metrics().cache_fetches, 0u);
}

TEST(SystemEdgeTest, SelectStarWithoutPredicatesFetchesBase) {
  auto sys = MakeSys(Cfg(13));
  auto outcome = sys.ExecuteQuery("SELECT * FROM Numbers");
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->result.num_rows(), 100u);
  EXPECT_TRUE(outcome->leaves[0].from_source);
}

TEST(SystemEdgeTest, MetricsToStringMentionsEveryCounter) {
  auto sys = MakeSys(Cfg(15));
  const std::string s = sys.metrics().ToString();
  for (const char* field :
       {"range_lookups=", "exact_hits=", "approx_hits=", "misses=", "published=",
        "descriptors=", "eq_lookups=", "eq_hits=", "result_cache_lookups=",
        "lookups_skipped=", "source_fetches=", "cache_fetches=",
        "bytes_from_source=", "bytes_from_cache=", "chord_hops="}) {
    EXPECT_NE(s.find(field), std::string::npos) << field;
  }
}

}  // namespace
}  // namespace p2prange
