// The scenario-engine gauges on SystemMetrics: bytes_per_peer and
// event_queue_depth must appear in both render paths (ToString for
// logs, ToJson for benches), default to zero so plain
// RangeCacheSystem runs are unchanged, and survive Add-merging.
#include "core/metrics.h"

#include <gtest/gtest.h>

namespace p2prange {
namespace {

TEST(MetricsGaugesTest, DefaultsToZeroInBothRenderings) {
  const SystemMetrics m;
  EXPECT_NE(m.ToString().find("bytes_per_peer=0"), std::string::npos);
  EXPECT_NE(m.ToString().find("event_queue_depth=0"), std::string::npos);
  EXPECT_NE(m.ToJson().find("\"bytes_per_peer\":0"), std::string::npos);
  EXPECT_NE(m.ToJson().find("\"event_queue_depth\":0"), std::string::npos);
}

TEST(MetricsGaugesTest, ValuesRenderVerbatim) {
  SystemMetrics m;
  m.bytes_per_peer = 137;
  m.event_queue_depth = 100251;
  EXPECT_NE(m.ToString().find("bytes_per_peer=137"), std::string::npos);
  EXPECT_NE(m.ToJson().find("\"bytes_per_peer\":137"), std::string::npos);
  EXPECT_NE(m.ToJson().find("\"event_queue_depth\":100251"),
            std::string::npos);
}

TEST(MetricsGaugesTest, JsonParsesAsOneObjectPerField) {
  // Cheap structural check: balanced braces, every field quoted once.
  const std::string json = SystemMetrics{}.ToJson();
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'), 1);
  EXPECT_EQ(std::count(json.begin(), json.end(), '}'), 1);
  // The gauges are the last two integer fields (appended, so golden
  // METRICS strings from earlier PRs only ever gain a suffix).
  const size_t bpp = json.find("\"bytes_per_peer\"");
  const size_t depth = json.find("\"event_queue_depth\"");
  ASSERT_NE(bpp, std::string::npos);
  ASSERT_NE(depth, std::string::npos);
  EXPECT_LT(bpp, depth);
}

}  // namespace
}  // namespace p2prange
