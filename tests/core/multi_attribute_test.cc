// The §6 multi-attribute extension: selections on several ordinal
// attributes of one relation, resolved through per-attribute caches.
#include <gtest/gtest.h>

#include "core/system.h"
#include "query/executor.h"
#include "query/parser.h"
#include "rel/generator.h"

namespace p2prange {
namespace {

TEST(MultiAttributePlanTest, DisabledByDefault) {
  const Catalog cat = MakeMedicalCatalog();
  auto stmt = ParseSelect(
      "SELECT * FROM Patient WHERE age > 30 AND patient_id < 100");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(BuildPlan(*stmt, cat).status().IsInvalidArgument());
}

TEST(MultiAttributePlanTest, EnabledSplitsPrimaryAndSecondary) {
  const Catalog cat = MakeMedicalCatalog();
  auto stmt = ParseSelect(
      "SELECT * FROM Patient WHERE age > 30 AND patient_id < 100 AND age < 60");
  ASSERT_TRUE(stmt.ok());
  PlannerOptions opts;
  opts.allow_multi_attribute = true;
  auto plan = BuildPlan(*stmt, cat, opts);
  ASSERT_TRUE(plan.ok()) << plan.status();
  const TableSelection& leaf = plan->leaves[0];
  ASSERT_TRUE(leaf.range.has_value());
  EXPECT_EQ(leaf.range->attribute, "age");  // first mentioned = primary
  EXPECT_EQ(leaf.range->lo, 31);
  EXPECT_EQ(leaf.range->hi, 59);  // both age bounds folded together
  ASSERT_EQ(leaf.secondary_ranges.size(), 1u);
  EXPECT_EQ(leaf.secondary_ranges[0].attribute, "patient_id");
  EXPECT_EQ(leaf.secondary_ranges[0].hi, 99);
  EXPECT_EQ(leaf.AllRanges().size(), 2u);
}

TEST(MultiAttributePlanTest, ToStringShowsAllRanges) {
  const Catalog cat = MakeMedicalCatalog();
  auto stmt = ParseSelect(
      "SELECT * FROM Patient WHERE age > 30 AND patient_id < 100");
  ASSERT_TRUE(stmt.ok());
  PlannerOptions opts;
  opts.allow_multi_attribute = true;
  auto plan = BuildPlan(*stmt, cat, opts);
  ASSERT_TRUE(plan.ok());
  const std::string s = plan->ToString();
  EXPECT_NE(s.find("age in 31"), std::string::npos);
  EXPECT_NE(s.find("patient_id in 0..99"), std::string::npos);
}

TEST(MultiAttributeExecutorTest, AppliesAllRanges) {
  Catalog cat = MakeMedicalCatalog();
  MedicalDataSpec spec;
  spec.num_patients = 400;
  ASSERT_TRUE(PopulateMedicalData(spec, &cat).ok());
  auto stmt = ParseSelect(
      "SELECT * FROM Patient WHERE age BETWEEN 20 AND 60 AND "
      "patient_id BETWEEN 100 AND 250");
  ASSERT_TRUE(stmt.ok());
  PlannerOptions opts;
  opts.allow_multi_attribute = true;
  auto plan = BuildPlan(*stmt, cat, opts);
  ASSERT_TRUE(plan.ok());
  std::map<std::string, Relation> inputs;
  inputs.emplace("Patient", **cat.GetBaseData("Patient"));
  auto result = ExecutePlan(*plan, inputs);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_GT(result->num_rows(), 0u);
  for (const Row& row : result->rows()) {
    EXPECT_GE(row[0].AsInt(), 100);
    EXPECT_LE(row[0].AsInt(), 250);
    EXPECT_GE(row[2].AsInt(), 20);
    EXPECT_LE(row[2].AsInt(), 60);
  }
}

class MultiAttributeE2eTest : public ::testing::Test {
 protected:
  MultiAttributeE2eTest() {
    catalog_ = MakeMedicalCatalog();
    MedicalDataSpec spec;
    spec.num_patients = 500;
    CHECK(PopulateMedicalData(spec, &catalog_).ok());
  }

  RangeCacheSystem MakeSystem(uint64_t seed) {
    SystemConfig cfg;
    cfg.num_peers = 32;
    cfg.lsh = LshParams::Paper(HashFamilyType::kApproxMinwise, seed);
    cfg.criterion = MatchCriterion::kContainment;
    cfg.multi_attribute = true;
    cfg.seed = seed;
    auto sys = RangeCacheSystem::Make(cfg, catalog_);
    CHECK(sys.ok()) << sys.status();
    return std::move(sys).ValueUnsafe();
  }

  size_t ReferenceCount(const std::string& sql) {
    auto stmt = ParseSelect(sql);
    CHECK(stmt.ok());
    PlannerOptions opts;
    opts.allow_multi_attribute = true;
    auto plan = BuildPlan(*stmt, catalog_, opts);
    CHECK(plan.ok()) << plan.status();
    std::map<std::string, Relation> inputs;
    for (const TableSelection& leaf : plan->leaves) {
      inputs.emplace(leaf.table, **catalog_.GetBaseData(leaf.table));
    }
    auto result = ExecutePlan(*plan, inputs);
    CHECK(result.ok());
    return result->num_rows();
  }

  Catalog catalog_;
};

TEST_F(MultiAttributeE2eTest, ColdQueryMatchesReference) {
  auto sys = MakeSystem(61);
  const std::string sql =
      "SELECT * FROM Patient WHERE age BETWEEN 25 AND 65 AND "
      "patient_id BETWEEN 50 AND 400";
  auto outcome = sys.ExecuteQuery(sql);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->result.num_rows(), ReferenceCount(sql));
  EXPECT_FALSE(outcome->approximate);
  EXPECT_TRUE(outcome->leaves[0].from_source);
}

TEST_F(MultiAttributeE2eTest, WarmQueryServedFromEitherAttributeCache) {
  auto sys = MakeSystem(67);
  const std::string sql =
      "SELECT * FROM Patient WHERE age BETWEEN 25 AND 65 AND "
      "patient_id BETWEEN 50 AND 400";
  ASSERT_TRUE(sys.ExecuteQuery(sql).ok());
  const uint64_t source_before = sys.metrics().source_fetches;
  auto warm = sys.ExecuteQuery(sql);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->leaves[0].used_cache);
  EXPECT_EQ(sys.metrics().source_fetches, source_before);
  EXPECT_EQ(warm->result.num_rows(), ReferenceCount(sql));
}

TEST_F(MultiAttributeE2eTest, SecondaryAttributeCacheCanServeTheLeaf) {
  auto sys = MakeSystem(71);
  // Warm the patient_id cache with a single-attribute query.
  ASSERT_TRUE(
      sys.ExecuteQuery("SELECT * FROM Patient WHERE patient_id BETWEEN 50 AND 400")
          .ok());
  // A multi-attribute query mentioning age FIRST (so age is the
  // primary attribute and patient_id only a secondary): the cached
  // patient_id partition fully covers its selection, so the leaf is
  // served from the *secondary* attribute's cache even though no age
  // partition exists.
  const std::string sql =
      "SELECT * FROM Patient WHERE age BETWEEN 25 AND 65 AND "
      "patient_id BETWEEN 50 AND 400";
  auto outcome = sys.ExecuteQuery(sql);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->leaves[0].used_cache);
  EXPECT_EQ(outcome->result.num_rows(), ReferenceCount(sql));
  ASSERT_TRUE(outcome->leaves[0].lookup.has_value());
  EXPECT_EQ(outcome->leaves[0].lookup->match->matched.attribute, "patient_id");
}

TEST_F(MultiAttributeE2eTest, JoinQueryWithTwoMultiAttributeLeaves) {
  auto sys = MakeSystem(73);
  const std::string sql =
      "SELECT Patient.name FROM Patient, Diagnosis "
      "WHERE age BETWEEN 20 AND 70 AND Patient.patient_id BETWEEN 0 AND 450 "
      "AND diagnosis = 'Diabetes' "
      "AND Patient.patient_id = Diagnosis.patient_id";
  auto cold = sys.ExecuteQuery(sql);
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_EQ(cold->result.num_rows(), ReferenceCount(sql));
  auto warm = sys.ExecuteQuery(sql);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->result.num_rows(), ReferenceCount(sql));
}

}  // namespace
}  // namespace p2prange
