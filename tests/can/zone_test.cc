#include "can/zone.h"

#include <gtest/gtest.h>

namespace p2prange {
namespace can {
namespace {

constexpr uint32_t kHalf = 0x80000000u;
constexpr uint32_t kQuarter = 0x40000000u;

Point P2(uint32_t x, uint32_t y) {
  Point p;
  p.coords[0] = x;
  p.coords[1] = y;
  return p;
}

TEST(ZoneTest, RootCoversEverything) {
  const Zone root = Zone::Root(2);
  EXPECT_DOUBLE_EQ(root.Volume(), 1.0);
  EXPECT_TRUE(root.Contains(P2(0, 0)));
  EXPECT_TRUE(root.Contains(P2(0xFFFFFFFF, 0xFFFFFFFF)));
  EXPECT_TRUE(root.Contains(P2(kHalf, kQuarter)));
}

TEST(ZoneTest, SplitHalvesTheVolume) {
  const Zone root = Zone::Root(2);
  auto [lower, upper] = root.Split(0);
  EXPECT_DOUBLE_EQ(lower.Volume(), 0.5);
  EXPECT_DOUBLE_EQ(upper.Volume(), 0.5);
  EXPECT_TRUE(lower.Contains(P2(0, 0)));
  EXPECT_FALSE(lower.Contains(P2(kHalf, 0)));
  EXPECT_TRUE(upper.Contains(P2(kHalf, 0)));
  EXPECT_FALSE(upper.Contains(P2(kHalf - 1, 0)));
}

TEST(ZoneTest, SplitBoundariesAreExclusive) {
  auto [lower, upper] = Zone::Root(1).Split(0);
  // Every point is in exactly one half.
  for (uint32_t x : {0u, kHalf - 1, kHalf, kHalf + 1, 0xFFFFFFFFu}) {
    Point p;
    p.coords[0] = x;
    EXPECT_NE(lower.Contains(p), upper.Contains(p)) << x;
  }
}

TEST(ZoneTest, WidestDimAfterSplits) {
  const Zone root = Zone::Root(3);
  EXPECT_EQ(root.WidestDim(), 0);  // ties -> lowest index
  auto [a, b] = root.Split(0);
  EXPECT_EQ(a.WidestDim(), 1);
  auto [c, d] = a.Split(1);
  EXPECT_EQ(c.WidestDim(), 2);
}

TEST(ZoneTest, NeighborsShareAFace) {
  auto [left, right] = Zone::Root(2).Split(0);
  EXPECT_TRUE(left.IsNeighbor(right));
  EXPECT_TRUE(right.IsNeighbor(left));
  // Quarter zones: diagonal pieces are NOT neighbors (corner contact).
  auto [ll, lu] = left.Split(1);
  auto [rl, ru] = right.Split(1);
  EXPECT_TRUE(ll.IsNeighbor(rl));
  EXPECT_TRUE(ll.IsNeighbor(lu));
  EXPECT_FALSE(ll.IsNeighbor(ru)) << "diagonal corner contact only";
  EXPECT_FALSE(lu.IsNeighbor(rl));
}

TEST(ZoneTest, NeighborsWrapAroundTheTorus) {
  // Left edge zone and right edge zone abut through the wrap.
  auto [left, right] = Zone::Root(2).Split(0);
  auto [leftmost, mid_l] = left.Split(0);
  auto [mid_r, rightmost] = right.Split(0);
  EXPECT_TRUE(leftmost.IsNeighbor(rightmost));
  EXPECT_FALSE(leftmost.IsNeighbor(mid_r));
}

TEST(ZoneTest, SelfAndContainedAreNotNeighbors) {
  const Zone root = Zone::Root(2);
  auto [left, right] = root.Split(0);
  EXPECT_FALSE(left.IsNeighbor(left));
  EXPECT_FALSE(root.IsNeighbor(left)) << "overlapping zones are not neighbors";
}

TEST(ZoneTest, MergeRestoresTheParent) {
  const Zone root = Zone::Root(2);
  auto [left, right] = root.Split(0);
  int dim = -1;
  ASSERT_TRUE(left.CanMergeWith(right, &dim));
  EXPECT_EQ(dim, 0);
  EXPECT_EQ(left.MergeWith(right), root);
  EXPECT_EQ(right.MergeWith(left), root);
}

TEST(ZoneTest, MergeRejectsNonSiblings) {
  auto [left, right] = Zone::Root(2).Split(0);
  auto [ll, lu] = left.Split(1);
  // ll and right abut but have different extents along dim 1... no:
  // right spans the full dim-1 axis while ll spans half of it.
  EXPECT_FALSE(ll.CanMergeWith(right, nullptr));
  // Diagonal pieces never merge.
  auto [rl, ru] = right.Split(1);
  EXPECT_FALSE(ll.CanMergeWith(ru, nullptr));
  // Identical zones never merge.
  EXPECT_FALSE(ll.CanMergeWith(ll, nullptr));
}

TEST(ZoneTest, MergeDoesNotCrossTheWrapBoundary) {
  auto [left, right] = Zone::Root(1).Split(0);
  auto [leftmost, l2] = left.Split(0);
  auto [r2, rightmost] = right.Split(0);
  // Adjacent through the wrap, but the merged box would wrap: refuse.
  EXPECT_FALSE(leftmost.CanMergeWith(rightmost, nullptr));
}

TEST(ZoneTest, DistanceZeroInside) {
  auto [left, right] = Zone::Root(2).Split(0);
  EXPECT_DOUBLE_EQ(left.DistanceTo(P2(1, 1)), 0.0);
  EXPECT_GT(left.DistanceTo(P2(kHalf + kQuarter, 0)), 0.0);
}

TEST(ZoneTest, DistanceUsesTorusMetric) {
  // Zone occupying [0, 0.25) in 1-D; a point at 0.9 is 0.1 away around
  // the wrap, not 0.65 away.
  auto [left, right] = Zone::Root(1).Split(0);
  auto [zone, rest] = left.Split(0);  // [0, 0.25)
  Point p;
  p.coords[0] = static_cast<uint32_t>(0.9 * 4294967296.0);
  EXPECT_NEAR(zone.DistanceTo(p), 0.1, 1e-6);
}

TEST(ZoneTest, VolumeComposesOverSplits) {
  Zone z = Zone::Root(3);
  double expected = 1.0;
  for (int i = 0; i < 12; ++i) {
    auto [a, b] = z.Split(z.WidestDim());
    z = a;
    expected /= 2;
    EXPECT_DOUBLE_EQ(z.Volume(), expected);
  }
}

TEST(IdentifierToPointTest, DeterministicAndSpread) {
  const Point p1 = IdentifierToPoint(12345, 3);
  const Point p2 = IdentifierToPoint(12345, 3);
  EXPECT_EQ(p1, p2);
  const Point q = IdentifierToPoint(12346, 3);
  EXPECT_NE(p1, q);
  // Coordinates of nearby identifiers decorrelate (SplitMix64).
  int close = 0;
  for (uint32_t id = 0; id < 100; ++id) {
    const Point a = IdentifierToPoint(id, 2);
    const Point b = IdentifierToPoint(id + 1, 2);
    if (std::abs(static_cast<int64_t>(a.coords[0]) - b.coords[0]) < (1 << 24)) {
      ++close;
    }
  }
  EXPECT_LT(close, 10);
}

}  // namespace
}  // namespace can
}  // namespace p2prange
