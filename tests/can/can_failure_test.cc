// CAN failure-path edges: abrupt Fail leaves zones orphaned until
// TakeoverDeadZones reassigns them, Recover either resumes the old
// zones or re-joins through the protocol, and split/merge keeps exact
// fixed-point boundaries down to width-2 slivers and across the torus
// wrap. These are the paths the scenario engine's churn regimes lean
// on, so their edge behavior is pinned here against the real
// substrate.
#include <gtest/gtest.h>

#include <set>

#include "can/network.h"

namespace p2prange {
namespace can {
namespace {

CanNetwork MakeNet(size_t n, uint64_t seed = 21, int dims = 2) {
  CanConfig cfg;
  cfg.dims = dims;
  auto net = CanNetwork::Make(n, seed, cfg);
  EXPECT_TRUE(net.ok()) << net.status();
  return std::move(net).ValueUnsafe();
}

TEST(CanFailureTest, FailedZonesStayOrphanedUntilTakeover) {
  CanNetwork net = MakeNet(16);
  auto victim = net.RandomAliveAddress();
  ASSERT_TRUE(victim.ok());
  const size_t victim_zones = net.node(*victim)->zones().size();
  ASSERT_GE(victim_zones, 1u);

  ASSERT_TRUE(net.Fail(*victim).ok());
  EXPECT_EQ(net.num_alive(), 15u);
  // The dead node still nominally holds its zones (CAN's takeover
  // timer has not fired): the oracle cannot resolve points inside.
  const Point inside = [&] {
    const Zone& z = net.node(*victim)->zones().front();
    Point p;
    for (int d = 0; d < z.dims(); ++d) {
      p.coords[d] = z.lo(d) + static_cast<uint32_t>(z.width(d) / 2);
    }
    return p;
  }();
  EXPECT_FALSE(net.FindOwnerOracle(inside).ok());

  const size_t transferred = net.TakeoverDeadZones();
  EXPECT_GE(transferred, victim_zones);
  auto owner = net.FindOwnerOracle(inside);
  ASSERT_TRUE(owner.ok()) << owner.status();
  EXPECT_NE(*owner, *victim);
  EXPECT_TRUE(net.CheckInvariants().ok());
  // Idempotent once everything is reassigned.
  EXPECT_EQ(net.TakeoverDeadZones(), 0u);
}

TEST(CanFailureTest, RecoverBeforeTakeoverResumesZones) {
  CanNetwork net = MakeNet(12);
  auto victim = net.RandomAliveAddress();
  ASSERT_TRUE(victim.ok());
  const std::vector<Zone> before = net.node(*victim)->zones();
  ASSERT_TRUE(net.Fail(*victim).ok());
  ASSERT_TRUE(net.Recover(*victim).ok());
  EXPECT_EQ(net.num_alive(), 12u);
  EXPECT_EQ(net.node(*victim)->zones(), before);
  EXPECT_TRUE(net.CheckInvariants().ok());
}

TEST(CanFailureTest, RecoverAfterTakeoverRejoinsThroughProtocol) {
  CanNetwork net = MakeNet(12);
  auto victim = net.RandomAliveAddress();
  ASSERT_TRUE(victim.ok());
  ASSERT_TRUE(net.Fail(*victim).ok());
  ASSERT_GT(net.TakeoverDeadZones(), 0u);
  ASSERT_TRUE(net.Recover(*victim).ok());
  EXPECT_EQ(net.num_alive(), 12u);
  // Re-joined with the same address and a fresh (split) zone.
  ASSERT_FALSE(net.node(*victim)->zones().empty());
  EXPECT_TRUE(net.CheckInvariants().ok());
}

TEST(CanFailureTest, FailValidation) {
  CanNetwork net = MakeNet(3);
  auto victim = net.RandomAliveAddress();
  ASSERT_TRUE(victim.ok());
  ASSERT_TRUE(net.Fail(*victim).ok());
  EXPECT_FALSE(net.Fail(*victim).ok());  // already dead
  EXPECT_FALSE(net.Fail(NetAddress{}).ok());
  EXPECT_FALSE(net.Recover(NetAddress{}).ok());
}

TEST(CanFailureTest, MassFailureWithTakeoverKeepsSpaceTiled) {
  CanNetwork net = MakeNet(32, 9);
  std::set<std::string> downed;
  for (int i = 0; i < 12; ++i) {
    auto victim = net.RandomAliveAddress();
    ASSERT_TRUE(victim.ok());
    ASSERT_TRUE(net.Fail(*victim).ok());
    downed.insert(victim->ToString());
  }
  net.TakeoverDeadZones();
  EXPECT_EQ(net.num_alive(), 32u - downed.size());
  EXPECT_TRUE(net.CheckInvariants().ok());
  // Every identifier resolves to a live owner again.
  for (uint32_t i = 0; i < 64; ++i) {
    auto owner = net.FindOwnerOracle(IdentifierToPoint(i * 0x9E3779B9u, 2));
    ASSERT_TRUE(owner.ok()) << owner.status();
    EXPECT_EQ(downed.count(owner->ToString()), 0u);
  }
}

TEST(CanZoneEdgeTest, SplitToMinimumWidthSlivers) {
  // A width-2 axis still splits exactly once more; the halves are
  // width-1 and merge back losslessly.
  Zone z = Zone::Root(1);
  for (int i = 0; i < 31; ++i) z = z.Split(0).first;
  EXPECT_EQ(z.width(0), 2u);
  auto [lo, hi] = z.Split(0);
  EXPECT_EQ(lo.width(0), 1u);
  EXPECT_EQ(hi.width(0), 1u);
  EXPECT_EQ(hi.lo(0), lo.lo(0) + 1);
  int dim = -1;
  ASSERT_TRUE(lo.CanMergeWith(hi, &dim));
  EXPECT_EQ(dim, 0);
  EXPECT_EQ(lo.MergeWith(hi), z);
}

TEST(CanZoneEdgeTest, WraparoundNeighborsAcrossHighBoundary) {
  // Zones touching coordinate 2^32 - 1 wrap to neighbors at 0 in the
  // same dimension — the torus edge the scenario grids exercise.
  auto [left, right] = Zone::Root(2).Split(0);
  auto [ll, lr] = left.Split(0);
  auto [rl, rr] = right.Split(0);
  EXPECT_TRUE(rr.IsNeighbor(ll));  // wraps past 2^32
  EXPECT_TRUE(ll.IsNeighbor(rr));
  EXPECT_FALSE(rr.IsNeighbor(lr));  // interior, not adjacent
  int dim = -1;
  EXPECT_FALSE(rr.CanMergeWith(ll, &dim));  // adjacency via wrap: no merge
}

TEST(CanZoneEdgeTest, DistanceWrapsAtHighEdge) {
  auto [left, right] = Zone::Root(1).Split(0);
  // Point just past the torus wrap (coordinate 1) is nearly on top of
  // `right`'s high edge going the wrapped way.
  Point p;
  p.coords[0] = 1;
  EXPECT_LT(right.DistanceTo(p), 1e-6);
  EXPECT_EQ(left.DistanceTo(p), 0.0);  // contained
}

TEST(CanZoneEdgeTest, MaxDimsSplitCycle) {
  Zone z = Zone::Root(kMaxDims);
  // One split per dimension, widest-first, visits every axis once.
  std::set<int> split_dims;
  for (int i = 0; i < kMaxDims; ++i) {
    const int d = z.WidestDim();
    split_dims.insert(d);
    z = z.Split(d).first;
  }
  EXPECT_EQ(split_dims.size(), static_cast<size_t>(kMaxDims));
  EXPECT_NEAR(z.Volume(), 1.0 / 256.0, 1e-12);
}

}  // namespace
}  // namespace can
}  // namespace p2prange
