#include "can/network.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "stats/summary.h"

namespace p2prange {
namespace can {
namespace {

TEST(CanNetworkTest, MakeRejectsBadConfigs) {
  EXPECT_TRUE(CanNetwork::Make(0, 1).status().IsInvalidArgument());
  CanConfig cfg;
  cfg.dims = 0;
  EXPECT_TRUE(CanNetwork::Make(4, 1, cfg).status().IsInvalidArgument());
  cfg.dims = kMaxDims + 1;
  EXPECT_TRUE(CanNetwork::Make(4, 1, cfg).status().IsInvalidArgument());
}

TEST(CanNetworkTest, SingleNodeOwnsEverything) {
  auto net = CanNetwork::Make(1, 3);
  ASSERT_TRUE(net.ok());
  ASSERT_TRUE(net->CheckInvariants().ok());
  auto origin = net->RandomAliveAddress();
  ASSERT_TRUE(origin.ok());
  auto result = net->Lookup(*origin, 0xCAFEBABE);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->owner, *origin);
  EXPECT_EQ(result->hops, 0);
}

class CanSizeTest : public ::testing::TestWithParam<size_t> {};

INSTANTIATE_TEST_SUITE_P(Sizes, CanSizeTest, ::testing::Values(2, 5, 16, 64, 200));

TEST_P(CanSizeTest, InvariantsHoldAfterGrowth) {
  auto net = CanNetwork::Make(GetParam(), 7);
  ASSERT_TRUE(net.ok()) << net.status();
  EXPECT_EQ(net->num_alive(), GetParam());
  EXPECT_TRUE(net->CheckInvariants().ok()) << net->CheckInvariants();
}

TEST_P(CanSizeTest, LookupsAgreeWithOracle) {
  auto net = CanNetwork::Make(GetParam(), 11);
  ASSERT_TRUE(net.ok());
  Rng rng(13);
  for (int trial = 0; trial < 60; ++trial) {
    const uint32_t id = rng.Next32();
    auto origin = net->RandomAliveAddress();
    ASSERT_TRUE(origin.ok());
    auto result = net->Lookup(*origin, id);
    ASSERT_TRUE(result.ok()) << result.status();
    auto oracle = net->FindOwnerOracle(IdentifierToPoint(id, net->config().dims));
    ASSERT_TRUE(oracle.ok());
    EXPECT_EQ(result->owner, *oracle);
  }
}

TEST(CanNetworkTest, PathLengthScalesAsDTimesRootN) {
  // CAN routing is O(d * n^(1/d)); with d=2 and n=256 expect means in
  // the ~(1/2)*d*n^(1/d) = 16-hop ballpark, far above log2(n).
  auto net = CanNetwork::Make(256, 17);
  ASSERT_TRUE(net.ok());
  Rng rng(19);
  Summary hops;
  for (int i = 0; i < 300; ++i) {
    auto origin = net->RandomAliveAddress();
    ASSERT_TRUE(origin.ok());
    auto result = net->Lookup(*origin, rng.Next32());
    ASSERT_TRUE(result.ok());
    hops.AddCount(static_cast<uint64_t>(result->hops));
  }
  const double expected = 0.5 * 2.0 * std::sqrt(256.0);  // ~16
  EXPECT_GT(hops.Mean(), expected * 0.3);
  EXPECT_LT(hops.Mean(), expected * 2.0);
}

TEST(CanNetworkTest, HigherDimensionalityShortensRoutes) {
  Summary hops2, hops4;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    CanConfig d2;
    d2.dims = 2;
    CanConfig d4;
    d4.dims = 4;
    auto net2 = CanNetwork::Make(256, seed, d2);
    auto net4 = CanNetwork::Make(256, seed, d4);
    ASSERT_TRUE(net2.ok());
    ASSERT_TRUE(net4.ok());
    Rng rng(seed * 100);
    for (int i = 0; i < 100; ++i) {
      const uint32_t id = rng.Next32();
      auto o2 = net2->RandomAliveAddress();
      auto o4 = net4->RandomAliveAddress();
      ASSERT_TRUE(o2.ok());
      ASSERT_TRUE(o4.ok());
      auto r2 = net2->Lookup(*o2, id);
      auto r4 = net4->Lookup(*o4, id);
      ASSERT_TRUE(r2.ok());
      ASSERT_TRUE(r4.ok());
      hops2.AddCount(static_cast<uint64_t>(r2->hops));
      hops4.AddCount(static_cast<uint64_t>(r4->hops));
    }
  }
  EXPECT_LT(hops4.Mean(), hops2.Mean());
}

TEST(CanNetworkTest, NeighborCountsGrowWithDimension) {
  CanConfig d2;
  d2.dims = 2;
  CanConfig d6;
  d6.dims = 6;
  auto net2 = CanNetwork::Make(128, 23, d2);
  auto net6 = CanNetwork::Make(128, 23, d6);
  ASSERT_TRUE(net2.ok());
  ASSERT_TRUE(net6.ok());
  Summary n2, n6;
  for (size_t c : net2->NeighborCounts()) n2.AddCount(c);
  for (size_t c : net6->NeighborCounts()) n6.AddCount(c);
  EXPECT_GT(n6.Mean(), n2.Mean());
  // CAN's per-node state is O(d): ~2d for balanced zones.
  EXPECT_GT(n2.Mean(), 2.0);
}

TEST(CanNetworkTest, VolumesTileAndAreBalanced) {
  auto net = CanNetwork::Make(128, 29);
  ASSERT_TRUE(net.ok());
  const auto volumes = net->Volumes();
  ASSERT_EQ(volumes.size(), 128u);
  double total = 0;
  for (double v : volumes) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Random splitting gives volumes within a few binary orders of the
  // mean (CAN's known imbalance without load-aware joins).
  for (double v : volumes) {
    EXPECT_GT(v, 1.0 / 128.0 / 64.0);
    EXPECT_LT(v, 64.0 / 128.0);
  }
}

TEST(CanNetworkTest, LeaveMergesOrHandsOverZones) {
  auto net = CanNetwork::Make(32, 31);
  ASSERT_TRUE(net.ok());
  Rng rng(37);
  for (int round = 0; round < 10; ++round) {
    auto victim = net->RandomAliveAddress();
    ASSERT_TRUE(victim.ok());
    if (net->num_alive() == 1) break;
    ASSERT_TRUE(net->Leave(*victim).ok());
    ASSERT_TRUE(net->CheckInvariants().ok()) << net->CheckInvariants();
  }
  EXPECT_EQ(net->num_alive(), 22u);
  // Lookups still resolve after the departures.
  for (int i = 0; i < 40; ++i) {
    auto origin = net->RandomAliveAddress();
    ASSERT_TRUE(origin.ok());
    auto result = net->Lookup(*origin, rng.Next32());
    ASSERT_TRUE(result.ok()) << result.status();
  }
}

TEST(CanNetworkTest, LeaveRejectsLastNodeAndDeadNodes) {
  auto net = CanNetwork::Make(2, 41);
  ASSERT_TRUE(net.ok());
  auto a = net->RandomAliveAddress();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(net->Leave(*a).ok());
  EXPECT_TRUE(net->Leave(*a).IsInvalidArgument());
  auto last = net->RandomAliveAddress();
  ASSERT_TRUE(last.ok());
  EXPECT_TRUE(net->Leave(*last).IsInvalidArgument());
}

TEST(CanNetworkTest, ChurnStress) {
  auto net = CanNetwork::Make(48, 43);
  ASSERT_TRUE(net.ok());
  Rng rng(47);
  for (int round = 0; round < 20; ++round) {
    if (rng.NextBernoulli(0.5)) {
      auto added = net->AddNode();
      ASSERT_TRUE(added.ok()) << added.status();
    } else if (net->num_alive() > 2) {
      auto victim = net->RandomAliveAddress();
      ASSERT_TRUE(victim.ok());
      ASSERT_TRUE(net->Leave(*victim).ok());
    }
    ASSERT_TRUE(net->CheckInvariants().ok())
        << "round " << round << ": " << net->CheckInvariants();
  }
}

TEST(CanNetworkTest, LookupFromDeadOriginFails) {
  auto net = CanNetwork::Make(4, 53);
  ASSERT_TRUE(net.ok());
  auto victim = net->RandomAliveAddress();
  ASSERT_TRUE(victim.ok());
  ASSERT_TRUE(net->Leave(*victim).ok());
  EXPECT_TRUE(net->Lookup(*victim, 1).status().IsInvalidArgument());
}

}  // namespace
}  // namespace can
}  // namespace p2prange
