#include "chord/node.h"

#include <gtest/gtest.h>

namespace p2prange {
namespace chord {
namespace {

NodeInfo Info(ChordId id) {
  return NodeInfo{id, NetAddress{id, static_cast<uint16_t>(id & 0xFFFF)}};
}

TEST(FingerTableTest, EntriesStartUnset) {
  FingerTable ft;
  for (int i = 0; i < FingerTable::size(); ++i) {
    EXPECT_FALSE(ft.entry(i).has_value());
  }
}

TEST(FingerTableTest, SetClearRoundTrip) {
  FingerTable ft;
  ft.set_entry(3, Info(77));
  ASSERT_TRUE(ft.entry(3).has_value());
  EXPECT_EQ(ft.entry(3)->id, 77u);
  ft.clear_entry(3);
  EXPECT_FALSE(ft.entry(3).has_value());
}

TEST(ChordNodeTest, SuccessorDefaultsToSelf) {
  ChordNode n(100, NetAddress{1, 1});
  EXPECT_EQ(n.successor(), n.info());
}

TEST(ChordNodeTest, OwnsIdUsesPredecessor) {
  ChordNode n(1000, NetAddress{1, 1});
  n.set_predecessor(Info(500));
  EXPECT_TRUE(n.OwnsId(1000));
  EXPECT_TRUE(n.OwnsId(501));
  EXPECT_TRUE(n.OwnsId(750));
  EXPECT_FALSE(n.OwnsId(500));
  EXPECT_FALSE(n.OwnsId(1001));
  EXPECT_FALSE(n.OwnsId(0));
}

TEST(ChordNodeTest, OwnsIdWrapsAroundZero) {
  ChordNode n(10, NetAddress{1, 1});
  n.set_predecessor(Info(0xFFFFFF00));
  EXPECT_TRUE(n.OwnsId(0));
  EXPECT_TRUE(n.OwnsId(10));
  EXPECT_TRUE(n.OwnsId(0xFFFFFFFF));
  EXPECT_FALSE(n.OwnsId(11));
  EXPECT_FALSE(n.OwnsId(0xFFFFFF00));
}

TEST(ChordNodeTest, ClosestPrecedingPicksLargestBeforeTarget) {
  ChordNode n(0, NetAddress{0, 0});
  n.mutable_fingers().set_entry(4, Info(16));
  n.mutable_fingers().set_entry(7, Info(128));
  n.mutable_fingers().set_entry(10, Info(1024));
  auto best = n.ClosestPrecedingNode(/*target=*/500, nullptr);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->id, 128u);  // 1024 overshoots, 128 is the closest below
}

TEST(ChordNodeTest, ClosestPrecedingConsidersSuccessorList) {
  ChordNode n(0, NetAddress{0, 0});
  n.mutable_successors().push_back(Info(100));
  n.mutable_successors().push_back(Info(300));
  auto best = n.ClosestPrecedingNode(350, nullptr);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->id, 300u);
}

TEST(ChordNodeTest, ClosestPrecedingRespectsUsablePredicate) {
  ChordNode n(0, NetAddress{0, 0});
  n.mutable_fingers().set_entry(7, Info(128));
  n.mutable_fingers().set_entry(4, Info(16));
  auto best = n.ClosestPrecedingNode(
      500, [](const NodeInfo& cand) { return cand.id != 128; });
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->id, 16u);
}

TEST(ChordNodeTest, ClosestPrecedingNoneWhenNothingImproves) {
  ChordNode n(100, NetAddress{0, 0});
  n.mutable_fingers().set_entry(0, Info(600));  // beyond the target
  EXPECT_FALSE(n.ClosestPrecedingNode(400, nullptr).has_value());
}

TEST(ChordNodeTest, ClosestPrecedingIgnoresSelfEntries) {
  ChordNode n(100, NetAddress{0, 0});
  n.mutable_fingers().set_entry(0, NodeInfo{100, NetAddress{0, 0}});
  EXPECT_FALSE(n.ClosestPrecedingNode(400, nullptr).has_value());
}

TEST(ChordNodeTest, ClosestPrecedingWrapsTarget) {
  // Node high on the ring routing toward a target past zero.
  ChordNode n(0xFFFFF000, NetAddress{0, 0});
  n.mutable_fingers().set_entry(10, Info(0xFFFFFF00));
  n.mutable_fingers().set_entry(20, Info(0x00000100));  // past the target
  auto best = n.ClosestPrecedingNode(/*target=*/0x80, nullptr);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->id, 0xFFFFFF00u);
}

}  // namespace
}  // namespace chord
}  // namespace p2prange
