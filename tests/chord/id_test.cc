#include "chord/id.h"

#include <gtest/gtest.h>

namespace p2prange {
namespace chord {
namespace {

TEST(ChordIdTest, ClockwiseDistanceWraps) {
  EXPECT_EQ(ClockwiseDistance(10, 20), 10u);
  EXPECT_EQ(ClockwiseDistance(20, 10), 0xFFFFFFF6u);  // 2^32 - 10
  EXPECT_EQ(ClockwiseDistance(5, 5), 0u);
  EXPECT_EQ(ClockwiseDistance(0xFFFFFFFF, 0), 1u);
}

TEST(ChordIdTest, InOpenClosedLinear) {
  EXPECT_TRUE(InOpenClosed(10, 20, 15));
  EXPECT_TRUE(InOpenClosed(10, 20, 20));   // closed at b
  EXPECT_FALSE(InOpenClosed(10, 20, 10));  // open at a
  EXPECT_FALSE(InOpenClosed(10, 20, 21));
  EXPECT_FALSE(InOpenClosed(10, 20, 5));
}

TEST(ChordIdTest, InOpenClosedWrapsAroundZero) {
  // Interval (0xFFFFFF00, 0x100]: crosses the origin.
  EXPECT_TRUE(InOpenClosed(0xFFFFFF00, 0x100, 0xFFFFFFFF));
  EXPECT_TRUE(InOpenClosed(0xFFFFFF00, 0x100, 0));
  EXPECT_TRUE(InOpenClosed(0xFFFFFF00, 0x100, 0x100));
  EXPECT_FALSE(InOpenClosed(0xFFFFFF00, 0x100, 0x101));
  EXPECT_FALSE(InOpenClosed(0xFFFFFF00, 0x100, 0xFFFFFF00));
  EXPECT_FALSE(InOpenClosed(0xFFFFFF00, 0x100, 0x7FFFFFFF));
}

TEST(ChordIdTest, InOpenClosedDegenerateIsFullRing) {
  // Chord convention: (a, a] covers the whole ring (single-node ring
  // owns everything).
  EXPECT_TRUE(InOpenClosed(42, 42, 0));
  EXPECT_TRUE(InOpenClosed(42, 42, 42));
  EXPECT_TRUE(InOpenClosed(42, 42, 0xFFFFFFFF));
}

TEST(ChordIdTest, InOpenOpen) {
  EXPECT_TRUE(InOpenOpen(10, 20, 15));
  EXPECT_FALSE(InOpenOpen(10, 20, 20));
  EXPECT_FALSE(InOpenOpen(10, 20, 10));
  // Wrap.
  EXPECT_TRUE(InOpenOpen(0xFFFFFFF0, 5, 0));
  EXPECT_FALSE(InOpenOpen(0xFFFFFFF0, 5, 5));
  // Degenerate: everything except a.
  EXPECT_TRUE(InOpenOpen(7, 7, 8));
  EXPECT_FALSE(InOpenOpen(7, 7, 7));
}

TEST(ChordIdTest, InClosedOpen) {
  EXPECT_TRUE(InClosedOpen(10, 20, 10));
  EXPECT_FALSE(InClosedOpen(10, 20, 20));
  EXPECT_TRUE(InClosedOpen(0xFFFFFFF0, 5, 0xFFFFFFF0));
  EXPECT_TRUE(InClosedOpen(0xFFFFFFF0, 5, 2));
  EXPECT_FALSE(InClosedOpen(0xFFFFFFF0, 5, 5));
}

TEST(ChordIdTest, FingerStartPowersOfTwo) {
  EXPECT_EQ(FingerStart(100, 0), 101u);
  EXPECT_EQ(FingerStart(100, 1), 102u);
  EXPECT_EQ(FingerStart(100, 10), 100u + 1024u);
  EXPECT_EQ(FingerStart(100, 31), 100u + 0x80000000u);
  // Wraparound.
  EXPECT_EQ(FingerStart(0xFFFFFFFF, 0), 0u);
  EXPECT_EQ(FingerStart(0xFFFFFFFF, 31), 0x7FFFFFFFu);
}

TEST(ChordIdTest, IntervalComplementarity) {
  // For any a != b, x != a: x in (a,b] xor x in (b,a]... they partition
  // the ring minus {a} boundaries; property-check on a grid.
  const ChordId a = 1000, b = 4000000000u;
  for (uint64_t step = 0; step < 64; ++step) {
    const ChordId x = static_cast<ChordId>(step * 67108864ULL + 17);
    if (x == a || x == b) continue;
    const bool in_ab = InOpenOpen(a, b, x);
    const bool in_ba = InOpenOpen(b, a, x);
    EXPECT_NE(in_ab, in_ba) << "x=" << x;
  }
}

}  // namespace
}  // namespace chord
}  // namespace p2prange
