#include "chord/ring.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/random.h"

namespace p2prange {
namespace chord {
namespace {

TEST(ChordRingTest, MakeRejectsZeroNodes) {
  EXPECT_TRUE(ChordRing::Make(0, 1).status().IsInvalidArgument());
}

TEST(ChordRingTest, MakeRejectsBadSuccessorListLen) {
  ChordConfig cfg;
  cfg.successor_list_len = 0;
  EXPECT_TRUE(ChordRing::Make(5, 1, cfg).status().IsInvalidArgument());
}

TEST(ChordRingTest, NodesHaveUniqueIds) {
  auto ring = ChordRing::Make(200, 7);
  ASSERT_TRUE(ring.ok());
  const auto nodes = ring->AliveNodesSorted();
  ASSERT_EQ(nodes.size(), 200u);
  std::set<ChordId> ids;
  for (const NodeInfo& n : nodes) ids.insert(n.id);
  EXPECT_EQ(ids.size(), 200u);
  for (size_t i = 1; i < nodes.size(); ++i) {
    EXPECT_LT(nodes[i - 1].id, nodes[i].id) << "must be sorted";
  }
}

TEST(ChordRingTest, SingleNodeRingOwnsEverything) {
  auto ring = ChordRing::Make(1, 3);
  ASSERT_TRUE(ring.ok());
  const NodeInfo only = ring->AliveNodesSorted().front();
  for (ChordId target : {0u, 1u, 0x80000000u, 0xFFFFFFFFu, only.id}) {
    auto result = ring->Lookup(only.addr, target);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->owner, only);
    EXPECT_EQ(result->hops, 0);
  }
}

TEST(ChordRingTest, OracleFindsCorrectSuccessor) {
  auto ring = ChordRing::Make(50, 11);
  ASSERT_TRUE(ring.ok());
  const auto nodes = ring->AliveNodesSorted();
  // Target exactly at a node id -> that node.
  for (const NodeInfo& n : nodes) {
    auto owner = ring->FindSuccessorOracle(n.id);
    ASSERT_TRUE(owner.ok());
    EXPECT_EQ(owner->id, n.id);
  }
  // Target one past a node -> the next node (wrapping).
  for (size_t i = 0; i < nodes.size(); ++i) {
    const NodeInfo& next = nodes[(i + 1) % nodes.size()];
    if (nodes[i].id + 1 == next.id) continue;
    auto owner = ring->FindSuccessorOracle(nodes[i].id + 1);
    ASSERT_TRUE(owner.ok());
    EXPECT_EQ(owner->id, next.id);
  }
}

class RingLookupTest : public ::testing::TestWithParam<size_t> {};

INSTANTIATE_TEST_SUITE_P(RingSizes, RingLookupTest,
                         ::testing::Values(1, 2, 3, 8, 64, 300));

TEST_P(RingLookupTest, ProtocolLookupAgreesWithOracle) {
  auto ring = ChordRing::Make(GetParam(), 13);
  ASSERT_TRUE(ring.ok());
  Rng rng(17);
  for (int trial = 0; trial < 100; ++trial) {
    const ChordId target = rng.Next32();
    auto origin = ring->RandomAliveAddress();
    ASSERT_TRUE(origin.ok());
    auto expected = ring->FindSuccessorOracle(target);
    ASSERT_TRUE(expected.ok());
    auto actual = ring->Lookup(*origin, target);
    ASSERT_TRUE(actual.ok()) << actual.status();
    EXPECT_EQ(actual->owner, *expected) << "target=" << target;
  }
}

TEST_P(RingLookupTest, HopsBoundedByLogarithm) {
  const size_t n = GetParam();
  auto ring = ChordRing::Make(n, 19);
  ASSERT_TRUE(ring.ok());
  Rng rng(23);
  const double log2n = std::log2(static_cast<double>(std::max<size_t>(n, 2)));
  for (int trial = 0; trial < 50; ++trial) {
    auto origin = ring->RandomAliveAddress();
    ASSERT_TRUE(origin.ok());
    auto result = ring->Lookup(*origin, rng.Next32());
    ASSERT_TRUE(result.ok());
    // With perfect fingers, path length is at most ~log2 N (+ slack).
    EXPECT_LE(result->hops, static_cast<int>(2.0 * log2n) + 2);
  }
}

TEST(ChordRingTest, MeanPathLengthScalesAsHalfLog) {
  auto ring = ChordRing::Make(1024, 29);
  ASSERT_TRUE(ring.ok());
  Rng rng(31);
  double total_hops = 0;
  const int kLookups = 500;
  for (int i = 0; i < kLookups; ++i) {
    auto origin = ring->RandomAliveAddress();
    ASSERT_TRUE(origin.ok());
    auto result = ring->Lookup(*origin, rng.Next32());
    ASSERT_TRUE(result.ok());
    total_hops += result->hops;
  }
  const double mean = total_hops / kLookups;
  // 0.5 * log2(1024) = 5; accept a broad band around it.
  EXPECT_GT(mean, 3.0);
  EXPECT_LT(mean, 7.5);
}

TEST(ChordRingTest, LookupChargesNetworkMessages) {
  auto ring = ChordRing::Make(128, 37);
  ASSERT_TRUE(ring.ok());
  ring->network().ResetStats();
  auto origin = ring->RandomAliveAddress();
  ASSERT_TRUE(origin.ok());
  auto result = ring->Lookup(*origin, 0x12345678);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(ring->network().stats().messages, static_cast<uint64_t>(result->hops));
  EXPECT_EQ(result->path.size(), static_cast<size_t>(result->hops));
}

TEST(ChordRingTest, LookupFromDeadOriginFails) {
  auto ring = ChordRing::Make(10, 41);
  ASSERT_TRUE(ring.ok());
  const auto nodes = ring->AliveNodesSorted();
  ASSERT_TRUE(ring->Fail(nodes[0].addr).ok());
  EXPECT_TRUE(ring->Lookup(nodes[0].addr, 5).status().IsInvalidArgument());
}

TEST(ChordRingTest, AddNodeJoinsAndResolvesCorrectly) {
  auto ring = ChordRing::Make(32, 43);
  ASSERT_TRUE(ring.ok());
  for (int i = 0; i < 8; ++i) {
    auto added = ring->AddNode();
    ASSERT_TRUE(added.ok()) << added.status();
    ring->StabilizeAll(2);
  }
  ring->FixAllFingers();
  ring->StabilizeAll(1);
  EXPECT_EQ(ring->num_alive(), 40u);
  // After maintenance, protocol lookups agree with the oracle.
  Rng rng(47);
  for (int trial = 0; trial < 60; ++trial) {
    const ChordId target = rng.Next32();
    auto origin = ring->RandomAliveAddress();
    ASSERT_TRUE(origin.ok());
    auto expected = ring->FindSuccessorOracle(target);
    auto actual = ring->Lookup(*origin, target);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(actual.ok()) << actual.status();
    EXPECT_EQ(actual->owner, *expected);
  }
}

TEST(ChordRingTest, GracefulLeavePatchesNeighbors) {
  auto ring = ChordRing::Make(64, 53);
  ASSERT_TRUE(ring.ok());
  const auto nodes = ring->AliveNodesSorted();
  const NetAddress leaver = nodes[10].addr;
  ASSERT_TRUE(ring->Leave(leaver).ok());
  EXPECT_EQ(ring->num_alive(), 63u);
  EXPECT_TRUE(ring->Leave(leaver).IsInvalidArgument()) << "already gone";
  ring->StabilizeAll(2);
  // Identifiers previously owned by the leaver now resolve to its
  // successor.
  auto owner = ring->FindSuccessorOracle(nodes[10].id);
  ASSERT_TRUE(owner.ok());
  EXPECT_EQ(owner->id, nodes[11].id);
  auto origin = ring->RandomAliveAddress();
  ASSERT_TRUE(origin.ok());
  auto result = ring->Lookup(*origin, nodes[10].id);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->owner.id, nodes[11].id);
}

TEST(ChordRingTest, LookupsRouteAroundAbruptFailures) {
  ChordConfig cfg;
  cfg.successor_list_len = 16;
  auto ring = ChordRing::Make(128, 59, cfg);
  ASSERT_TRUE(ring.ok());
  // Fail 12 random peers without any repair.
  Rng rng(61);
  auto nodes = ring->AliveNodesSorted();
  std::set<size_t> failed;
  while (failed.size() < 12) failed.insert(rng.NextBounded(nodes.size()));
  for (size_t idx : failed) ASSERT_TRUE(ring->Fail(nodes[idx].addr).ok());

  for (int trial = 0; trial < 100; ++trial) {
    const ChordId target = rng.Next32();
    auto origin = ring->RandomAliveAddress();
    ASSERT_TRUE(origin.ok());
    auto expected = ring->FindSuccessorOracle(target);
    auto actual = ring->Lookup(*origin, target);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(actual.ok()) << actual.status();
    EXPECT_EQ(actual->owner, *expected) << "target=" << target;
  }
}

TEST(ChordRingTest, StabilizationRepairsAfterFailures) {
  auto ring = ChordRing::Make(100, 67);
  ASSERT_TRUE(ring.ok());
  auto nodes = ring->AliveNodesSorted();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(ring->Fail(nodes[i * 7].addr).ok());
  }
  ring->StabilizeAll(3);
  ring->FixAllFingers();
  // After repair, successors/predecessors are consistent: each live
  // node's successor is the next live node.
  const auto alive = ring->AliveNodesSorted();
  for (size_t i = 0; i < alive.size(); ++i) {
    const ChordNode* n = ring->node(alive[i].addr);
    ASSERT_NE(n, nullptr);
    EXPECT_EQ(n->successor().id, alive[(i + 1) % alive.size()].id)
        << "node " << n->id();
  }
}

TEST(ChordRingTest, GrowFromSingleNodeViaProtocolJoins) {
  // Bootstrap a 1-node system and grow it to 12 entirely through the
  // join protocol + stabilization — the hardest regime for ring
  // pointers (self-loops must break correctly).
  auto ring = chord::ChordRing::Make(1, 97);
  ASSERT_TRUE(ring.ok());
  for (int i = 0; i < 11; ++i) {
    auto added = ring->AddNode();
    ASSERT_TRUE(added.ok()) << "join " << i << ": " << added.status();
    ring->StabilizeAll(3);
    ring->FixAllFingers();
  }
  EXPECT_EQ(ring->num_alive(), 12u);
  const auto alive = ring->AliveNodesSorted();
  for (size_t i = 0; i < alive.size(); ++i) {
    const ChordNode* n = ring->node(alive[i].addr);
    EXPECT_EQ(n->successor().id, alive[(i + 1) % alive.size()].id)
        << "successor chain broken at " << n->id();
  }
  Rng rng(101);
  for (int trial = 0; trial < 50; ++trial) {
    const ChordId target = rng.Next32();
    auto origin = ring->RandomAliveAddress();
    ASSERT_TRUE(origin.ok());
    auto expected = ring->FindSuccessorOracle(target);
    auto actual = ring->Lookup(*origin, target);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(actual.ok()) << actual.status();
    EXPECT_EQ(actual->owner, *expected);
  }
}

TEST(ChordRingTest, SuccessorListLongerThanRing) {
  // successor_list_len > N must clamp, not wrap duplicates.
  chord::ChordConfig cfg;
  cfg.successor_list_len = 16;
  auto ring = chord::ChordRing::Make(3, 103, cfg);
  ASSERT_TRUE(ring.ok());
  for (const NodeInfo& info : ring->AliveNodesSorted()) {
    const ChordNode* n = ring->node(info.addr);
    EXPECT_LE(n->successors().size(), 3u);
    // No duplicates.
    std::set<uint32_t> ids;
    for (const NodeInfo& s : n->successors()) ids.insert(s.id);
    EXPECT_EQ(ids.size(), n->successors().size());
  }
}

TEST(ChordRingTest, RandomAliveAddressFailsOnDeadRing) {
  auto ring = ChordRing::Make(2, 71);
  ASSERT_TRUE(ring.ok());
  for (const NodeInfo& n : ring->AliveNodesSorted()) {
    ASSERT_TRUE(ring->Fail(n.addr).ok());
  }
  EXPECT_TRUE(ring->RandomAliveAddress().status().IsNotFound());
}

TEST(ChordRingTest, PerfectStateHasCorrectFingers) {
  auto ring = ChordRing::Make(64, 73);
  ASSERT_TRUE(ring.ok());
  for (const NodeInfo& info : ring->AliveNodesSorted()) {
    const ChordNode* n = ring->node(info.addr);
    for (int k = 0; k < FingerTable::size(); ++k) {
      ASSERT_TRUE(n->fingers().entry(k).has_value());
      auto expected = ring->FindSuccessorOracle(FingerStart(n->id(), k));
      ASSERT_TRUE(expected.ok());
      EXPECT_EQ(n->fingers().entry(k)->id, expected->id)
          << "node " << n->id() << " finger " << k;
    }
  }
}

}  // namespace
}  // namespace chord
}  // namespace p2prange
