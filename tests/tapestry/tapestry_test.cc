#include "tapestry/tapestry.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/random.h"
#include "stats/summary.h"

namespace p2prange {
namespace tapestry {
namespace {

TEST(TapestryDigitsTest, DigitExtractionMsbFirst) {
  EXPECT_EQ(Digit(0x12345678, 0), 0x1);
  EXPECT_EQ(Digit(0x12345678, 1), 0x2);
  EXPECT_EQ(Digit(0x12345678, 7), 0x8);
  EXPECT_EQ(Digit(0xF0000000, 0), 0xF);
  EXPECT_EQ(Digit(0x0000000F, 7), 0xF);
}

TEST(TapestryDigitsTest, SharedPrefixLen) {
  EXPECT_EQ(SharedPrefixLen(0x12345678, 0x12345678), 8);
  EXPECT_EQ(SharedPrefixLen(0x12345678, 0x12345679), 7);
  EXPECT_EQ(SharedPrefixLen(0x12345678, 0x22345678), 0);
  EXPECT_EQ(SharedPrefixLen(0x12340000, 0x1234FFFF), 4);
}

TEST(TapestryMeshTest, MakeRejectsZeroNodes) {
  EXPECT_TRUE(TapestryMesh::Make(0, 1).status().IsInvalidArgument());
}

TEST(TapestryMeshTest, SingleNodeOwnsEverything) {
  auto mesh = TapestryMesh::Make(1, 3);
  ASSERT_TRUE(mesh.ok());
  auto origin = mesh->RandomAliveAddress();
  ASSERT_TRUE(origin.ok());
  for (uint32_t id : {0u, 0xFFFFFFFFu, 0x12345678u}) {
    auto result = mesh->Lookup(*origin, id);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->owner.addr, *origin);
    EXPECT_EQ(result->hops, 0);
  }
}

TEST(TapestryMeshTest, ExactIdResolvesToThatNode) {
  auto mesh = TapestryMesh::Make(64, 5);
  ASSERT_TRUE(mesh.ok());
  auto origin = mesh->RandomAliveAddress();
  ASSERT_TRUE(origin.ok());
  // Route to every node's own identifier.
  for (int i = 0; i < 32; ++i) {
    auto some = mesh->RandomAliveAddress();
    ASSERT_TRUE(some.ok());
    const uint32_t id = mesh->node(*some)->id();
    auto result = mesh->Lookup(*origin, id);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->owner.id, id);
  }
}

class TapestryConsistencyTest : public ::testing::TestWithParam<size_t> {};

INSTANTIATE_TEST_SUITE_P(MeshSizes, TapestryConsistencyTest,
                         ::testing::Values(2, 7, 50, 200));

TEST_P(TapestryConsistencyTest, SurrogateRootIsStartIndependent) {
  auto mesh = TapestryMesh::Make(GetParam(), 11);
  ASSERT_TRUE(mesh.ok());
  Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    const uint32_t target = rng.Next32();
    std::optional<uint32_t> root;
    for (int start = 0; start < 8; ++start) {
      auto origin = mesh->RandomAliveAddress();
      ASSERT_TRUE(origin.ok());
      auto result = mesh->Lookup(*origin, target);
      ASSERT_TRUE(result.ok()) << result.status();
      if (!root) {
        root = result->owner.id;
      } else {
        ASSERT_EQ(*root, result->owner.id)
            << "target " << target << " resolved inconsistently";
      }
    }
  }
}

TEST(TapestryMeshTest, HopsAreLogarithmicBase16) {
  auto mesh = TapestryMesh::Make(512, 17);
  ASSERT_TRUE(mesh.ok());
  Rng rng(19);
  Summary hops;
  for (int i = 0; i < 400; ++i) {
    auto origin = mesh->RandomAliveAddress();
    ASSERT_TRUE(origin.ok());
    auto result = mesh->Lookup(*origin, rng.Next32());
    ASSERT_TRUE(result.ok());
    hops.AddCount(static_cast<uint64_t>(result->hops));
  }
  // log16(512) ~= 2.25; surrogate detours add a little.
  EXPECT_GT(hops.Mean(), 1.0);
  EXPECT_LT(hops.Mean(), 5.0);
  EXPECT_LE(hops.Max(), 12.0);
}

TEST(TapestryMeshTest, LoadIsSpreadAcrossNodes) {
  auto mesh = TapestryMesh::Make(128, 23);
  ASSERT_TRUE(mesh.ok());
  Rng rng(29);
  std::map<uint32_t, int> owned;
  for (int i = 0; i < 2000; ++i) {
    auto origin = mesh->RandomAliveAddress();
    ASSERT_TRUE(origin.ok());
    auto result = mesh->Lookup(*origin, rng.Next32());
    ASSERT_TRUE(result.ok());
    ++owned[result->owner.id];
  }
  EXPECT_GT(owned.size(), 90u) << "most nodes should own some identifiers";
}

TEST(TapestryMeshTest, SurvivesFailuresAfterRebuild) {
  auto mesh = TapestryMesh::Make(100, 31);
  ASSERT_TRUE(mesh.ok());
  Rng rng(37);
  for (int i = 0; i < 15; ++i) {
    auto victim = mesh->RandomAliveAddress();
    ASSERT_TRUE(victim.ok());
    ASSERT_TRUE(mesh->Fail(*victim).ok());
  }
  mesh->RebuildRoutingTables();
  EXPECT_EQ(mesh->num_alive(), 85u);
  for (int trial = 0; trial < 30; ++trial) {
    const uint32_t target = rng.Next32();
    std::optional<uint32_t> root;
    for (int start = 0; start < 5; ++start) {
      auto origin = mesh->RandomAliveAddress();
      ASSERT_TRUE(origin.ok());
      auto result = mesh->Lookup(*origin, target);
      ASSERT_TRUE(result.ok()) << result.status();
      if (!root) {
        root = result->owner.id;
      } else {
        EXPECT_EQ(*root, result->owner.id);
      }
    }
  }
}

TEST(TapestryMeshTest, FailValidation) {
  auto mesh = TapestryMesh::Make(3, 41);
  ASSERT_TRUE(mesh.ok());
  EXPECT_TRUE(mesh->Fail(NetAddress{9, 9}).IsNotFound());
  auto victim = mesh->RandomAliveAddress();
  ASSERT_TRUE(victim.ok());
  ASSERT_TRUE(mesh->Fail(*victim).ok());
  EXPECT_TRUE(mesh->Lookup(*victim, 1).status().IsInvalidArgument());
}

TEST(TapestryMeshTest, StateSizeIsCompact) {
  auto mesh = TapestryMesh::Make(256, 43);
  ASSERT_TRUE(mesh.ok());
  Summary state;
  for (size_t s : mesh->StateSizes()) state.AddCount(s);
  // Level 0 alone can hold up to 15 entries; deeper levels thin out
  // exponentially. For 256 nodes expect a few dozen entries, far less
  // than kDigits * kBase = 128.
  EXPECT_GT(state.Mean(), 10.0);
  EXPECT_LT(state.Mean(), 60.0);
}

}  // namespace
}  // namespace tapestry
}  // namespace p2prange
