// Surrogate routing under churn: the deterministic next-available-
// digit rule must keep every identifier mapped to exactly one live
// root as nodes join, leave, fail, and recover — and hand ownership
// back when the former root returns. The scenario engine's compact
// Tapestry model mirrors this digit-descent rule, so the heavy mesh's
// behavior is pinned here.
#include <gtest/gtest.h>

#include <map>

#include "tapestry/tapestry.h"

namespace p2prange {
namespace tapestry {
namespace {

TapestryMesh MakeMesh(size_t n, uint64_t seed = 31) {
  auto mesh = TapestryMesh::Make(n, seed);
  EXPECT_TRUE(mesh.ok()) << mesh.status();
  return std::move(mesh).ValueUnsafe();
}

/// The surrogate root of `target` as seen from every live start node;
/// fails the test if any two starts disagree.
uint32_t ConsistentRoot(TapestryMesh& mesh, uint32_t target) {
  uint32_t root = 0;
  bool first = true;
  for (const MeshNodeInfo& start : mesh.AliveNodesSorted()) {
    auto result = mesh.Lookup(start.addr, target);
    EXPECT_TRUE(result.ok()) << result.status();
    if (first) {
      root = result->owner.id;
      first = false;
    } else {
      EXPECT_EQ(result->owner.id, root)
          << "start " << start.id << " disagrees on target " << target;
    }
  }
  return root;
}

TEST(SurrogateTest, RootSharesLongestAvailablePrefix) {
  TapestryMesh mesh = MakeMesh(48);
  const std::vector<MeshNodeInfo> nodes = mesh.AliveNodesSorted();
  for (uint32_t probe = 0; probe < 32; ++probe) {
    const uint32_t target = probe * 0x88E1DB3Bu + 5;
    const uint32_t root = ConsistentRoot(mesh, target);
    // No live node may share a strictly longer prefix with the target
    // than the chosen root does — the heart of surrogate routing.
    const int root_len = SharedPrefixLen(root, target);
    for (const MeshNodeInfo& n : nodes) {
      EXPECT_LE(SharedPrefixLen(n.id, target), root_len)
          << "node " << n.id << " out-prefixes root " << root << " for "
          << target;
    }
  }
}

TEST(SurrogateTest, RootMigratesWhenItLeavesAndReturnsOnRecover) {
  TapestryMesh mesh = MakeMesh(32);
  const uint32_t target = 0x5A5A5A5Au;
  const uint32_t old_root = ConsistentRoot(mesh, target);
  NetAddress old_addr;
  for (const MeshNodeInfo& n : mesh.AliveNodesSorted()) {
    if (n.id == old_root) old_addr = n.addr;
  }

  ASSERT_TRUE(mesh.Fail(old_addr).ok());
  mesh.RebuildRoutingTables();
  const uint32_t interim_root = ConsistentRoot(mesh, target);
  EXPECT_NE(interim_root, old_root);

  ASSERT_TRUE(mesh.Recover(old_addr).ok());
  EXPECT_EQ(ConsistentRoot(mesh, target), old_root)
      << "recovered node did not reclaim its surrogate role";
}

TEST(SurrogateTest, JoinCanStealOwnershipAndLeaveHandsItBack) {
  TapestryMesh mesh = MakeMesh(8, 17);
  // Map a spread of identifiers before and after a join: roots only
  // ever change TO the joiner, and a graceful leave restores the
  // original map exactly.
  std::map<uint32_t, uint32_t> before;
  for (uint32_t probe = 0; probe < 48; ++probe) {
    const uint32_t target = probe * 0x3C6EF35Fu + 11;
    before[target] = ConsistentRoot(mesh, target);
  }
  auto joined = mesh.AddNode();
  ASSERT_TRUE(joined.ok()) << joined.status();
  for (const auto& [target, old_root] : before) {
    const uint32_t now = ConsistentRoot(mesh, target);
    if (now != old_root) {
      EXPECT_EQ(now, joined->id)
          << "ownership of " << target << " moved to a bystander";
    }
  }
  ASSERT_TRUE(mesh.Leave(joined->addr).ok());
  for (const auto& [target, old_root] : before) {
    EXPECT_EQ(ConsistentRoot(mesh, target), old_root);
  }
}

TEST(SurrogateTest, DigitWraparoundFindsRoot) {
  // A 2-node mesh forces surrogate scans to wrap past digit 15 at
  // nearly every level; the unique-root property must survive it.
  TapestryMesh mesh = MakeMesh(2, 13);
  const std::vector<MeshNodeInfo> nodes = mesh.AliveNodesSorted();
  ASSERT_EQ(nodes.size(), 2u);
  for (uint32_t probe = 0; probe < 64; ++probe) {
    const uint32_t target = probe * 0x45D9F3Bu;
    const uint32_t root = ConsistentRoot(mesh, target);
    EXPECT_TRUE(root == nodes[0].id || root == nodes[1].id);
  }
  // Both nodes own their exact identifiers.
  for (const MeshNodeInfo& n : nodes) {
    auto self = mesh.Lookup(n.addr, n.id);
    ASSERT_TRUE(self.ok());
    EXPECT_EQ(self->owner.id, n.id);
    EXPECT_EQ(self->hops, 0);
  }
}

}  // namespace
}  // namespace tapestry
}  // namespace p2prange
