#include "stats/summary.h"

#include <gtest/gtest.h>

#include <sstream>

#include "stats/table_printer.h"

namespace p2prange {
namespace {

TEST(SummaryTest, MeanMinMax) {
  Summary s;
  for (double x : {4.0, 1.0, 3.0, 2.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 4.0);
  EXPECT_EQ(s.count(), 4u);
}

TEST(SummaryTest, EmptySummaryIsZeros) {
  Summary s;
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Min(), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 0.0);
}

TEST(SummaryTest, PercentilesNearestRank) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.Add(i);
  EXPECT_DOUBLE_EQ(s.Percentile(1), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.Percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0);
}

TEST(SummaryTest, PercentileAfterLateAdds) {
  Summary s;
  s.Add(10);
  EXPECT_DOUBLE_EQ(s.Percentile(99), 10.0);
  s.Add(20);
  s.Add(30);
  EXPECT_DOUBLE_EQ(s.Percentile(99), 30.0) << "sorted cache must refresh";
}

TEST(SummaryTest, Stddev) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_NEAR(s.Stddev(), 2.138, 0.001);  // sample stddev
}

TEST(UnitHistogramTest, BinsAndEdges) {
  UnitHistogram h(10);
  h.Add(0.0);    // bin 0
  h.Add(0.05);   // bin 0
  h.Add(0.95);   // bin 9
  h.Add(1.0);    // clamped to bin 9
  h.Add(0.5);    // bin 5
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_DOUBLE_EQ(h.Percentage(0), 40.0);
  EXPECT_DOUBLE_EQ(h.BinLo(5), 0.5);
  EXPECT_DOUBLE_EQ(h.BinHi(5), 0.6);
}

TEST(FractionAtLeastTest, ReverseCdf) {
  const std::vector<double> samples = {1.0, 1.0, 0.5, 0.0};
  const auto series = FractionAtLeast(samples, /*points=*/4);
  // Thresholds 1.0, 0.75, 0.5, 0.25, 0.0.
  ASSERT_EQ(series.size(), 5u);
  EXPECT_DOUBLE_EQ(series[0].first, 1.0);
  EXPECT_DOUBLE_EQ(series[0].second, 50.0);   // two of four == 1.0
  EXPECT_DOUBLE_EQ(series[2].second, 75.0);   // >= 0.5
  EXPECT_DOUBLE_EQ(series[4].second, 100.0);  // >= 0
}

TEST(FractionAtLeastTest, EmptySamples) {
  const auto series = FractionAtLeast({}, 4);
  for (const auto& [threshold, pct] : series) EXPECT_DOUBLE_EQ(pct, 0.0);
}

TEST(DiscretePdfTest, NormalizedCounts) {
  const auto pdf = DiscretePdf({0, 1, 1, 2, 2, 2, 5});
  ASSERT_EQ(pdf.size(), 6u);
  EXPECT_DOUBLE_EQ(pdf[0], 1.0 / 7.0);
  EXPECT_DOUBLE_EQ(pdf[1], 2.0 / 7.0);
  EXPECT_DOUBLE_EQ(pdf[2], 3.0 / 7.0);
  EXPECT_DOUBLE_EQ(pdf[3], 0.0);
  EXPECT_DOUBLE_EQ(pdf[5], 1.0 / 7.0);
}

TEST(TablePrinterTest, AlignsColumnsAndPrintsTitle) {
  TablePrinter t({"name", "value"});
  t.AddRow({"alpha", TablePrinter::Fmt(1.5, 2)});
  t.AddRow({"b", TablePrinter::Fmt(uint64_t{42})});
  std::ostringstream os;
  t.Print(os, "demo");
  const std::string out = os.str();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.50"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TablePrinterTest, FmtPrecision) {
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 0), "3");
  EXPECT_EQ(TablePrinter::Fmt(uint64_t{7}), "7");
}

}  // namespace
}  // namespace p2prange
