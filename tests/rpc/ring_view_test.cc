// RingView edge cases the live ring actually hits: rings of one,
// wraparound neighbors on rings of two, collapsing back to self after
// a mass departure, and duplicate addresses in a membership list.
#include "rpc/ring_view.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/address.h"

namespace p2prange {
namespace rpc {
namespace {

NetAddress Addr(uint16_t port) {
  NetAddress a;
  a.host = (127u << 24) | 1u;  // 127.0.0.1
  a.port = port;
  return a;
}

TEST(RingViewTest, SingleNodeOwnsEverythingAndIsItsOwnNeighbor) {
  const NetAddress only = Addr(7001);
  auto view = RingView::Make({only});
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view->size(), 1u);
  // Every identifier — including the node's own — maps to the node.
  for (const chord::ChordId id :
       {chord::ChordId{0}, RingView::IdOf(only), chord::ChordId{0xffffffff}}) {
    EXPECT_EQ(view->Owner(id), only);
    EXPECT_EQ(view->SuccessorOf(id), only);
    EXPECT_EQ(view->PredecessorOf(id), only);
  }
  // Asking for more replicas than members yields each member once.
  EXPECT_EQ(view->Replicas(42, 3), std::vector<NetAddress>{only});
}

TEST(RingViewTest, TwoNodeRingWrapsAround) {
  const NetAddress a = Addr(7001);
  const NetAddress b = Addr(7002);
  auto view = RingView::Make({a, b});
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  ASSERT_EQ(view->size(), 2u);

  const auto& lo = view->members()[0].second;
  const auto& hi = view->members()[1].second;
  const chord::ChordId lo_id = view->members()[0].first;
  const chord::ChordId hi_id = view->members()[1].first;
  ASSERT_LT(lo_id, hi_id);

  // Each node's successor and predecessor is the other, in both the
  // forward and the wrapping direction.
  EXPECT_EQ(view->SuccessorOf(lo_id), hi);
  EXPECT_EQ(view->SuccessorOf(hi_id), lo);  // wraps past the top
  EXPECT_EQ(view->PredecessorOf(lo_id), hi);  // wraps past zero
  EXPECT_EQ(view->PredecessorOf(hi_id), lo);

  // Ownership: (lo, hi] belongs to hi, the wrapped arc (hi, lo] to lo.
  EXPECT_EQ(view->Owner(lo_id + 1), hi);
  EXPECT_EQ(view->Owner(hi_id), hi);
  EXPECT_EQ(view->Owner(hi_id + 1), lo);
  EXPECT_EQ(view->Owner(0), lo);

  // Two replicas cover both members, owner first.
  const auto reps = view->Replicas(lo_id + 1, 2);
  ASSERT_EQ(reps.size(), 2u);
  EXPECT_EQ(reps[0], hi);
  EXPECT_EQ(reps[1], lo);
}

TEST(RingViewTest, MassDepartureCollapsesToSelf) {
  // After every other member leaves, the survivor rebuilds its view
  // from the alive set {self} — and must again be its own successor,
  // exactly like a fresh ring of one.
  const NetAddress self = Addr(7001);
  auto full = RingView::Make({self, Addr(7002), Addr(7003), Addr(7004)});
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(full->size(), 4u);

  auto collapsed = RingView::Make({self});
  ASSERT_TRUE(collapsed.ok());
  EXPECT_EQ(collapsed->SuccessorOf(RingView::IdOf(self)), self);
  EXPECT_EQ(collapsed->Owner(0), self);
  EXPECT_TRUE(collapsed->Contains(self));
  EXPECT_FALSE(collapsed->Contains(Addr(7002)));
}

TEST(RingViewTest, RejectsDuplicateAddresses) {
  const auto dup = RingView::Make({Addr(7001), Addr(7002), Addr(7001)});
  EXPECT_FALSE(dup.ok());
  EXPECT_TRUE(dup.status().IsInvalidArgument()) << dup.status().ToString();
}

TEST(RingViewTest, RejectsEmptyMembership) {
  const auto empty = RingView::Make({});
  EXPECT_FALSE(empty.ok());
  EXPECT_TRUE(empty.status().IsInvalidArgument());
}

}  // namespace
}  // namespace rpc
}  // namespace p2prange
