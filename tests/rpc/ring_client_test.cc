// The client-path fault behaviors of RingClient against hand-rolled
// peers: view refreshes that must not corrupt the routing view,
// wall-clock latency accounting on the slow paths, redirect dedupe in
// Publish, kMultiOp batching equivalence, and admission-control sheds
// failing over without a retry storm. Real NodeServices play the
// honest peers; scripted handlers play the faulty ones.
#include "rpc/ring_client.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/memory.h"
#include "rpc/membership.h"
#include "rpc/node_service.h"
#include "rpc/tcp.h"
#include "rpc/tcp_transport.h"

namespace p2prange {
namespace rpc {
namespace {

NetAddress Loopback(uint16_t port) {
  NetAddress a;
  a.host = 0x7F000001;  // 127.0.0.1
  a.port = port;
  return a;
}

/// A TcpServer polled on a background thread until stopped (same
/// harness as tcp_transport_test.cc).
class ServerThread {
 public:
  static std::unique_ptr<ServerThread> Start(TcpServer::Handler handler) {
    auto server = TcpServer::Listen(Loopback(0), std::move(handler));
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    if (!server.ok()) return nullptr;
    return WrapUnique(new ServerThread(std::move(*server)));
  }

  ~ServerThread() {
    stop_ = true;
    thread_.join();
  }

  const NetAddress& address() const { return server_.address(); }

 private:
  explicit ServerThread(TcpServer server) : server_(std::move(server)) {
    thread_ = std::thread([this] {
      while (!stop_) {
        const Status st = server_.PollOnce(/*timeout_ms=*/20);
        if (!st.ok()) break;
      }
    });
  }

  TcpServer server_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

/// n real NodeServices behind ServerThreads.
class MiniRing {
 public:
  explicit MiniRing(size_t n) {
    for (size_t i = 0; i < n; ++i) {
      auto service = NodeService::Make(Loopback(0), NodeServiceOptions{});
      EXPECT_TRUE(service.ok());
      services_.push_back(std::move(*service));
      NodeService* raw = services_.back().get();
      auto server = ServerThread::Start(
          [raw](MsgType type, std::string_view body) {
            return raw->Handle(type, body);
          });
      EXPECT_NE(server, nullptr);
      members_.push_back(server->address());
      servers_.push_back(std::move(server));
    }
  }

  const std::vector<NetAddress>& members() const { return members_; }

 private:
  std::vector<std::unique_ptr<NodeService>> services_;
  std::vector<std::unique_ptr<ServerThread>> servers_;
  std::vector<NetAddress> members_;
};

RingClientOptions SmallLshOptions() {
  RingClientOptions options;
  options.lsh.k = 10;
  options.lsh.l = 5;
  return options;
}

TEST(TcpTransportTest, PumpForDrainsResponsesIntoTheParkingLot) {
  auto server = ServerThread::Start([](MsgType, std::string_view body) {
    return Result<std::string>(std::string(body));
  });
  ASSERT_NE(server, nullptr);

  TcpTransport transport;
  auto call = transport.StartCall(server->address(), MsgType::kPing, "hi");
  ASSERT_TRUE(call.ok());

  // The pump itself must receive (and park) the response: afterwards
  // it is already counted, and the wait completes from the parked
  // frame essentially instantly.
  transport.PumpFor(200.0);
  EXPECT_EQ(transport.rpc_stats().responses_received, 1u);

  auto result = transport.WaitCall(server->address(), *call,
                                   /*deadline_ms=*/5.0);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->body, "hi");
  EXPECT_EQ(transport.rpc_stats().timeouts, 0u);
}

TEST(RingClientTest, RefreshViewWithNoAliveEntriesLeavesViewUntouched) {
  // A peer whose gossip knows only casualties: every entry suspect,
  // dead, or departed. There is no alive set to rebuild a view from,
  // so the refresh must fail and the old view must survive.
  auto gossiper = ServerThread::Start([](MsgType type, std::string_view) {
    EXPECT_EQ(type, MsgType::kGossip);
    std::vector<MemberEntry> entries;
    entries.push_back({Loopback(41001), 5, MemberStatus::kSuspect});
    entries.push_back({Loopback(41002), 5, MemberStatus::kDead});
    entries.push_back({Loopback(41003), 5, MemberStatus::kLeft});
    return Result<std::string>(EncodeViewMessage(entries));
  });
  ASSERT_NE(gossiper, nullptr);

  auto client = RingClient::Make({gossiper->address()}, SmallLshOptions());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  EXPECT_FALSE((*client)->RefreshView().ok());
  ASSERT_EQ((*client)->view().members().size(), 1u);
  EXPECT_TRUE((*client)->view().Contains(gossiper->address()));
}

TEST(RingClientTest, RefreshViewDropsMembersMissingFromTheFreshView) {
  // The gossip answer names one alive member the client has never
  // heard of — and neither of the members it currently routes to. The
  // refreshed view must contain exactly the gossiped alive set.
  const NetAddress survivor = Loopback(41099);
  auto gossiper = ServerThread::Start(
      [survivor](MsgType, std::string_view) {
        return Result<std::string>(
            EncodeViewMessage({{survivor, 9, MemberStatus::kAlive}}));
      });
  ASSERT_NE(gossiper, nullptr);

  // A second "member" that is a reserved port with no listener: if the
  // refresh contacts it first, the failure must move on to the
  // gossiper instead of giving up.
  auto probe = Listen(Loopback(0));
  ASSERT_TRUE(probe.ok());
  const NetAddress dead = probe->bound;
  ::close(probe->fd);

  auto client =
      RingClient::Make({gossiper->address(), dead}, SmallLshOptions());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE((*client)->view().Contains(dead));

  ASSERT_TRUE((*client)->RefreshView().ok());
  ASSERT_EQ((*client)->view().members().size(), 1u);
  EXPECT_TRUE((*client)->view().Contains(survivor));
  EXPECT_FALSE((*client)->view().Contains(dead));
  EXPECT_FALSE((*client)->view().Contains(gossiper->address()));
}

TEST(RingClientTest, LookupChargesWallClockOnTimeoutAndRetryPaths) {
  // A listener that accepts into its backlog and never answers: every
  // probe burns its first-wave deadline, then one more on the
  // per-replica fallback. The reported latency must cover all of that
  // wall clock, not just the (absent) successful round trips.
  auto silent = Listen(Loopback(0));
  ASSERT_TRUE(silent.ok());

  RingClientOptions options = SmallLshOptions();
  options.deadline_ms = 80.0;
  options.fault.max_retries = 0;
  options.refresh_on_failure = false;
  auto client = RingClient::Make({silent->bound}, options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  const auto started = std::chrono::steady_clock::now();
  auto outcome = (*client)->Lookup(PartitionKey{"T", "a", Range(100, 200)});
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - started)
                             .count();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();

  EXPECT_EQ(outcome->probes_failed,
            static_cast<int>(outcome->identifiers.size()));
  EXPECT_TRUE(outcome->ranked.empty());
  // Each of the l probes spent at least one 80ms deadline; the summed
  // per-probe wall clock can never exceed the whole lookup's.
  EXPECT_GE(outcome->latency_ms,
            80.0 * static_cast<double>(outcome->identifiers.size()));
  EXPECT_LE(outcome->latency_ms, wall_ms + 1.0);
  EXPECT_GT((*client)->transport().rpc_stats().timeouts, 0u);
  ::close(silent->fd);
}

TEST(RingClientTest, PublishCountsARedirectedStoreOncePerAddress) {
  // One honest holder, and one peer that redirects every store to that
  // same holder. With replication 2 each bucket tries both replicas;
  // the redirected store lands where the direct one already did, so a
  // bucket ends up with exactly one distinct copy — counting stores
  // instead of addresses would report two.
  MiniRing honest(1);
  const NetAddress holder = honest.members()[0];
  auto redirector = ServerThread::Start(
      [holder](MsgType type, std::string_view) {
        EXPECT_EQ(type, MsgType::kStoreDescriptor);
        return Result<std::string>(
            Status::OutOfRange(WrongOwnerMessage(holder)));
      });
  ASSERT_NE(redirector, nullptr);

  RingClientOptions options = SmallLshOptions();
  options.descriptor_replication = 2;
  auto client =
      RingClient::Make({redirector->address(), holder}, options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  RingClient::PublishStats stats;
  ASSERT_TRUE((*client)
                  ->Publish(PartitionKey{"T", "a", Range(100, 200)}, holder,
                            &stats)
                  .ok());
  EXPECT_GT(stats.buckets, 0);
  EXPECT_GT(stats.redirects, 0);
  EXPECT_EQ(stats.copies_stored, stats.buckets);
}

TEST(RingClientTest, BatchedAndUnbatchedLookupsAgree) {
  MiniRing ring(2);
  RingClientOptions batched_options = SmallLshOptions();
  ASSERT_TRUE(batched_options.batch_probes);  // the default
  RingClientOptions solo_options = SmallLshOptions();
  solo_options.batch_probes = false;

  auto batched = RingClient::Make(ring.members(), batched_options);
  auto solo = RingClient::Make(ring.members(), solo_options);
  ASSERT_TRUE(batched.ok());
  ASSERT_TRUE(solo.ok());

  const PartitionKey published{"T", "a", Range(100, 200)};
  ASSERT_TRUE((*batched)->Publish(published, ring.members()[0]).ok());

  auto with_batches = (*batched)->Lookup(published);
  auto without = (*solo)->Lookup(published);
  ASSERT_TRUE(with_batches.ok());
  ASSERT_TRUE(without.ok());

  // 5 probes over at most 2 owners: some owner gets a real batch.
  EXPECT_GE(with_batches->batched_probes, 2);
  EXPECT_EQ(without->batched_probes, 0);

  // Same answers either way: batching is a wire optimization.
  ASSERT_FALSE(with_batches->ranked.empty());
  ASSERT_EQ(with_batches->ranked.size(), without->ranked.size());
  EXPECT_EQ(with_batches->ranked.front().descriptor.key, published);
  EXPECT_EQ(without->ranked.front().descriptor.key, published);
  EXPECT_EQ(with_batches->probes_failed, 0);
  EXPECT_EQ(without->probes_failed, 0);
}

TEST(RingClientTest, ShedReplicaFailsOverWithoutRetries) {
  // A peer at capacity sheds everything with ResourceExhausted. The
  // shed is not transient loss: the client must fail over to the next
  // replica immediately — zero retransmissions — and the lookup still
  // answers from the healthy peer.
  MiniRing honest(1);
  auto shedding = ServerThread::Start([](MsgType, std::string_view) {
    return Result<std::string>(Status::ResourceExhausted("work queue full"));
  });
  ASSERT_NE(shedding, nullptr);

  RingClientOptions options = SmallLshOptions();
  options.descriptor_replication = 2;
  auto client = RingClient::Make({shedding->address(), honest.members()[0]},
                                 options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  const PartitionKey published{"T", "a", Range(100, 200)};
  ASSERT_TRUE((*client)->Publish(published, honest.members()[0]).ok());

  auto outcome = (*client)->Lookup(published);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->probes_failed, 0);
  ASSERT_FALSE(outcome->ranked.empty());
  EXPECT_EQ(outcome->ranked.front().descriptor.key, published);
  EXPECT_EQ((*client)->transport().rpc_stats().retransmits, 0u);
}

}  // namespace
}  // namespace rpc
}  // namespace p2prange
