// The Transport seam: SimTransport must charge the wrapped simulator
// exactly as direct SimNetwork use always did (the bit-for-bit
// guarantee the refactor rests on), and the request/response layer —
// envelopes, handlers, deadlines, the node service, the ring view —
// must behave identically no matter which transport carries it.
#include <gtest/gtest.h>
#include <stdlib.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>

#include "chord/ring.h"
#include "net/sim_network.h"
#include "rpc/multi_op.h"
#include "rpc/node_service.h"
#include "rpc/sim_transport.h"

namespace p2prange {
namespace rpc {
namespace {

NetAddress Addr(uint32_t host, uint16_t port) {
  NetAddress a;
  a.host = host;
  a.port = port;
  return a;
}

TEST(SimTransportTest, DeliveryMatchesRawSimNetworkBitForBit) {
  // Same latency model, same seed, same call sequence: every latency
  // draw and every counter must agree with a bare SimNetwork.
  LatencyModel model;
  model.loss_rate = 0.1;
  SimNetwork raw(model, 977);
  SimTransport transport(model, 977);

  const NetAddress a = Addr(1, 10), b = Addr(2, 20);
  raw.Register(a);
  raw.Register(b);
  transport.Register(a);
  transport.Register(b);

  for (int i = 0; i < 200; ++i) {
    const uint64_t payload = static_cast<uint64_t>(i) * 37 % 5000;
    auto expect = raw.DeliverBytes(a, b, payload);
    auto got = transport.DeliverBytes(a, b, payload);
    ASSERT_EQ(expect.ok(), got.ok()) << "call " << i;
    if (expect.ok()) {
      EXPECT_EQ(*expect, *got) << "call " << i;
    } else {
      EXPECT_EQ(expect.status().code(), got.status().code());
    }
  }
  EXPECT_EQ(raw.stats().messages, transport.stats().messages);
  EXPECT_EQ(raw.stats().bytes, transport.stats().bytes);
  EXPECT_EQ(raw.stats().total_latency_ms, transport.stats().total_latency_ms);
  EXPECT_EQ(raw.stats().lost_messages, transport.stats().lost_messages);
  EXPECT_EQ(raw.stats().failed_deliveries, transport.stats().failed_deliveries);
}

TEST(SimTransportTest, LivenessAndRegistryForward) {
  SimTransport transport;
  const NetAddress a = Addr(9, 99);
  EXPECT_FALSE(transport.IsRegistered(a));
  transport.Register(a);
  EXPECT_TRUE(transport.IsRegistered(a));
  EXPECT_TRUE(transport.IsAlive(a));
  ASSERT_TRUE(transport.SetAlive(a, false).ok());
  EXPECT_FALSE(transport.IsAlive(a));
  EXPECT_EQ(transport.num_registered(), 1u);
  auto r = transport.Deliver(Addr(1, 1), a);
  EXPECT_TRUE(r.status().IsUnavailable());
}

TEST(SimTransportTest, CallRoundTripsThroughHandler) {
  SimTransport transport;
  const NetAddress client = Addr(1, 1), server = Addr(2, 2);
  transport.Register(client);
  transport.Register(server);
  transport.RegisterHandler(server,
                            [](MsgType type, std::string_view body) {
                              EXPECT_EQ(type, MsgType::kPing);
                              return Result<std::string>(std::string(body) +
                                                         " pong");
                            });
  auto result = transport.Call(client, server, MsgType::kPing, "ping");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->body, "ping pong");
  EXPECT_GT(result->latency_ms, 0.0);
  EXPECT_EQ(transport.rpc_stats().requests_sent, 1u);
  EXPECT_EQ(transport.rpc_stats().requests_served, 1u);
  EXPECT_EQ(transport.rpc_stats().responses_received, 1u);
  // Two legs were charged to the simulated network.
  EXPECT_EQ(transport.stats().messages, 2u);
}

TEST(SimTransportTest, HandlerErrorPropagatesToCaller) {
  SimTransport transport;
  const NetAddress client = Addr(1, 1), server = Addr(2, 2);
  transport.Register(client);
  transport.Register(server);
  transport.RegisterHandler(server, [](MsgType, std::string_view) {
    return Result<std::string>(Status::NotFound("no such bucket"));
  });
  auto result = transport.Call(client, server, MsgType::kProbeBucket, "");
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST(SimTransportTest, MissedDeadlineIsIOErrorAndCounted) {
  LatencyModel slow;
  slow.base_ms = 50.0;
  slow.jitter_ms = 0.0;
  SimTransport transport(slow, 3);
  const NetAddress client = Addr(1, 1), server = Addr(2, 2);
  transport.Register(client);
  transport.Register(server);
  transport.RegisterHandler(server, [](MsgType, std::string_view) {
    return Result<std::string>(std::string("late"));
  });
  Transport::CallOptions options;
  options.deadline_ms = 10.0;  // two 50ms legs cannot fit
  auto result =
      transport.Call(client, server, MsgType::kPing, "", options);
  EXPECT_TRUE(result.status().IsIOError());
  EXPECT_EQ(transport.rpc_stats().timeouts, 1u);
  options.deadline_ms = 1000.0;
  EXPECT_TRUE(
      transport.Call(client, server, MsgType::kPing, "", options).ok());
}

TEST(ChordRingTest, DefaultTransportPreservesSimBehaviour) {
  // Two rings, same seed: one built through the refactored
  // Transport-owning constructor, one compared against known counter
  // behaviour. Lookup results and message accounting must be exactly
  // reproducible.
  auto ring1 = chord::ChordRing::Make(32, 99);
  auto ring2 = chord::ChordRing::Make(32, 99);
  ASSERT_TRUE(ring1.ok());
  ASSERT_TRUE(ring2.ok());
  auto origin1 = ring1->RandomAliveAddress();
  auto origin2 = ring2->RandomAliveAddress();
  ASSERT_TRUE(origin1.ok());
  ASSERT_TRUE(origin2.ok());
  ASSERT_EQ(*origin1, *origin2);
  for (uint32_t target = 0; target < 2000000000u; target += 123456789u) {
    auto r1 = ring1->Lookup(*origin1, target);
    auto r2 = ring2->Lookup(*origin2, target);
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r2.ok());
    EXPECT_EQ(r1->owner.addr, r2->owner.addr);
    EXPECT_EQ(r1->hops, r2->hops);
    EXPECT_EQ(r1->latency_ms, r2->latency_ms);
  }
  EXPECT_EQ(ring1->network().stats().messages,
            ring2->network().stats().messages);
  EXPECT_EQ(ring1->network().stats().total_latency_ms,
            ring2->network().stats().total_latency_ms);
}

TEST(ChordRingTest, InjectedTransportIsUsed) {
  auto transport = std::make_unique<SimTransport>();
  SimTransport* raw = transport.get();
  auto ring =
      chord::ChordRing::Make(8, 5, chord::ChordConfig{}, std::move(transport));
  ASSERT_TRUE(ring.ok());
  EXPECT_EQ(&ring->network(), raw);
  EXPECT_EQ(raw->num_registered(), 8u);
}

// --- RingView ----------------------------------------------------------

TEST(RingViewTest, OwnerIsSuccessorAndWraps) {
  std::vector<NetAddress> members = {Addr(0x7F000001, 7001),
                                     Addr(0x7F000001, 7002),
                                     Addr(0x7F000001, 7003)};
  auto view = RingView::Make(members);
  ASSERT_TRUE(view.ok());
  ASSERT_EQ(view->size(), 3u);
  const auto& sorted = view->members();
  // Exactly at a member id: that member owns it.
  EXPECT_EQ(view->Owner(sorted[1].first), sorted[1].second);
  // Just past a member: the next one owns it.
  EXPECT_EQ(view->Owner(sorted[1].first + 1), sorted[2].second);
  // Past the largest id: wraps to the smallest.
  EXPECT_EQ(view->Owner(sorted[2].first + 1), sorted[0].second);
}

TEST(RingViewTest, ReplicasAreDistinctSuccessors) {
  std::vector<NetAddress> members;
  for (uint16_t p = 0; p < 5; ++p) members.push_back(Addr(0x0A000001, 9000 + p));
  auto view = RingView::Make(members);
  ASSERT_TRUE(view.ok());
  const auto replicas = view->Replicas(view->members()[0].first, 3);
  ASSERT_EQ(replicas.size(), 3u);
  std::set<std::string> distinct;
  for (const auto& r : replicas) distinct.insert(r.ToString());
  EXPECT_EQ(distinct.size(), 3u);
  EXPECT_EQ(replicas[0], view->members()[0].second);
  // More replicas than members: clamped, still distinct.
  EXPECT_EQ(view->Replicas(0, 99).size(), 5u);
}

TEST(RingViewTest, RejectsEmptyAndDuplicateMembers) {
  EXPECT_FALSE(RingView::Make({}).ok());
  const NetAddress a = Addr(1, 2);
  EXPECT_FALSE(RingView::Make({a, a}).ok());
}

// --- Protocol codecs ---------------------------------------------------

TEST(ProtocolCodecTest, ProbeRequestAndResponseRoundTrip) {
  ProbeBucketRequest req;
  req.bucket = 0xCAFEBABE;
  req.query = PartitionKey{"T", "a", Range(10, 90)};
  req.criterion = MatchCriterion::kContainment;
  auto decoded = DecodeProbeBucketRequest(EncodeProbeBucketRequest(req));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->bucket, req.bucket);
  EXPECT_EQ(decoded->query, req.query);
  EXPECT_EQ(decoded->criterion, req.criterion);

  MatchCandidate c;
  c.descriptor = PartitionDescriptor{req.query, Addr(7, 7)};
  c.similarity = 0.123456789;
  c.exact = true;
  auto resp = DecodeProbeBucketResponse(EncodeProbeBucketResponse(c));
  ASSERT_TRUE(resp.ok());
  ASSERT_TRUE(resp->has_value());
  EXPECT_EQ((*resp)->descriptor, c.descriptor);
  EXPECT_EQ((*resp)->similarity, c.similarity);  // bit-exact
  EXPECT_TRUE((*resp)->exact);

  auto none = DecodeProbeBucketResponse(
      EncodeProbeBucketResponse(std::nullopt));
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(none->has_value());
}

TEST(ProtocolCodecTest, StoreDescriptorRequestRoundTrip) {
  StoreDescriptorRequest req;
  req.bucket = 42;
  req.descriptor =
      PartitionDescriptor{PartitionKey{"R", "x", Range(5, 6)}, Addr(3, 30)};
  auto decoded =
      DecodeStoreDescriptorRequest(EncodeStoreDescriptorRequest(req));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->bucket, req.bucket);
  EXPECT_EQ(decoded->descriptor, req.descriptor);
  // Trailing bytes are rejected (a frame is exactly one message).
  EXPECT_FALSE(
      DecodeStoreDescriptorRequest(EncodeStoreDescriptorRequest(req) + "x")
          .ok());
}

// --- NodeService over SimTransport -------------------------------------

TEST(NodeServiceTest, ServesProtocolOverAnyTransport) {
  const NetAddress node_addr = Addr(0x7F000001, 7100);
  const NetAddress client = Addr(0x7F000001, 7999);
  auto service = NodeService::Make(node_addr, NodeServiceOptions{});
  ASSERT_TRUE(service.ok());

  SimTransport transport;
  transport.Register(node_addr);
  transport.Register(client);
  transport.RegisterHandler(node_addr,
                            [&](MsgType type, std::string_view body) {
                              return (*service)->Handle(type, body);
                            });

  // Store a descriptor, then probe its bucket.
  StoreDescriptorRequest store;
  store.bucket = 7;
  store.descriptor =
      PartitionDescriptor{PartitionKey{"T", "a", Range(100, 200)}, client};
  auto stored =
      transport.Call(client, node_addr, MsgType::kStoreDescriptor,
                     EncodeStoreDescriptorRequest(store));
  ASSERT_TRUE(stored.ok());

  ProbeBucketRequest probe;
  probe.bucket = 7;
  probe.query = PartitionKey{"T", "a", Range(110, 190)};
  auto answer = transport.Call(client, node_addr, MsgType::kProbeBucket,
                               EncodeProbeBucketRequest(probe));
  ASSERT_TRUE(answer.ok());
  auto candidate = DecodeProbeBucketResponse(answer->body);
  ASSERT_TRUE(candidate.ok());
  ASSERT_TRUE(candidate->has_value());
  EXPECT_EQ((*candidate)->descriptor, store.descriptor);

  // An empty bucket answers "no candidate", not an error.
  probe.bucket = 8;
  auto miss = transport.Call(client, node_addr, MsgType::kProbeBucket,
                             EncodeProbeBucketRequest(probe));
  ASSERT_TRUE(miss.ok());
  auto none = DecodeProbeBucketResponse(miss->body);
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(none->has_value());

  // Garbage bodies are clean errors, and counted.
  auto bad = transport.Call(client, node_addr, MsgType::kStoreDescriptor,
                            "\xFF\xFF garbage");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ((*service)->counters().bad_requests, 1u);
  EXPECT_EQ((*service)->counters().descriptors_stored, 1u);
  EXPECT_EQ((*service)->counters().probes_served, 2u);
}

TEST(NodeServiceTest, MetricsJsonIsWellFormedSingleLine) {
  auto service = NodeService::Make(Addr(1, 1), NodeServiceOptions{});
  ASSERT_TRUE(service.ok());
  const std::string json =
      (*service)->MetricsJson(NetworkStats{}, RpcStats{});
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"node\":"), std::string::npos);
  EXPECT_NE(json.find("\"network\":"), std::string::npos);
  EXPECT_NE(json.find("\"rpc\":"), std::string::npos);
  EXPECT_NE(json.find("\"timeouts\":0"), std::string::npos);
}

TEST(RpcStatsTest, JsonCoversEveryCounter) {
  RpcStats s;
  s.requests_sent = 1;
  s.timeouts = 2;
  s.retransmits = 3;
  s.bytes_in = 4;
  s.bytes_out = 5;
  s.open_connections = 6;
  s.accepts_shed = 7;
  s.slow_readers_evicted = 8;
  s.idle_closed = 9;
  const std::string json = s.ToJson();
  EXPECT_NE(json.find("\"requests_sent\":1"), std::string::npos);
  EXPECT_NE(json.find("\"timeouts\":2"), std::string::npos);
  EXPECT_NE(json.find("\"retransmits\":3"), std::string::npos);
  EXPECT_NE(json.find("\"bytes_in\":4"), std::string::npos);
  EXPECT_NE(json.find("\"bytes_out\":5"), std::string::npos);
  EXPECT_NE(json.find("\"open_connections\":6"), std::string::npos);
  EXPECT_NE(json.find("\"accepts_shed\":7"), std::string::npos);
  EXPECT_NE(json.find("\"slow_readers_evicted\":8"), std::string::npos);
  EXPECT_NE(json.find("\"idle_closed\":9"), std::string::npos);
}

TEST(NodeServiceTest, MultiOpRunsEverySlotAndIsolatesFailures) {
  auto service = NodeService::Make(Addr(1, 1), NodeServiceOptions{});
  ASSERT_TRUE(service.ok());

  StoreDescriptorRequest store;
  store.bucket = 7;
  store.descriptor =
      PartitionDescriptor{PartitionKey{"T", "a", Range(100, 200)}, Addr(9, 9)};
  ProbeBucketRequest probe;
  probe.bucket = 7;
  probe.query = PartitionKey{"T", "a", Range(110, 190)};

  // One batch: a store, a probe of the stored bucket, a garbage body.
  // The garbage fails its own slot only.
  MultiOpRequest batch;
  batch.ops.push_back(
      MultiOp{MsgType::kStoreDescriptor, EncodeStoreDescriptorRequest(store)});
  batch.ops.push_back(
      MultiOp{MsgType::kProbeBucket, EncodeProbeBucketRequest(probe)});
  batch.ops.push_back(MultiOp{MsgType::kProbeBucket, "\xFF\xFF garbage"});

  auto raw = (*service)->Handle(MsgType::kMultiOp,
                                EncodeMultiOpRequest(batch));
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  auto resp = DecodeMultiOpResponse(*raw);
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->results.size(), 3u);
  EXPECT_EQ(resp->results[0].status, StatusCode::kOk);
  EXPECT_EQ(resp->results[1].status, StatusCode::kOk);
  auto candidate = DecodeProbeBucketResponse(resp->results[1].body);
  ASSERT_TRUE(candidate.ok());
  ASSERT_TRUE(candidate->has_value());
  EXPECT_EQ((*candidate)->descriptor, store.descriptor);
  EXPECT_NE(resp->results[2].status, StatusCode::kOk);

  EXPECT_EQ((*service)->counters().multi_ops, 1u);
  EXPECT_EQ((*service)->counters().descriptors_stored, 1u);
  // The garbage slot was itself a bad request.
  EXPECT_EQ((*service)->counters().bad_requests, 1u);

  // A batch that does not decode is one more bad request, no partial
  // work.
  EXPECT_FALSE((*service)->Handle(MsgType::kMultiOp, "junk").ok());
  EXPECT_EQ((*service)->counters().bad_requests, 2u);
}

TEST(NodeServiceTest, HandleIsSafeUnderConcurrentWorkers) {
  // The executor hands one Handle() call to each worker thread; the
  // data plane must take interleaved stores, probes, fetches, and
  // metrics reads without tearing. TSan runs this suite.
  auto service = NodeService::Make(Addr(1, 1), NodeServiceOptions{});
  ASSERT_TRUE(service.ok());
  NodeService* raw = service->get();

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 200;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([raw, t, &failures] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        StoreDescriptorRequest store;
        store.bucket = static_cast<uint32_t>(i % 17);
        store.descriptor = PartitionDescriptor{
            PartitionKey{"T", "a",
                         Range(t * 1000 + i, t * 1000 + i + 10)},
            Addr(8, static_cast<uint16_t>(t + 1))};
        if (!raw->Handle(MsgType::kStoreDescriptor,
                         EncodeStoreDescriptorRequest(store))
                 .ok()) {
          ++failures;
        }
        ProbeBucketRequest probe;
        probe.bucket = static_cast<uint32_t>(i % 17);
        probe.query = PartitionKey{"T", "a", Range(50, 60)};
        if (!raw->Handle(MsgType::kProbeBucket,
                         EncodeProbeBucketRequest(probe))
                 .ok()) {
          ++failures;
        }
        if (i % 50 == 0) {
          (void)raw->MetricsJson(NetworkStats{}, RpcStats{});
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(failures, 0);
  EXPECT_EQ(raw->counters().descriptors_stored,
            static_cast<uint64_t>(kThreads * kOpsPerThread));
  EXPECT_EQ(raw->counters().probes_served,
            static_cast<uint64_t>(kThreads * kOpsPerThread));
}

// Regression for the lock-discipline fix the annotation pass surfaced:
// LoadDurable mutated the store and flushed it without holding
// data_mu_. Harmless in practice only because Make() ran before the
// first worker — the kind of implicit argument the gate exists to
// retire. Recovery must still work end-to-end under the lock.
TEST(NodeServiceTest, DurableRecoveryRestoresDescriptors) {
  std::string tmpl = ::testing::TempDir() + "node_service_wal_XXXXXX";
  char* made = ::mkdtemp(tmpl.data());
  ASSERT_NE(made, nullptr);
  const std::string wal_dir = made;

  NodeServiceOptions options;
  options.wal_dir = wal_dir;
  const NetAddress self = Addr(9, 90);
  {
    auto service = NodeService::Make(self, options);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    ASSERT_TRUE((*service)
                    ->InsertDescriptor(
                        11, PartitionDescriptor{
                                PartitionKey{"T", "a", Range(1, 5)}, self})
                    .ok());
    ASSERT_TRUE((*service)
                    ->InsertDescriptor(
                        12, PartitionDescriptor{
                                PartitionKey{"T", "b", Range(6, 9)}, self})
                    .ok());
  }

  // A fresh incarnation over the same wal_dir recovers both entries.
  auto revived = NodeService::Make(self, options);
  ASSERT_TRUE(revived.ok()) << revived.status().ToString();
  EXPECT_EQ((*revived)->recovery().descriptors_restored, 2u);
  const auto entries = (*revived)->SnapshotEntries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].first, 11u);
  EXPECT_EQ(entries[1].first, 12u);
}

}  // namespace
}  // namespace rpc
}  // namespace p2prange
