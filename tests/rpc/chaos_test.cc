// ChaosPlan: grammar, window/link matching, effect merging, and
// deterministic shaper seeding (DESIGN.md §11).
#include "rpc/chaos.h"

#include <gtest/gtest.h>

namespace p2prange {
namespace rpc {
namespace {

ChaosPlan MustParse(std::string_view text) {
  auto plan = ChaosPlan::Parse(text);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return plan.ok() ? *plan : ChaosPlan{};
}

TEST(ChaosPlanTest, ParsesEveryActionAndRoundTrips) {
  const ChaosPlan plan = MustParse(
      "# a comment\n"
      "seed=42\n"
      "\n"
      "0..1000 link=* delay ms=20 jitter=5\n"
      "0..inf link=0->1 drop p=0.25\n"
      "500..inf link=*->2 corrupt p=0.01\n"
      "0..inf link=c->0 rate bps=100\n"
      "0..inf link=1->* reset after=4096\n"
      "100..200 link=2->0 blackhole\n"
      "1000..2000 link=* partition groups=0,1|2,3\n");
  EXPECT_EQ(plan.seed, 42u);
  ASSERT_EQ(plan.rules.size(), 7u);
  EXPECT_EQ(plan.rules[0].action, ChaosAction::kDelay);
  EXPECT_EQ(plan.rules[1].action, ChaosAction::kDrop);
  EXPECT_EQ(plan.rules[2].action, ChaosAction::kCorrupt);
  EXPECT_EQ(plan.rules[3].action, ChaosAction::kRate);
  EXPECT_EQ(plan.rules[4].action, ChaosAction::kReset);
  EXPECT_EQ(plan.rules[5].action, ChaosAction::kBlackhole);
  EXPECT_EQ(plan.rules[6].action, ChaosAction::kPartition);

  // ToString() -> Parse() is the identity on the rule list.
  const ChaosPlan reparsed = MustParse(plan.ToString());
  ASSERT_EQ(reparsed.rules.size(), plan.rules.size());
  EXPECT_EQ(reparsed.seed, plan.seed);
  for (size_t i = 0; i < plan.rules.size(); ++i) {
    EXPECT_EQ(reparsed.rules[i].ToString(), plan.rules[i].ToString()) << i;
  }
}

TEST(ChaosPlanTest, RejectsMalformedLinesWithLineNumbers) {
  const char* bad[] = {
      "0..inf delay ms=5",                     // missing link=
      "0..inf link=* warp speed=9",            // unknown action
      "5..1 link=* blackhole",                 // empty window
      "0..inf link=*->c drop p=0.5",           // client as destination
      "0..inf link=* drop p=1.5",              // probability out of range
      "0..inf link=* rate bps=0",              // rate must be positive
      "0..inf link=* reset after=0",           // reset needs >= 1 byte
      "0..inf link=* partition groups=0,1|1",  // overlapping groups
      "0..inf link=* delay",                   // delay needs ms=
      "nonsense",                              // not a rule at all
  };
  for (const char* text : bad) {
    auto plan = ChaosPlan::Parse(text);
    EXPECT_FALSE(plan.ok()) << "accepted: " << text;
    EXPECT_NE(plan.status().ToString().find("line 1"), std::string::npos)
        << plan.status().ToString();
  }
}

TEST(ChaosPlanTest, WindowGatesTheEffectAndExpiryIsTheHeal) {
  const ChaosPlan plan = MustParse("100..200 link=* blackhole\n");
  EXPECT_FALSE(plan.EffectsAt(99.0, 0, 1).blackhole);
  EXPECT_TRUE(plan.EffectsAt(100.0, 0, 1).blackhole);
  EXPECT_TRUE(plan.EffectsAt(199.9, 0, 1).blackhole);
  // End of window == heal: no tear-down step required.
  EXPECT_FALSE(plan.EffectsAt(200.0, 0, 1).blackhole);
  EXPECT_FALSE(plan.EffectsAt(1e9, 0, 1).Any());
}

TEST(ChaosPlanTest, DirectedLinkSelectorsMatchAsymmetrically) {
  const ChaosPlan plan = MustParse("0..inf link=0->1 drop p=0.5\n");
  EXPECT_GT(plan.EffectsAt(0.0, 0, 1).drop_prob, 0.0);
  // The reverse direction and unrelated links are untouched: simplex.
  EXPECT_FALSE(plan.EffectsAt(0.0, 1, 0).Any());
  EXPECT_FALSE(plan.EffectsAt(0.0, 0, 2).Any());
  EXPECT_FALSE(plan.EffectsAt(0.0, kChaosClient, 1).Any());

  const ChaosPlan wild = MustParse("0..inf link=*->1 delay ms=7\n");
  EXPECT_EQ(wild.EffectsAt(0.0, 0, 1).delay_ms, 7.0);
  EXPECT_EQ(wild.EffectsAt(0.0, kChaosClient, 1).delay_ms, 7.0);
  EXPECT_FALSE(wild.EffectsAt(0.0, 1, 0).Any());

  const ChaosPlan from_client = MustParse("0..inf link=c->0 rate bps=10\n");
  EXPECT_EQ(from_client.EffectsAt(0.0, kChaosClient, 0).bytes_per_s, 10.0);
  EXPECT_FALSE(from_client.EffectsAt(0.0, 1, 0).Any());
}

TEST(ChaosPlanTest, PartitionCutsBothDirectionsAcrossGroupsOnly) {
  const ChaosPlan plan =
      MustParse("0..inf link=* partition groups=0,1|2\n");
  // Across the cut, both ways.
  EXPECT_TRUE(plan.EffectsAt(0.0, 0, 2).blackhole);
  EXPECT_TRUE(plan.EffectsAt(0.0, 2, 0).blackhole);
  EXPECT_TRUE(plan.EffectsAt(0.0, 1, 2).blackhole);
  // Within a side: untouched.
  EXPECT_FALSE(plan.EffectsAt(0.0, 0, 1).Any());
  EXPECT_FALSE(plan.EffectsAt(0.0, 1, 0).Any());
  // Clients are not members of either side; they still reach everyone.
  EXPECT_FALSE(plan.EffectsAt(0.0, kChaosClient, 0).Any());
  EXPECT_FALSE(plan.EffectsAt(0.0, kChaosClient, 2).Any());
}

TEST(ChaosPlanTest, OverlappingRulesMergeConservatively) {
  const ChaosPlan plan = MustParse(
      "0..inf link=* delay ms=10\n"
      "0..inf link=0->1 delay ms=15\n"
      "0..inf link=* drop p=0.1\n"
      "0..inf link=0->1 drop p=0.4\n"
      "0..inf link=* rate bps=1000\n"
      "0..inf link=0->1 rate bps=100\n"
      "0..inf link=* reset after=9000\n"
      "0..inf link=0->1 reset after=100\n");
  const LinkEffects fx = plan.EffectsAt(0.0, 0, 1);
  EXPECT_EQ(fx.delay_ms, 25.0);         // delays add
  EXPECT_EQ(fx.drop_prob, 0.4);         // probabilities take the max
  EXPECT_EQ(fx.bytes_per_s, 100.0);     // rates take the tightest
  EXPECT_EQ(fx.reset_after_bytes, 100u);  // resets take the earliest
  const LinkEffects other = plan.EffectsAt(0.0, 1, 0);
  EXPECT_EQ(other.delay_ms, 10.0);
  EXPECT_EQ(other.drop_prob, 0.1);
  EXPECT_EQ(other.bytes_per_s, 1000.0);
  EXPECT_EQ(other.reset_after_bytes, 9000u);
}

TEST(ChaosPlanTest, ShaperSeedIsStablePerLinkAndSerial) {
  const ChaosPlan plan = MustParse("seed=7\n0..inf link=* delay ms=1\n");
  const uint64_t s1 = plan.ShaperSeed(0, 1, 1);
  // Deterministic: the same (seed, link, serial) always hashes alike.
  EXPECT_EQ(s1, plan.ShaperSeed(0, 1, 1));
  // And any coordinate change moves it.
  EXPECT_NE(s1, plan.ShaperSeed(1, 0, 1));
  EXPECT_NE(s1, plan.ShaperSeed(0, 1, 2));
  ChaosPlan reseeded = plan;
  reseeded.seed = 8;
  EXPECT_NE(s1, reseeded.ShaperSeed(0, 1, 1));
  // Never zero (the Rng rejects a zero seed).
  EXPECT_NE(plan.ShaperSeed(0, 0, 0), 0u);
}

TEST(ChaosPlanTest, EmptyPlanShapesNothing) {
  const ChaosPlan plan = MustParse("# only comments\n\n");
  EXPECT_TRUE(plan.empty());
  EXPECT_FALSE(plan.EffectsAt(0.0, 0, 1).Any());
  EXPECT_FALSE(plan.EffectsAt(5000.0, kChaosClient, 0).Any());
}

}  // namespace
}  // namespace rpc
}  // namespace p2prange
