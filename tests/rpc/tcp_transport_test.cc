// The real transport over real sockets: loopback round trips, call-id
// multiplexing, deadline timeouts, refused connections, corrupt
// streams — each observable in the RpcStats counters the daemon
// exports. Servers run on a background thread; every port is an
// ephemeral kernel pick so parallel test jobs never collide.
#include <gtest/gtest.h>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <thread>

#include "common/memory.h"
#include "rpc/frame.h"
#include "rpc/message.h"
#include "rpc/node_service.h"
#include "rpc/ring_client.h"
#include "rpc/tcp.h"
#include "rpc/tcp_transport.h"

namespace p2prange {
namespace rpc {
namespace {

NetAddress Loopback(uint16_t port) {
  NetAddress a;
  a.host = 0x7F000001;  // 127.0.0.1
  a.port = port;
  return a;
}

/// A TcpServer polled on a background thread until stopped.
class ServerThread {
 public:
  static std::unique_ptr<ServerThread> Start(TcpServer::Handler handler) {
    return Start(std::move(handler), TcpServer::Options{});
  }

  static std::unique_ptr<ServerThread> Start(TcpServer::Handler handler,
                                             TcpServer::Options options) {
    auto server =
        TcpServer::Listen(Loopback(0), std::move(handler), options);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    if (!server.ok()) return nullptr;
    return WrapUnique(new ServerThread(std::move(*server)));
  }

  ~ServerThread() { Stop(); }

  /// Joins the poll loop. Call before asserting on stats(): the loop
  /// thread mutates the counters, so reads race until it has stopped.
  void Stop() {
    if (thread_.joinable()) {
      stop_ = true;
      thread_.join();
    }
  }

  const NetAddress& address() const { return server_.address(); }
  /// Safe to read after the loop stopped; racy-but-monotonic before.
  const RpcStats& stats() const { return server_.stats(); }

 private:
  explicit ServerThread(TcpServer server) : server_(std::move(server)) {
    thread_ = std::thread([this] {
      while (!stop_) {
        const Status st = server_.PollOnce(/*timeout_ms=*/20);
        if (!st.ok()) break;
      }
    });
  }

  TcpServer server_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

TEST(TcpTransportTest, EchoRoundTripOverLoopback) {
  auto server = ServerThread::Start(
      [](MsgType type, std::string_view body) {
        EXPECT_EQ(type, MsgType::kPing);
        return Result<std::string>(std::string(body));
      });
  ASSERT_NE(server, nullptr);

  TcpTransport transport;
  transport.Register(server->address());
  auto result = transport.Call(NetAddress{}, server->address(),
                               MsgType::kPing, "echo me");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->body, "echo me");
  EXPECT_GE(result->latency_ms, 0.0);
  EXPECT_EQ(transport.rpc_stats().requests_sent, 1u);
  EXPECT_EQ(transport.rpc_stats().responses_received, 1u);
  EXPECT_EQ(transport.rpc_stats().connections_opened, 1u);
  EXPECT_GT(transport.rpc_stats().bytes_out, 0u);
  EXPECT_GT(transport.stats().bytes, 0u);
  EXPECT_TRUE(transport.IsAlive(server->address()));
}

TEST(TcpTransportTest, DeliverBytesActuallyCrossesTheWire) {
  std::atomic<size_t> seen{0};
  auto server = ServerThread::Start(
      [&seen](MsgType, std::string_view body) {
        seen = body.size();
        return Result<std::string>(std::string(body));
      });
  ASSERT_NE(server, nullptr);
  TcpTransport transport;
  auto latency =
      transport.DeliverBytes(NetAddress{}, server->address(), 4096);
  ASSERT_TRUE(latency.ok());
  EXPECT_EQ(seen, 4096u);
  EXPECT_GE(*latency, 0.0);
}

TEST(TcpTransportTest, PipelinedCallsMatchResponsesByCallId) {
  auto server = ServerThread::Start(
      [](MsgType, std::string_view body) {
        return Result<std::string>("re:" + std::string(body));
      });
  ASSERT_NE(server, nullptr);

  TcpTransport transport;
  auto first = transport.StartCall(server->address(), MsgType::kPing, "one");
  auto second = transport.StartCall(server->address(), MsgType::kPing, "two");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_NE(*first, *second);

  // Await them out of order: the second's response forces the first's
  // to be parked, then retrieved without touching the socket again.
  auto r2 = transport.WaitCall(server->address(), *second, 2000.0);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r2->body, "re:two");
  auto r1 = transport.WaitCall(server->address(), *first, 2000.0);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(r1->body, "re:one");
  // One connection carried both calls.
  EXPECT_EQ(transport.rpc_stats().connections_opened, 1u);
}

TEST(TcpTransportTest, ServerHandlerErrorArrivesAsThatStatus) {
  auto server = ServerThread::Start([](MsgType, std::string_view) {
    return Result<std::string>(Status::NotFound("no partition here"));
  });
  ASSERT_NE(server, nullptr);
  TcpTransport transport;
  auto result = transport.Call(NetAddress{}, server->address(),
                               MsgType::kFetchPartition, "");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
  EXPECT_NE(result.status().message().find("no partition here"),
            std::string::npos);
}

TEST(TcpTransportTest, ConnectRefusedIsUnavailableAndCounted) {
  // Bind-then-close reserves a port with no listener behind it.
  auto probe = Listen(Loopback(0));
  ASSERT_TRUE(probe.ok());
  const NetAddress dead = probe->bound;
  ::close(probe->fd);

  TcpTransport transport;
  transport.Register(dead);
  auto result = transport.Call(NetAddress{}, dead, MsgType::kPing, "");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsUnavailable());
  EXPECT_EQ(transport.rpc_stats().connect_failures, 1u);
  EXPECT_FALSE(transport.IsAlive(dead));
}

TEST(TcpTransportTest, SilentServerMissesDeadlineAsIOError) {
  // A listener that accepts into its backlog but never reads or
  // replies: the connect succeeds, the call must die by deadline.
  auto silent = Listen(Loopback(0));
  ASSERT_TRUE(silent.ok());

  TcpTransport::Options options;
  options.connect_timeout_ms = 1000;
  TcpTransport transport(options);
  Transport::CallOptions call_options;
  call_options.deadline_ms = 120.0;
  auto result = transport.Call(NetAddress{}, silent->bound, MsgType::kPing,
                               "anyone there?", call_options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
  EXPECT_EQ(transport.rpc_stats().timeouts, 1u);
  ::close(silent->fd);
}

TEST(TcpTransportTest, CorruptResponseStreamIsFrameErrorAndIOError) {
  // A hand-rolled "server" that answers any request with garbage that
  // can never pass the frame CRC.
  auto listener = Listen(Loopback(0));
  ASSERT_TRUE(listener.ok());
  const int listen_fd = listener->fd;
  std::thread evil([listen_fd] {
    pollfd pfd{listen_fd, POLLIN, 0};
    if (::poll(&pfd, 1, 5000) <= 0) return;
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) return;
    char buf[1024];
    (void)!::read(conn, buf, sizeof(buf));
    const char garbage[] = "\x10\x00\x00\x00\xde\xad\xbe\xefgarbagegarbage!!";
    (void)!::write(conn, garbage, sizeof(garbage) - 1);
    ::shutdown(conn, SHUT_WR);
    ::usleep(200 * 1000);
    ::close(conn);
  });

  TcpTransport transport;
  Transport::CallOptions call_options;
  call_options.deadline_ms = 2000.0;
  auto result = transport.Call(NetAddress{}, listener->bound, MsgType::kPing,
                               "hello", call_options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
  EXPECT_EQ(transport.rpc_stats().frame_errors, 1u);
  evil.join();
  ::close(listen_fd);
}

// --- Transport resource hardening (DESIGN.md §11): hostile byte
// --- streams against the deadline, write-cap, and accept guards.
// ----------------------------------------------------------------------

/// Blocking loopback connect for hand-rolled hostile clients.
int RawConnect(const NetAddress& to) {
  auto started = StartConnect(to);
  EXPECT_TRUE(started.ok()) << started.status().ToString();
  if (!started.ok()) return -1;
  const Status fin = FinishConnect(*started, 2000);
  EXPECT_TRUE(fin.ok()) << fin.ToString();
  if (!fin.ok()) {
    ::close(*started);
    return -1;
  }
  return *started;
}

/// Waits until recv() reports EOF/reset on `fd` (the server hung up),
/// or fails the test after ~5s.
void AwaitPeerClose(int fd) {
  for (int i = 0; i < 500; ++i) {
    char c;
    const ssize_t n = ::recv(fd, &c, 1, MSG_DONTWAIT);
    if (n == 0) return;                       // orderly close
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) return;  // reset
    ::usleep(10 * 1000);
  }
  ADD_FAILURE() << "server never closed the hostile connection";
}

TEST(TcpHardeningTest, FirstFrameDeadlineKillsSlowLoris) {
  TcpServer::Options options;
  options.first_frame_timeout_ms = 80.0;
  auto server = ServerThread::Start(
      [](MsgType, std::string_view body) {
        return Result<std::string>(std::string(body));
      },
      options);
  ASSERT_NE(server, nullptr);

  // The loris: connect, then trickle one header byte and go quiet —
  // without the guard this parks a connection slot forever.
  const int loris = RawConnect(server->address());
  ASSERT_GE(loris, 0);
  const char byte = '\x01';
  ASSERT_EQ(::send(loris, &byte, 1, MSG_NOSIGNAL), 1);
  AwaitPeerClose(loris);
  ::close(loris);

  // An honest client is entirely unaffected before, during, and after.
  TcpTransport transport;
  auto result = transport.Call(NetAddress{}, server->address(),
                               MsgType::kPing, "still here");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->body, "still here");
  server->Stop();
  EXPECT_GE(server->stats().idle_closed, 1u);
}

TEST(TcpHardeningTest, ReadIdleDeadlineReapsSilentConnections) {
  TcpServer::Options options;
  options.read_idle_timeout_ms = 80.0;
  auto server = ServerThread::Start(
      [](MsgType, std::string_view body) {
        return Result<std::string>(std::string(body));
      },
      options);
  ASSERT_NE(server, nullptr);

  TcpTransport transport;
  auto first = transport.Call(NetAddress{}, server->address(), MsgType::kPing,
                              "one");
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  // Idle past the deadline: the server reaps the connection. The
  // transport's next call must notice the stale cached socket and
  // transparently reconnect rather than fail.
  ::usleep(300 * 1000);
  auto second = transport.Call(NetAddress{}, server->address(), MsgType::kPing,
                               "two");
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->body, "two");
  EXPECT_EQ(transport.rpc_stats().connections_opened, 2u);
  server->Stop();
  EXPECT_GE(server->stats().idle_closed, 1u);
}

TEST(TcpHardeningTest, MidFrameResetLeavesServerServing) {
  auto server = ServerThread::Start(
      [](MsgType, std::string_view body) {
        return Result<std::string>(std::string(body));
      });
  ASSERT_NE(server, nullptr);

  // Send half a frame header, then RST the connection mid-parse.
  const int attacker = RawConnect(server->address());
  ASSERT_GE(attacker, 0);
  const char half_header[] = "\x40\x00\x00";  // 3 of 8 header bytes
  ASSERT_EQ(::send(attacker, half_header, 3, MSG_NOSIGNAL), 3);
  ::usleep(20 * 1000);
  const linger lg{1, 0};
  ::setsockopt(attacker, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  ::close(attacker);  // goes out as RST

  // The server shrugs: the next honest request round-trips.
  TcpTransport transport;
  auto result = transport.Call(NetAddress{}, server->address(),
                               MsgType::kPing, "after the reset");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->body, "after the reset");
}

TEST(TcpHardeningTest, TrickledFrameStillParsesWhenUnderDeadline) {
  // One byte per write with small sleeps — a slow but honest peer.
  // Frame parsing must be purely incremental; no guard configured, so
  // the request completes.
  auto server = ServerThread::Start(
      [](MsgType, std::string_view body) {
        return Result<std::string>("re:" + std::string(body));
      });
  ASSERT_NE(server, nullptr);

  RpcHeader header;
  header.call_id = 7;
  header.type = MsgType::kPing;
  std::string frame;
  AppendFrame(EncodeEnvelope(header, "drip"), &frame);

  const int fd = RawConnect(server->address());
  ASSERT_GE(fd, 0);
  for (char c : frame) {
    ASSERT_EQ(::send(fd, &c, 1, MSG_NOSIGNAL), 1);
    ::usleep(2 * 1000);
  }
  // Collect the framed response.
  FrameParser parser;
  std::string payload;
  for (int i = 0; i < 500 && payload.empty(); ++i) {
    char buf[512];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
    if (n > 0) {
      parser.Feed(std::string_view(buf, static_cast<size_t>(n)));
      auto next = parser.Next();
      ASSERT_TRUE(next.ok()) << next.status().ToString();
      if (next->has_value()) payload = **next;
    } else {
      ::usleep(5 * 1000);
    }
  }
  ::close(fd);
  ASSERT_FALSE(payload.empty()) << "no response to the trickled frame";
  auto envelope = DecodeEnvelope(payload);
  ASSERT_TRUE(envelope.ok());
  EXPECT_EQ(envelope->body, "re:drip");
}

TEST(TcpHardeningTest, WriteBufferCapEvictsSlowReader) {
  TcpServer::Options options;
  options.max_out_buffer = 256 * 1024;
  const std::string big(128 * 1024, 'x');
  auto server = ServerThread::Start(
      [&big](MsgType, std::string_view) { return Result<std::string>(big); },
      options);
  ASSERT_NE(server, nullptr);

  // The slow reader: fire requests for large responses, never read.
  // The kernel buffers fill, the server-side backlog crosses the cap,
  // and the server evicts the connection instead of buffering forever.
  const int fd = RawConnect(server->address());
  ASSERT_GE(fd, 0);
  std::string frames;
  for (uint64_t id = 1; id <= 64; ++id) {
    RpcHeader header;
    header.call_id = id;
    header.type = MsgType::kPing;
    AppendFrame(EncodeEnvelope(header, "gimme"), &frames);
  }
  (void)!::send(fd, frames.data(), frames.size(), MSG_NOSIGNAL);
  // Eviction closes the offender's socket, so wait on that — not on the
  // stats counter, which only the poll thread may touch while it runs.
  // POLLRDHUP sees the FIN/RST without reading the buffered responses;
  // draining them would make this client an honest reader.
  pollfd hung_up{fd, POLLRDHUP, 0};
  EXPECT_EQ(::poll(&hung_up, 1, 5000), 1)
      << "server never evicted the slow reader";
  ::close(fd);

  // Eviction is per-offender: a fresh well-behaved client still works.
  TcpTransport transport;
  auto result = transport.Call(NetAddress{}, server->address(),
                               MsgType::kPing, "read my reply");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  server->Stop();
  EXPECT_GE(server->stats().slow_readers_evicted, 1u);
}

TEST(TcpHardeningTest, MaxConnectionsShedsAtAcceptAndRecovers) {
  TcpServer::Options options;
  options.max_connections = 2;
  auto server = ServerThread::Start(
      [](MsgType, std::string_view body) {
        return Result<std::string>(std::string(body));
      },
      options);
  ASSERT_NE(server, nullptr);

  const int a = RawConnect(server->address());
  const int b = RawConnect(server->address());
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  // Give the poll loop a beat to accept both into its table.
  ::usleep(100 * 1000);

  // Over the limit: the third connect is accepted by the kernel and
  // immediately shed by the server.
  const int c = RawConnect(server->address());
  ASSERT_GE(c, 0);
  AwaitPeerClose(c);
  ::close(c);

  // Freeing a slot restores service.
  ::close(a);
  ::usleep(100 * 1000);
  TcpTransport transport;
  auto result = transport.Call(NetAddress{}, server->address(),
                               MsgType::kPing, "slot freed");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ::close(b);
  server->Stop();
  EXPECT_GE(server->stats().accepts_shed, 1u);
}

// --- An in-process live ring: NodeServices behind TcpServers, driven
// --- by a RingClient. The miniature of tools/p2prange_node.
// ----------------------------------------------------------------------

class MiniRing {
 public:
  explicit MiniRing(size_t n) {
    for (size_t i = 0; i < n; ++i) {
      auto service = NodeService::Make(Loopback(0), NodeServiceOptions{});
      EXPECT_TRUE(service.ok());
      services_.push_back(std::move(*service));
      NodeService* raw = services_.back().get();
      auto server = ServerThread::Start(
          [raw](MsgType type, std::string_view body) {
            return raw->Handle(type, body);
          });
      EXPECT_NE(server, nullptr);
      members_.push_back(server->address());
      servers_.push_back(std::move(server));
    }
  }

  const std::vector<NetAddress>& members() const { return members_; }

 private:
  std::vector<std::unique_ptr<NodeService>> services_;
  std::vector<std::unique_ptr<ServerThread>> servers_;
  std::vector<NetAddress> members_;
};

TEST(RingClientTest, PublishThenLookupFindsTheDescriptor) {
  MiniRing ring(3);
  RingClientOptions options;
  options.lsh.k = 10;
  options.lsh.l = 5;
  auto client = RingClient::Make(ring.members(), options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  const PartitionKey published{"T", "a", Range(100, 200)};
  const NetAddress holder = ring.members()[0];
  ASSERT_TRUE((*client)->Publish(published, holder).ok());

  // The identical range collides on every bucket: a guaranteed hit.
  auto outcome = (*client)->Lookup(published);
  ASSERT_TRUE(outcome.ok());
  ASSERT_FALSE(outcome->ranked.empty());
  EXPECT_EQ(outcome->ranked.front().descriptor.key, published);
  EXPECT_EQ(outcome->ranked.front().descriptor.holder, holder);
  EXPECT_TRUE(outcome->ranked.front().exact);
  EXPECT_EQ(outcome->probes_failed, 0);

  // A disjoint range finds nothing (its buckets are elsewhere, and
  // nothing similar was published).
  auto miss = (*client)->Lookup(PartitionKey{"T", "a", Range(5000, 6000)});
  ASSERT_TRUE(miss.ok());
  EXPECT_TRUE(miss->ranked.empty());
}

TEST(RingClientTest, PartitionBytesRoundTripThroughHolder) {
  MiniRing ring(2);
  RingClientOptions options;
  auto client = RingClient::Make(ring.members(), options);
  ASSERT_TRUE(client.ok());

  Schema schema({Field{"a", ValueType::kInt64, AttributeDomain{0, 1000}}});
  Relation tuples("T", schema);
  ASSERT_TRUE(tuples.Append({Value(int64_t{150})}).ok());
  const PartitionKey key{"T", "a", Range(100, 200)};
  ASSERT_TRUE(
      (*client)->StorePartition(key, tuples, ring.members()[1]).ok());
  auto fetched = (*client)->FetchPartition(key, ring.members()[1]);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched->num_rows(), 1u);
  // Fetching from the wrong holder is a clean NotFound.
  EXPECT_TRUE(
      (*client)->FetchPartition(key, ring.members()[0]).status().IsNotFound());
}

}  // namespace
}  // namespace rpc
}  // namespace p2prange
