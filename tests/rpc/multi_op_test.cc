// The kMultiOp batch codec: round trips, per-slot statuses, and the
// hostile-decode discipline every wire path carries — counts are
// guarded before allocation, sub-op types must be batchable (never
// kMultiOp itself, never a membership message), trailing bytes are an
// error, not padding.
#include "rpc/multi_op.h"

#include <gtest/gtest.h>

#include "wire/serde.h"

namespace p2prange {
namespace rpc {
namespace {

TEST(MultiOpTest, RequestRoundTripsWithOrderPreserved) {
  MultiOpRequest req;
  req.ops.push_back(MultiOp{MsgType::kProbeBucket, "probe-one"});
  req.ops.push_back(MultiOp{MsgType::kPing, ""});
  req.ops.push_back(MultiOp{MsgType::kStoreDescriptor, "store-body"});

  auto decoded = DecodeMultiOpRequest(EncodeMultiOpRequest(req));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->ops.size(), 3u);
  EXPECT_EQ(decoded->ops[0].type, MsgType::kProbeBucket);
  EXPECT_EQ(decoded->ops[0].body, "probe-one");
  EXPECT_EQ(decoded->ops[1].type, MsgType::kPing);
  EXPECT_TRUE(decoded->ops[1].body.empty());
  EXPECT_EQ(decoded->ops[2].type, MsgType::kStoreDescriptor);
  EXPECT_EQ(decoded->ops[2].body, "store-body");
}

TEST(MultiOpTest, ResponseRoundTripsPerSlotStatuses) {
  MultiOpResponse resp;
  resp.results.push_back(MultiOpResult{StatusCode::kOk, "found"});
  resp.results.push_back(
      MultiOpResult{StatusCode::kOutOfRange, "wrong owner 127.0.0.1:9"});
  resp.results.push_back(
      MultiOpResult{StatusCode::kResourceExhausted, "work queue full"});

  auto decoded = DecodeMultiOpResponse(EncodeMultiOpResponse(resp));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->results.size(), 3u);
  EXPECT_EQ(decoded->results[0].status, StatusCode::kOk);
  EXPECT_EQ(decoded->results[0].body, "found");
  EXPECT_EQ(decoded->results[1].status, StatusCode::kOutOfRange);
  EXPECT_EQ(decoded->results[2].status, StatusCode::kResourceExhausted);
  EXPECT_EQ(decoded->results[2].body, "work queue full");
}

TEST(MultiOpTest, OnlyDataPathTypesAreBatchable) {
  EXPECT_TRUE(IsBatchableMsgType(MsgType::kPing));
  EXPECT_TRUE(IsBatchableMsgType(MsgType::kStoreDescriptor));
  EXPECT_TRUE(IsBatchableMsgType(MsgType::kProbeBucket));
  EXPECT_TRUE(IsBatchableMsgType(MsgType::kFetchPartition));
  // Membership mutates poll-thread state; a nested batch would let one
  // frame amplify into recursion. Neither may ride in a batch.
  EXPECT_FALSE(IsBatchableMsgType(MsgType::kJoin));
  EXPECT_FALSE(IsBatchableMsgType(MsgType::kGossip));
  EXPECT_FALSE(IsBatchableMsgType(MsgType::kHandoff));
  EXPECT_FALSE(IsBatchableMsgType(MsgType::kMultiOp));
}

TEST(MultiOpTest, DecodeRejectsEmptyBatch) {
  wire::Encoder enc;
  enc.PutVarint(0);
  EXPECT_TRUE(DecodeMultiOpRequest(enc.Take()).status().IsInvalidArgument());
}

TEST(MultiOpTest, DecodeRejectsNonBatchableSubOp) {
  wire::Encoder enc;
  enc.PutVarint(1);
  enc.PutU8(static_cast<uint8_t>(MsgType::kGossip));
  enc.PutString("entries");
  EXPECT_TRUE(DecodeMultiOpRequest(enc.Take()).status().IsInvalidArgument());
}

TEST(MultiOpTest, DecodeRejectsNestedMultiOp) {
  wire::Encoder enc;
  enc.PutVarint(1);
  enc.PutU8(static_cast<uint8_t>(MsgType::kMultiOp));
  enc.PutString("a batch in a batch");
  EXPECT_TRUE(DecodeMultiOpRequest(enc.Take()).status().IsInvalidArgument());
}

TEST(MultiOpTest, DecodeRejectsUnknownSubOpType) {
  wire::Encoder enc;
  enc.PutVarint(1);
  enc.PutU8(99);
  enc.PutString("");
  EXPECT_TRUE(DecodeMultiOpRequest(enc.Take()).status().IsInvalidArgument());
}

TEST(MultiOpTest, HostileCountIsRejectedBeforeAllocation) {
  // Claims 10 million sub-ops in a 3-byte body: the guarded count must
  // refuse before reserving anything.
  wire::Encoder enc;
  enc.PutVarint(10'000'000);
  auto decoded = DecodeMultiOpRequest(enc.Take());
  EXPECT_FALSE(decoded.ok());
}

TEST(MultiOpTest, BatchAboveTheCapIsRejected) {
  MultiOpRequest req;
  for (size_t i = 0; i < kMaxMultiOps + 1; ++i) {
    req.ops.push_back(MultiOp{MsgType::kPing, "x"});
  }
  EXPECT_FALSE(DecodeMultiOpRequest(EncodeMultiOpRequest(req)).ok());
}

TEST(MultiOpTest, TrailingBytesAreAnError) {
  MultiOpRequest req;
  req.ops.push_back(MultiOp{MsgType::kPing, "p"});
  std::string bytes = EncodeMultiOpRequest(req);
  bytes.push_back('\0');
  EXPECT_TRUE(DecodeMultiOpRequest(bytes).status().IsInvalidArgument());

  MultiOpResponse resp;
  resp.results.push_back(MultiOpResult{StatusCode::kOk, "r"});
  std::string rbytes = EncodeMultiOpResponse(resp);
  rbytes.push_back('\0');
  EXPECT_TRUE(DecodeMultiOpResponse(rbytes).status().IsInvalidArgument());
}

TEST(MultiOpTest, ResponseWithUnknownStatusByteIsRejected) {
  wire::Encoder enc;
  enc.PutVarint(1);
  enc.PutU8(200);  // far beyond the last StatusCode
  enc.PutString("");
  EXPECT_TRUE(DecodeMultiOpResponse(enc.Take()).status().IsInvalidArgument());
}

TEST(MultiOpTest, TruncatedBodyNeverCrashes) {
  MultiOpRequest req;
  req.ops.push_back(MultiOp{MsgType::kProbeBucket, "a longer body here"});
  req.ops.push_back(MultiOp{MsgType::kPing, "pong"});
  const std::string bytes = EncodeMultiOpRequest(req);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    auto decoded = DecodeMultiOpRequest(std::string_view(bytes).substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "truncation at " << cut << " decoded";
  }
}

}  // namespace
}  // namespace rpc
}  // namespace p2prange
