// Hostile-input robustness of the TCP frame codec and RPC envelope
// decoder: truncated frames, oversized length prefixes, corrupted
// CRCs, and pure garbage must all come back as Status errors — no
// crash, no unbounded allocation, no byte of a bad frame reaching a
// handler. Extends the serde fuzz discipline (tests/wire) to the
// transport layer.
#include <gtest/gtest.h>

#include "common/crc32c.h"
#include "common/random.h"
#include "rpc/frame.h"
#include "rpc/message.h"

namespace p2prange {
namespace rpc {
namespace {

std::string Framed(std::string_view payload) {
  std::string out;
  AppendFrame(payload, &out);
  return out;
}

TEST(FrameTest, RoundTripsSingleFrame) {
  FrameParser parser;
  parser.Feed(Framed("hello, ring"));
  auto got = parser.Next();
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got->has_value());
  EXPECT_EQ(**got, "hello, ring");
  auto empty = parser.Next();
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(empty->has_value());
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(FrameTest, RoundTripsEmptyPayload) {
  FrameParser parser;
  parser.Feed(Framed(""));
  auto got = parser.Next();
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got->has_value());
  EXPECT_EQ(**got, "");
}

TEST(FrameTest, ReassemblesAcrossArbitraryChunking) {
  Rng rng(501);
  for (int trial = 0; trial < 100; ++trial) {
    std::string stream;
    std::vector<std::string> payloads;
    const int n = 1 + static_cast<int>(rng.NextBounded(5));
    for (int i = 0; i < n; ++i) {
      std::string p;
      const size_t len = rng.NextBounded(300);
      for (size_t b = 0; b < len; ++b) {
        p.push_back(static_cast<char>(rng.Next32() & 0xFF));
      }
      payloads.push_back(p);
      stream += Framed(p);
    }
    FrameParser parser;
    size_t decoded = 0;
    size_t pos = 0;
    while (pos < stream.size()) {
      const size_t chunk =
          std::min(stream.size() - pos, 1 + rng.NextBounded(40));
      parser.Feed(std::string_view(stream).substr(pos, chunk));
      pos += chunk;
      for (;;) {
        auto got = parser.Next();
        ASSERT_TRUE(got.ok());
        if (!got->has_value()) break;
        ASSERT_LT(decoded, payloads.size());
        EXPECT_EQ(**got, payloads[decoded]);
        ++decoded;
      }
    }
    EXPECT_EQ(decoded, payloads.size());
  }
}

TEST(FrameTest, TruncationAtEveryPrefixJustWaits) {
  const std::string frame = Framed("partial delivery");
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    FrameParser parser;
    parser.Feed(std::string_view(frame).substr(0, cut));
    auto got = parser.Next();
    ASSERT_TRUE(got.ok()) << "cut at " << cut;
    EXPECT_FALSE(got->has_value()) << "cut at " << cut;
    // The rest arrives: the frame completes.
    parser.Feed(std::string_view(frame).substr(cut));
    auto rest = parser.Next();
    ASSERT_TRUE(rest.ok());
    ASSERT_TRUE(rest->has_value());
    EXPECT_EQ(**rest, "partial delivery");
  }
}

TEST(FrameTest, OversizedLengthPrefixRejectedBeforeAllocation) {
  // A length prefix claiming 4 GiB must fail from the 8 header bytes
  // alone — buffering until "the rest arrives" would be the allocation
  // blow-up this parser exists to prevent.
  std::string header;
  const uint32_t huge = 0xF0000000u;
  for (int i = 0; i < 4; ++i) {
    header.push_back(static_cast<char>((huge >> (8 * i)) & 0xFF));
  }
  header += std::string(4, '\0');  // any CRC
  FrameParser parser;
  parser.Feed(header);
  auto got = parser.Next();
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsIOError());
  EXPECT_TRUE(parser.poisoned());
}

TEST(FrameTest, JustOverCapRejectedJustUnderAccepted) {
  std::string ok_frame = Framed(std::string(1024, 'x'));
  FrameParser parser;
  parser.Feed(ok_frame);
  ASSERT_TRUE(parser.Next().ok());

  // Hand-build a header declaring kMaxFramePayload + 1.
  const uint32_t over = static_cast<uint32_t>(kMaxFramePayload + 1);
  std::string bad;
  for (int i = 0; i < 4; ++i) {
    bad.push_back(static_cast<char>((over >> (8 * i)) & 0xFF));
  }
  bad += std::string(4, '\0');
  parser.Feed(bad);
  EXPECT_FALSE(parser.Next().ok());
}

TEST(FrameTest, CorruptedPayloadFailsCrcAndPoisons) {
  Rng rng(502);
  for (int trial = 0; trial < 200; ++trial) {
    std::string frame = Framed("descriptor payload bytes");
    // Flip one bit anywhere: header length, CRC, or payload.
    const size_t pos = rng.NextBounded(frame.size());
    frame[pos] = static_cast<char>(frame[pos] ^ (1 << rng.NextBounded(8)));
    FrameParser parser;
    parser.Feed(frame);
    auto got = parser.Next();
    if (!got.ok()) {
      EXPECT_TRUE(parser.poisoned());
      // Poisoned stays poisoned, even when good bytes follow.
      parser.Feed(Framed("good"));
      EXPECT_FALSE(parser.Next().ok());
      continue;
    }
    // A length-field flip can turn the frame into a shorter/longer
    // still-pending one; it must never decode to a wrong payload.
    if (got->has_value()) {
      EXPECT_EQ(**got, "descriptor payload bytes");
    }
  }
}

TEST(FrameTest, GarbageStreamNeverCrashes) {
  Rng rng(503);
  for (int trial = 0; trial < 500; ++trial) {
    FrameParser parser;
    const size_t len = rng.NextBounded(600);
    std::string garbage;
    for (size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.Next32() & 0xFF));
    }
    parser.Feed(garbage);
    for (int i = 0; i < 8; ++i) {
      auto got = parser.Next();
      if (!got.ok()) break;            // rejected cleanly
      if (!got->has_value()) break;    // waiting for more
      // An accidental valid frame (possible only if the garbage built
      // a correct CRC) is fine; keep draining.
    }
  }
}

// --- Envelope decoding over fuzzed bytes --------------------------------

std::string ValidEnvelope() {
  RpcHeader h;
  h.call_id = 77;
  h.type = MsgType::kProbeBucket;
  h.is_response = false;
  return EncodeEnvelope(h, "request body");
}

TEST(EnvelopeFuzzTest, RoundTripsAllTypesAndFlags) {
  for (uint8_t raw = 1; raw <= 6; ++raw) {
    for (const bool response : {false, true}) {
      RpcHeader h;
      h.call_id = 0xDEADBEEFULL << 7;
      h.type = static_cast<MsgType>(raw);
      h.is_response = response;
      h.status = response ? StatusCode::kNotFound : StatusCode::kOk;
      auto got = DecodeEnvelope(EncodeEnvelope(h, "abc"));
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(got->header.call_id, h.call_id);
      EXPECT_EQ(got->header.type, h.type);
      EXPECT_EQ(got->header.is_response, h.is_response);
      EXPECT_EQ(got->header.status, h.status);
      EXPECT_EQ(got->body, "abc");
    }
  }
}

TEST(EnvelopeFuzzTest, TruncationAtEveryPrefixFails) {
  const std::string full = ValidEnvelope();
  // Every strict prefix of the header region must fail; a cut inside
  // the body region decodes with a shorter body (length is implicit).
  for (size_t cut = 0; cut < 4; ++cut) {
    EXPECT_FALSE(DecodeEnvelope(std::string_view(full).substr(0, cut)).ok())
        << "cut at " << cut;
  }
}

TEST(EnvelopeFuzzTest, UnknownVersionTypeFlagsAndStatusRejected) {
  std::string bytes = ValidEnvelope();
  std::string bad = bytes;
  bad[0] = 9;  // version
  EXPECT_FALSE(DecodeEnvelope(bad).ok());
  bad = bytes;
  bad[1] = 0;  // message type 0 is unassigned
  EXPECT_FALSE(DecodeEnvelope(bad).ok());
  bad = bytes;
  bad[1] = 55;  // unknown message type
  EXPECT_FALSE(DecodeEnvelope(bad).ok());
  bad = bytes;
  bad[2] = 0x7E;  // undefined flag bits
  EXPECT_FALSE(DecodeEnvelope(bad).ok());
  bad = bytes;
  bad[3] = 99;  // status code beyond the enum
  EXPECT_FALSE(DecodeEnvelope(bad).ok());
}

TEST(EnvelopeFuzzTest, MutatedEnvelopeNeverMisbehaves) {
  Rng rng(504);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string bytes = ValidEnvelope();
    const int mutations = 1 + static_cast<int>(rng.NextBounded(4));
    for (int m = 0; m < mutations; ++m) {
      const size_t pos = rng.NextBounded(bytes.size());
      bytes[pos] = static_cast<char>(rng.Next32() & 0xFF);
    }
    auto got = DecodeEnvelope(bytes);  // ok or clean error; never a crash
    (void)got;
  }
}

}  // namespace
}  // namespace rpc
}  // namespace p2prange
