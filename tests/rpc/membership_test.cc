// Live membership: wire codecs (including hostile input), the
// SWIM-style merge rules, wrong-owner redirects, and a real two-node
// ring converging — then detecting a death — over loopback TCP.
//
// The convergence tests drive both daemons' halves from one thread
// (PollOnce + Tick interleaved), the same single-threaded ownership
// discipline the real daemon's event loop has.
#include "rpc/membership.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <thread>

#include "rpc/node_service.h"
#include "rpc/tcp.h"
#include "rpc/tcp_transport.h"

namespace p2prange {
namespace rpc {
namespace {

NetAddress Loopback(uint16_t port) {
  NetAddress a;
  a.host = 0x7F000001;  // 127.0.0.1
  a.port = port;
  return a;
}

MemberEntry Entry(uint16_t port, uint64_t incarnation, MemberStatus status) {
  MemberEntry e;
  e.addr = Loopback(port);
  e.incarnation = incarnation;
  e.status = status;
  return e;
}

// --------------------------------------------------------------------------
// Wire form
// --------------------------------------------------------------------------

TEST(MembershipTest, ViewMessageRoundTrips) {
  const std::vector<MemberEntry> entries = {
      Entry(7001, 17, MemberStatus::kAlive),
      Entry(7002, 0, MemberStatus::kSuspect),
      Entry(7003, 0xffffffffffffffffULL, MemberStatus::kLeft),
  };
  auto decoded = DecodeViewMessage(EncodeViewMessage(entries));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, entries);

  auto empty = DecodeViewMessage(EncodeViewMessage({}));
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(MembershipTest, TruncatedViewMessageIsRejectedNotCrashed) {
  const std::string whole =
      EncodeViewMessage({Entry(7001, 5, MemberStatus::kAlive),
                         Entry(7002, 9, MemberStatus::kAlive)});
  // Every proper prefix must fail cleanly — no DCHECK, no overread.
  for (size_t len = 0; len < whole.size(); ++len) {
    auto decoded = DecodeViewMessage(std::string_view(whole).substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "prefix of " << len << " bytes decoded";
  }
}

TEST(MembershipTest, HostileEntryCountIsRejectedBeforeAllocation) {
  // A count beyond kMaxViewEntries must be rejected up front even
  // though the body holds no entries at all.
  wire::Encoder enc;
  enc.PutVarint(kMaxViewEntries + 1);
  auto decoded = DecodeViewMessage(enc.Take());
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsInvalidArgument())
      << decoded.status().ToString();
}

TEST(MembershipTest, TrailingGarbageIsRejected) {
  std::string body = EncodeViewMessage({Entry(7001, 1, MemberStatus::kAlive)});
  body += "x";
  EXPECT_FALSE(DecodeViewMessage(body).ok());
}

TEST(MembershipTest, BadStatusByteIsRejected) {
  wire::Encoder enc;
  enc.PutVarint(1);
  MemberEntry e = Entry(7001, 1, MemberStatus::kAlive);
  e.status = static_cast<MemberStatus>(200);
  EncodeMemberEntry(e, &enc);
  EXPECT_FALSE(DecodeViewMessage(enc.Take()).ok());
}

TEST(MembershipTest, WrongOwnerMessageRoundTrips) {
  const NetAddress owner = Loopback(7042);
  const auto parsed = ParseWrongOwner(WrongOwnerMessage(owner));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, owner);

  EXPECT_FALSE(ParseWrongOwner("bucket 7 not found").has_value());
  EXPECT_FALSE(ParseWrongOwner("wrong_owner not-an-address").has_value());
  EXPECT_FALSE(ParseWrongOwner("").has_value());
}

// --------------------------------------------------------------------------
// Merge rules (exercised through the gossip handler — a pure local
// operation)
// --------------------------------------------------------------------------

class MergeTest : public ::testing::Test {
 protected:
  MergeTest() {
    MembershipConfig config;
    auto made =
        LiveMembership::Make(Loopback(7000), /*incarnation=*/100, config,
                             &transport_);
    EXPECT_TRUE(made.ok()) << made.status().ToString();
    membership_ = std::make_unique<LiveMembership>(std::move(*made));
  }

  void Gossip(const MemberEntry& e) {
    auto reply = membership_->HandleGossip(EncodeViewMessage({e}));
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  }

  std::optional<MemberEntry> Find(const NetAddress& addr) {
    for (const MemberEntry& e : membership_->Entries()) {
      if (e.addr == addr) return e;
    }
    return std::nullopt;
  }

  TcpTransport transport_;
  std::unique_ptr<LiveMembership> membership_;
};

TEST_F(MergeTest, HigherIncarnationWins) {
  Gossip(Entry(7001, 5, MemberStatus::kAlive));
  EXPECT_EQ(membership_->num_alive(), 2u);

  // A stale death rumor (lower incarnation) must not kill the member.
  Gossip(Entry(7001, 4, MemberStatus::kDead));
  ASSERT_TRUE(Find(Loopback(7001)).has_value());
  EXPECT_EQ(Find(Loopback(7001))->status, MemberStatus::kAlive);
  EXPECT_EQ(membership_->num_alive(), 2u);

  // A fresh incarnation overrides anything.
  Gossip(Entry(7001, 6, MemberStatus::kDead));
  EXPECT_EQ(Find(Loopback(7001))->status, MemberStatus::kDead);
  EXPECT_EQ(membership_->num_alive(), 1u);

  // And the member restarting with an even fresher one comes back.
  Gossip(Entry(7001, 7, MemberStatus::kAlive));
  EXPECT_EQ(Find(Loopback(7001))->status, MemberStatus::kAlive);
}

TEST_F(MergeTest, IncarnationTieResolvesTowardTerminalStatus) {
  Gossip(Entry(7001, 5, MemberStatus::kAlive));
  Gossip(Entry(7001, 5, MemberStatus::kSuspect));
  EXPECT_EQ(Find(Loopback(7001))->status, MemberStatus::kSuspect);
  // Terminality never decreases on a tie.
  Gossip(Entry(7001, 5, MemberStatus::kAlive));
  EXPECT_EQ(Find(Loopback(7001))->status, MemberStatus::kSuspect);
  Gossip(Entry(7001, 5, MemberStatus::kLeft));
  EXPECT_EQ(Find(Loopback(7001))->status, MemberStatus::kLeft);
}

TEST_F(MergeTest, SelfRumorIsRefutedWithFresherIncarnation) {
  // Someone claims we are dead at our own incarnation: we must come
  // back with a strictly larger incarnation, still alive.
  Gossip(Entry(7000, 100, MemberStatus::kDead));
  const auto self = Find(Loopback(7000));
  ASSERT_TRUE(self.has_value());
  EXPECT_EQ(self->status, MemberStatus::kAlive);
  EXPECT_GT(self->incarnation, 100u);
  EXPECT_EQ(membership_->num_alive(), 1u);
}

TEST_F(MergeTest, AliveTransitionsAreReportedOnce) {
  Gossip(Entry(7001, 5, MemberStatus::kAlive));
  Gossip(Entry(7001, 5, MemberStatus::kAlive));  // duplicate: no new change
  auto changes = membership_->TakeChanges();
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].addr, Loopback(7001));
  EXPECT_TRUE(changes[0].is_alive);
  EXPECT_FALSE(changes[0].was_alive);
  EXPECT_TRUE(membership_->TakeChanges().empty());  // drained

  Gossip(Entry(7001, 6, MemberStatus::kDead));
  changes = membership_->TakeChanges();
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_FALSE(changes[0].is_alive);
  EXPECT_TRUE(changes[0].was_alive);
}

TEST_F(MergeTest, FlapDamperSuppressesOscillatingMember) {
  Gossip(Entry(7001, 5, MemberStatus::kAlive));  // joining is not a flap
  Gossip(Entry(7001, 6, MemberStatus::kDead));   // flap 1
  Gossip(Entry(7001, 7, MemberStatus::kAlive));  // flap 2
  EXPECT_EQ(membership_->counters().flap_suppressions, 0u);
  EXPECT_EQ(membership_->num_alive(), 2u);

  Gossip(Entry(7001, 8, MemberStatus::kDead));   // flap 3: quarantined
  EXPECT_EQ(membership_->counters().flap_suppressions, 1u);
  membership_->TakeChanges();

  // The next resurrection still merges (incarnation order holds) but
  // the member stays out of the visible view and emits no change — the
  // re-replicator must not chase an oscillating peer.
  Gossip(Entry(7001, 9, MemberStatus::kAlive));
  ASSERT_TRUE(Find(Loopback(7001)).has_value());
  EXPECT_EQ(Find(Loopback(7001))->status, MemberStatus::kAlive);
  EXPECT_EQ(membership_->num_alive(), 1u);
  EXPECT_TRUE(membership_->TakeChanges().empty());
  // Already quarantined: further flaps do not re-count.
  EXPECT_EQ(membership_->counters().flap_suppressions, 1u);
}

TEST_F(MergeTest, GracefulLeavesAreNeverFlaps) {
  Gossip(Entry(7001, 5, MemberStatus::kAlive));
  Gossip(Entry(7001, 6, MemberStatus::kLeft));
  Gossip(Entry(7001, 7, MemberStatus::kAlive));
  Gossip(Entry(7001, 8, MemberStatus::kLeft));
  Gossip(Entry(7001, 9, MemberStatus::kAlive));
  EXPECT_EQ(membership_->counters().flap_suppressions, 0u);
  EXPECT_EQ(membership_->num_alive(), 2u);
}

// --------------------------------------------------------------------------
// Flap-damper decay and tombstone retention (need custom configs and a
// Tick that runs only the damper/pruner: all periodic timers pushed out
// past the test's lifetime, reconnect off)
// --------------------------------------------------------------------------

struct DampedMembership {
  explicit DampedMembership(MembershipConfig config) {
    config.probe_period_ms = 1e9;
    config.gossip_period_ms = 1e9;
    config.stabilize_period_ms = 1e9;
    config.backoff_max_ms = 1e9;
    config.reconnect_period_ms = 0.0;
    auto made = LiveMembership::Make(Loopback(7000), /*incarnation=*/100,
                                     config, &transport);
    EXPECT_TRUE(made.ok()) << made.status().ToString();
    if (made.ok()) {
      membership = std::make_unique<LiveMembership>(std::move(*made));
    }
  }

  void Gossip(const MemberEntry& e) {
    auto reply = membership->HandleGossip(EncodeViewMessage({e}));
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  }

  std::optional<MemberEntry> Find(const NetAddress& addr) {
    for (const MemberEntry& e : membership->Entries()) {
      if (e.addr == addr) return e;
    }
    return std::nullopt;
  }

  TcpTransport transport;
  std::unique_ptr<LiveMembership> membership;
};

TEST(MembershipTest, FlapQuarantineReleasesAfterQuietDecay) {
  MembershipConfig config;
  config.flap_halflife_ms = 5.0;  // decays to nothing within the test
  DampedMembership h(config);
  ASSERT_NE(h.membership, nullptr);
  h.Gossip(Entry(7001, 5, MemberStatus::kAlive));
  h.Gossip(Entry(7001, 6, MemberStatus::kDead));
  h.Gossip(Entry(7001, 7, MemberStatus::kAlive));
  h.Gossip(Entry(7001, 8, MemberStatus::kDead));
  h.Gossip(Entry(7001, 9, MemberStatus::kAlive));
  ASSERT_EQ(h.membership->counters().flap_suppressions, 1u);
  ASSERT_EQ(h.membership->num_alive(), 1u);
  h.membership->TakeChanges();

  // ~12 half-lives: the penalty is far below the reuse threshold, so
  // the next Tick lifts the quarantine and the (alive) member re-enters
  // the visible view with a change the re-replicator can act on.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  h.membership->Tick();
  EXPECT_EQ(h.membership->counters().flap_releases, 1u);
  EXPECT_EQ(h.membership->num_alive(), 2u);
  bool saw_return = false;
  for (const ViewChange& c : h.membership->TakeChanges()) {
    if (c.addr == Loopback(7001) && c.is_alive) saw_return = true;
  }
  EXPECT_TRUE(saw_return);
}

TEST(MembershipTest, IsolatedNodeKeepsDeadTombstonesPastTtl) {
  MembershipConfig config;
  config.tombstone_ttl_ms = 50.0;
  DampedMembership h(config);
  ASSERT_NE(h.membership, nullptr);
  h.Gossip(Entry(7001, 5, MemberStatus::kAlive));
  h.Gossip(Entry(7001, 6, MemberStatus::kDead));
  h.Gossip(Entry(7003, 1, MemberStatus::kLeft));
  ASSERT_EQ(h.membership->num_alive(), 1u);

  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  h.membership->Tick();
  // Isolated: the dead tombstone is the reconnect sweep's only way
  // back and outlives its TTL; a graceful kLeft still ages out.
  EXPECT_TRUE(h.Find(Loopback(7001)).has_value());
  EXPECT_FALSE(h.Find(Loopback(7003)).has_value());

  // A visible peer appears: no longer isolated, the tombstone goes.
  h.Gossip(Entry(7002, 1, MemberStatus::kAlive));
  h.membership->Tick();
  EXPECT_FALSE(h.Find(Loopback(7001)).has_value());
  EXPECT_TRUE(h.Find(Loopback(7002)).has_value());
}

// --------------------------------------------------------------------------
// A real two-node ring over loopback TCP, single-threaded
// --------------------------------------------------------------------------

/// One in-process daemon half: server, service, membership, transport.
struct Peer {
  static std::unique_ptr<Peer> Start(uint64_t incarnation,
                                     double reconnect_period_ms = -1.0) {
    auto peer = std::make_unique<Peer>();
    auto server = TcpServer::Listen(
        Loopback(0), [raw = peer.get()](MsgType type, std::string_view body) {
          return raw->service->Handle(type, body);
        });
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    if (!server.ok()) return nullptr;
    peer->server = std::make_unique<TcpServer>(std::move(*server));

    NodeServiceOptions options;
    options.descriptor_replication = 1;
    auto service = NodeService::Make(peer->server->address(), options);
    EXPECT_TRUE(service.ok()) << service.status().ToString();
    if (!service.ok()) return nullptr;
    peer->service = std::move(*service);

    MembershipConfig config;
    config.probe_period_ms = 20.0;
    config.gossip_period_ms = 20.0;
    config.stabilize_period_ms = 20.0;
    config.probe_timeout_ms = 100.0;
    config.backoff_max_ms = 100.0;
    config.seed = incarnation;
    if (reconnect_period_ms >= 0.0) {
      config.reconnect_period_ms = reconnect_period_ms;
    }
    auto membership = LiveMembership::Make(peer->server->address(),
                                           incarnation, config,
                                           &peer->transport);
    EXPECT_TRUE(membership.ok()) << membership.status().ToString();
    if (!membership.ok()) return nullptr;
    peer->membership =
        std::make_unique<LiveMembership>(std::move(*membership));
    peer->service->set_membership(peer->membership.get());
    return peer;
  }

  void Step() {
    server->PollOnce(/*timeout_ms=*/1).IgnoreError();
    membership->Tick();
  }

  std::unique_ptr<TcpServer> server;
  std::unique_ptr<NodeService> service;
  TcpTransport transport;
  std::unique_ptr<LiveMembership> membership;
};

TEST(MembershipTest, TwoNodesJoinConvergeAndDetectDeath) {
  auto a = Peer::Start(/*incarnation=*/1);
  auto b = Peer::Start(/*incarnation=*/2);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);

  // Join is synchronous, so a's server must be polled while b waits on
  // the reply. The helper thread touches only a->server (whose handler
  // runs a's membership — nothing else does until the join below
  // completes and the thread is joined).
  {
    std::atomic<bool> done{false};
    std::thread poll_a([&] {
      while (!done) {
        if (!a->server->PollOnce(1).ok()) break;
      }
    });
    const Status joined = b->membership->Join(a->server->address(),
                                              /*deadline_ms=*/2000.0);
    done = true;
    poll_a.join();
    ASSERT_TRUE(joined.ok()) << joined.ToString();
  }

  // The join already taught each side the other; tick both from one
  // thread until the views agree (bounded, not timed — every Step is
  // at most a few ms).
  for (int i = 0; i < 5000; ++i) {
    if (a->membership->num_alive() == 2 && b->membership->num_alive() == 2) {
      break;
    }
    a->Step();
    b->Step();
  }
  ASSERT_EQ(a->membership->num_alive(), 2u);
  ASSERT_EQ(b->membership->num_alive(), 2u);
  // On a ring of two each is the other's only neighbor.
  ASSERT_TRUE(a->membership->Successor().has_value());
  EXPECT_EQ(*a->membership->Successor(), b->server->address());
  ASSERT_TRUE(b->membership->Successor().has_value());
  EXPECT_EQ(*b->membership->Successor(), a->server->address());
  EXPECT_GE(a->membership->counters().joins_served, 1u);

  // Kill b abruptly (server gone, no leave): a's probes must strike it
  // out within the failure-detection budget.
  const NetAddress b_addr = b->server->address();
  b.reset();
  for (int i = 0; i < 5000 && a->membership->num_alive() != 1; ++i) {
    a->Step();
  }
  EXPECT_EQ(a->membership->num_alive(), 1u);
  EXPECT_GE(a->membership->counters().members_marked_dead, 1u);
  // The dead member's departure surfaced as a view change for the
  // re-replicator to act on.
  bool saw_death = false;
  for (const ViewChange& c : a->membership->TakeChanges()) {
    if (c.addr == b_addr && c.was_alive && !c.is_alive) saw_death = true;
  }
  EXPECT_TRUE(saw_death);
}

TEST(MembershipTest, GracefulLeaveSpreadsWithoutStrikes) {
  auto a = Peer::Start(/*incarnation=*/1);
  auto b = Peer::Start(/*incarnation=*/2);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);

  {
    std::atomic<bool> done{false};
    std::thread poll_a([&] {
      while (!done) {
        if (!a->server->PollOnce(1).ok()) break;
      }
    });
    const Status joined = b->membership->Join(a->server->address(),
                                              /*deadline_ms=*/2000.0);
    done = true;
    poll_a.join();
    ASSERT_TRUE(joined.ok()) << joined.ToString();
  }
  for (int i = 0; i < 5000; ++i) {
    if (a->membership->num_alive() == 2 && b->membership->num_alive() == 2) {
      break;
    }
    a->Step();
    b->Step();
  }
  ASSERT_EQ(a->membership->num_alive(), 2u);

  // b leaves gracefully: a learns at once from the kLeave message, no
  // probe strikes needed. AnnounceLeave is synchronous, so poll a's
  // server from a helper again.
  {
    std::atomic<bool> done{false};
    std::thread poll_a([&] {
      while (!done) {
        if (!a->server->PollOnce(1).ok()) break;
      }
    });
    b->membership->AnnounceLeave(/*deadline_ms=*/1000.0);
    done = true;
    poll_a.join();
  }
  b.reset();
  for (int i = 0; i < 1000 && a->membership->num_alive() != 1; ++i) {
    a->Step();
  }
  EXPECT_EQ(a->membership->num_alive(), 1u);
  EXPECT_GE(a->membership->counters().leaves_served, 1u);
  // A graceful leave is not a detected failure.
  EXPECT_EQ(a->membership->counters().members_marked_dead, 0u);
}

// Regression: a stabilize reply's follow-up notify is started from
// inside PollPending's iteration. Starting it must neither invalidate
// the entry being handled (the follow-up push_back reallocates the
// pending vector) nor be dropped from tracking. Equal fast periods
// fire probe + gossip + stabilize in the same tick round after round,
// so replies are routinely handled while other exchanges are in
// flight; sanitized builds turn any reintroduction into a hard fail.
TEST(MembershipTest, StabilizeFollowUpDuringPollNeitherDanglesNorDrops) {
  auto a = Peer::Start(/*incarnation=*/1);
  auto b = Peer::Start(/*incarnation=*/2);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);

  {
    std::atomic<bool> done{false};
    std::thread poll_a([&] {
      while (!done) {
        if (!a->server->PollOnce(1).ok()) break;
      }
    });
    const Status joined = b->membership->Join(a->server->address(),
                                              /*deadline_ms=*/2000.0);
    done = true;
    poll_a.join();
    ASSERT_TRUE(joined.ok()) << joined.ToString();
  }

  for (int i = 0; i < 5000; ++i) {
    if (a->membership->num_alive() == 2 && b->membership->num_alive() == 2) {
      break;
    }
    a->Step();
    b->Step();
  }
  ASSERT_EQ(a->membership->num_alive(), 2u);
  ASSERT_EQ(b->membership->num_alive(), 2u);

  // Hundreds of tick rounds with every exchange kind in flight at
  // once. The views must stay converged and the stabilize -> notify
  // follow-ups must keep landing on the other side.
  for (int i = 0; i < 400; ++i) {
    a->Step();
    b->Step();
  }
  EXPECT_EQ(a->membership->num_alive(), 2u);
  EXPECT_EQ(b->membership->num_alive(), 2u);
  EXPECT_GT(a->membership->counters().notifies_sent, 1u);
  EXPECT_GT(b->membership->counters().notifies_sent, 1u);
  EXPECT_GT(a->membership->counters().notifies_served, 1u);
  EXPECT_GT(b->membership->counters().notifies_served, 1u);
  // Two live single-threaded peers stepped in lockstep never miss.
  EXPECT_EQ(a->membership->counters().members_marked_dead, 0u);
  EXPECT_EQ(b->membership->counters().members_marked_dead, 0u);
}

uint64_t IncOf(const Peer& p, const NetAddress& addr) {
  for (const MemberEntry& e : p.membership->Entries()) {
    if (e.addr == addr) return e.incarnation;
  }
  ADD_FAILURE() << "no entry for peer";
  return 0;
}

// A partition that outlasts the failure detector leaves both sides
// holding dead tombstones for each other. Probes and gossip only ever
// target alive members, so without the reconnect sweep the split would
// be permanent even after the network heals (DESIGN.md §11).
TEST(MembershipTest, ReconnectSweepHealsAMutualDeathPartition) {
  auto a = Peer::Start(/*incarnation=*/1, /*reconnect_period_ms=*/30.0);
  auto b = Peer::Start(/*incarnation=*/2, /*reconnect_period_ms=*/30.0);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);

  {
    std::atomic<bool> done{false};
    std::thread poll_a([&] {
      while (!done) {
        if (!a->server->PollOnce(1).ok()) break;
      }
    });
    const Status joined = b->membership->Join(a->server->address(),
                                              /*deadline_ms=*/2000.0);
    done = true;
    poll_a.join();
    ASSERT_TRUE(joined.ok()) << joined.ToString();
  }
  for (int i = 0; i < 5000; ++i) {
    if (a->membership->num_alive() == 2 && b->membership->num_alive() == 2) {
      break;
    }
    a->Step();
    b->Step();
  }
  ASSERT_EQ(a->membership->num_alive(), 2u);
  ASSERT_EQ(b->membership->num_alive(), 2u);

  // Fabricate the partition's aftermath: each side merges a death
  // rumor for the other at the other's *current* incarnation (the tie
  // resolves toward the terminal status), exactly what a dead-striking
  // majority would have gossiped before the cut healed.
  const NetAddress a_addr = a->server->address();
  const NetAddress b_addr = b->server->address();
  auto tombstone = [](const NetAddress& addr, uint64_t inc) {
    MemberEntry e;
    e.addr = addr;
    e.incarnation = inc;
    e.status = MemberStatus::kDead;
    return e;
  };
  ASSERT_TRUE(a->membership
                  ->HandleGossip(EncodeViewMessage(
                      {tombstone(b_addr, IncOf(*a, b_addr))}))
                  .ok());
  ASSERT_TRUE(b->membership
                  ->HandleGossip(EncodeViewMessage(
                      {tombstone(a_addr, IncOf(*b, a_addr))}))
                  .ok());
  ASSERT_EQ(a->membership->num_alive(), 1u);
  ASSERT_EQ(b->membership->num_alive(), 1u);

  // Only the reconnect sweep can get these two talking again: the
  // probe carries the tombstone, the target refutes with a fresher
  // incarnation, and the reply resurrects it on the prober's side.
  for (int i = 0; i < 5000; ++i) {
    if (a->membership->num_alive() == 2 && b->membership->num_alive() == 2) {
      break;
    }
    a->Step();
    b->Step();
  }
  EXPECT_EQ(a->membership->num_alive(), 2u);
  EXPECT_EQ(b->membership->num_alive(), 2u);
  EXPECT_GE(a->membership->counters().reconnect_probes +
                b->membership->counters().reconnect_probes,
            1u);
  EXPECT_GE(a->membership->counters().members_resurrected +
                b->membership->counters().members_resurrected,
            1u);
}

}  // namespace
}  // namespace rpc
}  // namespace p2prange
