// The worker-pool executor behind the daemon's data path: jobs go in
// tagged, results come back through the completion queue, the pipe
// doorbell makes them visible to poll(), and a full queue sheds
// instead of blocking. Suite is RpcExecutorTest — the query layer's
// plan executor already owns the name ExecutorTest.
#include "rpc/executor.h"

#include <poll.h>

#include <chrono>
#include <future>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace p2prange {
namespace rpc {
namespace {

using Options = Executor::Options;
using Completion = Executor::Completion;

// Drains until `want` completions arrived or ~2s elapsed. The doorbell
// is level-triggered, so polling it is the honest way to wait.
std::vector<Completion> AwaitCompletions(Executor& exec, size_t want) {
  std::vector<Completion> got;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (got.size() < want && std::chrono::steady_clock::now() < deadline) {
    struct pollfd pfd = {exec.doorbell_fd(), POLLIN, 0};
    ::poll(&pfd, 1, 50);
    auto batch = exec.DrainCompletions();
    got.insert(got.end(), std::make_move_iterator(batch.begin()),
               std::make_move_iterator(batch.end()));
  }
  return got;
}

TEST(RpcExecutorTest, MakeRejectsUselessOptions) {
  EXPECT_TRUE(Executor::Make({.workers = 0, .queue_depth = 8})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(Executor::Make({.workers = -2, .queue_depth = 8})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(Executor::Make({.workers = 2, .queue_depth = 0})
                  .status()
                  .IsInvalidArgument());
}

TEST(RpcExecutorTest, JobsCompleteUnderTheirTags) {
  auto exec = Executor::Make({.workers = 3, .queue_depth = 64});
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();

  for (uint64_t tag = 1; tag <= 20; ++tag) {
    ASSERT_TRUE((*exec)->TrySubmit(
        tag, [tag] { return "result-" + std::to_string(tag); }));
  }

  auto done = AwaitCompletions(**exec, 20);
  ASSERT_EQ(done.size(), 20u);
  std::set<uint64_t> tags;
  for (const auto& c : done) {
    tags.insert(c.tag);
    EXPECT_EQ(c.payload, "result-" + std::to_string(c.tag));
  }
  EXPECT_EQ(tags.size(), 20u);  // every tag exactly once

  const ExecutorStats stats = (*exec)->snapshot();
  EXPECT_EQ(stats.submitted, 20u);
  EXPECT_EQ(stats.completed, 20u);
  EXPECT_EQ(stats.shed, 0u);
}

TEST(RpcExecutorTest, DoorbellBecomesReadableOnCompletion) {
  auto exec = Executor::Make({.workers = 1, .queue_depth = 8});
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();

  ASSERT_TRUE((*exec)->TrySubmit(7, [] { return std::string("ding"); }));

  struct pollfd pfd = {(*exec)->doorbell_fd(), POLLIN, 0};
  ASSERT_GT(::poll(&pfd, 1, 2000), 0);
  ASSERT_TRUE(pfd.revents & POLLIN);

  auto done = (*exec)->DrainCompletions();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].tag, 7u);
  EXPECT_EQ(done[0].payload, "ding");

  // Drained: the doorbell is quiet again until the next completion.
  pfd.revents = 0;
  EXPECT_EQ(::poll(&pfd, 1, 0), 0);
}

TEST(RpcExecutorTest, FullQueueShedsInsteadOfBlocking) {
  auto exec = Executor::Make({.workers = 1, .queue_depth = 2});
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();

  // Park the lone worker so the queue genuinely fills.
  auto gate = std::make_shared<std::promise<void>>();
  auto opened = std::make_shared<std::shared_future<void>>(
      gate->get_future().share());
  ASSERT_TRUE((*exec)->TrySubmit(1, [opened] {
    opened->wait();
    return std::string("slow");
  }));

  // The worker holds job 1; two more fit in the queue, the next sheds.
  // Give the worker a moment to take job 1 off the queue first.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_TRUE((*exec)->TrySubmit(2, [] { return std::string("b"); }));
  EXPECT_TRUE((*exec)->TrySubmit(3, [] { return std::string("c"); }));
  EXPECT_FALSE((*exec)->TrySubmit(4, [] { return std::string("nope"); }));
  EXPECT_FALSE((*exec)->TrySubmit(5, [] { return std::string("nope"); }));

  gate->set_value();
  auto done = AwaitCompletions(**exec, 3);
  ASSERT_EQ(done.size(), 3u);

  const ExecutorStats stats = (*exec)->snapshot();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.shed, 2u);
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_GE(stats.max_queue, 2u);
}

TEST(RpcExecutorTest, ShutdownFinishesAdmittedJobsAndStopsIntake) {
  auto exec = Executor::Make({.workers = 2, .queue_depth = 64});
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();

  for (uint64_t tag = 1; tag <= 10; ++tag) {
    ASSERT_TRUE((*exec)->TrySubmit(tag, [tag] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      return std::to_string(tag);
    }));
  }

  (*exec)->Shutdown();  // must drain all ten before joining

  EXPECT_FALSE((*exec)->TrySubmit(99, [] { return std::string("late"); }));

  auto done = (*exec)->DrainCompletions();
  EXPECT_EQ(done.size(), 10u);
  EXPECT_EQ((*exec)->snapshot().completed, 10u);

  (*exec)->Shutdown();  // idempotent
}

TEST(RpcExecutorTest, ManyJobsAcrossWorkersAllComplete) {
  auto exec = Executor::Make({.workers = 4, .queue_depth = 512});
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();

  constexpr int kJobs = 300;
  int admitted = 0;
  for (uint64_t tag = 0; tag < kJobs; ++tag) {
    if ((*exec)->TrySubmit(tag, [tag] { return std::to_string(tag * tag); })) {
      ++admitted;
    }
  }
  ASSERT_EQ(admitted, kJobs);  // depth 512 never fills

  auto done = AwaitCompletions(**exec, kJobs);
  ASSERT_EQ(done.size(), static_cast<size_t>(kJobs));
  for (const auto& c : done) {
    EXPECT_EQ(c.payload, std::to_string(c.tag * c.tag));
  }
}

// Regression: Shutdown used to iterate and clear workers_ without the
// lock, so two simultaneous callers (daemon teardown racing the
// destructor) could join/clear the same std::thread concurrently. Now
// exactly one caller swaps the pool out under mu_ and joins; the rest
// wait on shutdown_done_. Runs under TSan in the check.sh/CI gate.
TEST(RpcExecutorTest, ConcurrentShutdownIsSafe) {
  for (int round = 0; round < 10; ++round) {
    auto exec = Executor::Make({.workers = 3, .queue_depth = 64});
    ASSERT_TRUE(exec.ok()) << exec.status().ToString();

    constexpr uint64_t kJobs = 24;
    for (uint64_t tag = 1; tag <= kJobs; ++tag) {
      ASSERT_TRUE((*exec)->TrySubmit(tag, [tag] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        return std::to_string(tag);
      }));
    }

    std::vector<std::thread> stoppers;
    for (int t = 0; t < 3; ++t) {
      stoppers.emplace_back([&exec] { (*exec)->Shutdown(); });
    }
    for (std::thread& t : stoppers) t.join();

    // Every caller returned only after the join finished, so every
    // admitted job completed and the pool is fully stopped.
    EXPECT_EQ((*exec)->DrainCompletions().size(), kJobs);
    EXPECT_EQ((*exec)->snapshot().completed, kJobs);
    EXPECT_FALSE((*exec)->TrySubmit(99, [] { return std::string("late"); }));
  }
}

}  // namespace
}  // namespace rpc
}  // namespace p2prange
