// The Overlay contract, exercised identically against all three
// substrates: ownership agrees between the routed path and the
// oracle, replica candidates exclude the owner, membership churn
// (join / leave / fail / recover) keeps the routing surface sound,
// and every hop lands in the accounted network stats.
#include "overlay/overlay.h"

#include <gtest/gtest.h>

#include <set>

#include "overlay/factory.h"

namespace p2prange {
namespace overlay {
namespace {

class OverlayContractTest : public ::testing::TestWithParam<Kind> {
 protected:
  std::unique_ptr<Overlay> MakeNet(size_t n, uint64_t seed = 11) {
    OverlayParams params;
    params.kind = GetParam();
    auto net = MakeOverlay(params, n, seed, chord::ChordConfig{});
    EXPECT_TRUE(net.ok()) << net.status();
    return std::move(net).ValueUnsafe();
  }
};

TEST_P(OverlayContractTest, KindNamesRoundTrip) {
  auto net = MakeNet(8);
  EXPECT_EQ(net->kind(), GetParam());
  auto back = KindFromName(net->name());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, GetParam());
  EXPECT_FALSE(KindFromName("pastry").ok());
}

TEST_P(OverlayContractTest, AlivePeersOrderedIsSortedAndComplete) {
  auto net = MakeNet(24);
  const std::vector<PeerInfo> peers = net->AlivePeersOrdered();
  ASSERT_EQ(peers.size(), 24u);
  EXPECT_EQ(net->num_alive(), 24u);
  std::set<std::string> addrs;
  for (size_t i = 0; i < peers.size(); ++i) {
    if (i > 0) {
      EXPECT_LE(peers[i - 1].id, peers[i].id);
    }
    EXPECT_TRUE(net->IsAlive(peers[i].addr));
    addrs.insert(peers[i].addr.ToString());
  }
  EXPECT_EQ(addrs.size(), 24u) << "duplicate addresses in the peer list";
}

TEST_P(OverlayContractTest, RouteAgreesWithOracle) {
  auto net = MakeNet(32);
  for (uint32_t i = 0; i < 64; ++i) {
    const uint32_t id = i * 0x9E3779B9u;
    auto oracle = net->OwnerOracle(id);
    ASSERT_TRUE(oracle.ok()) << oracle.status();
    auto origin = net->RandomAliveAddress();
    ASSERT_TRUE(origin.ok());
    auto routed = net->RouteToOwner(*origin, id);
    ASSERT_TRUE(routed.ok()) << routed.status();
    EXPECT_EQ(routed->owner.addr, oracle->addr) << "id " << id;
    EXPECT_GE(routed->hops, 0);
    EXPECT_GE(routed->latency_ms, 0.0);
  }
}

TEST_P(OverlayContractTest, ReplicaCandidatesExcludeOwnerAndAreDistinct) {
  auto net = MakeNet(16);
  for (const PeerInfo& peer : net->AlivePeersOrdered()) {
    const std::vector<PeerInfo> replicas = net->ReplicaCandidates(peer.addr);
    EXPECT_FALSE(replicas.empty());
    std::set<std::string> seen;
    for (const PeerInfo& r : replicas) {
      EXPECT_NE(r.addr, peer.addr) << "owner listed as its own replica";
      EXPECT_TRUE(seen.insert(r.addr.ToString()).second);
    }
  }
}

TEST_P(OverlayContractTest, MembershipLifecycle) {
  auto net = MakeNet(12);
  auto joined = net->AddNode();
  ASSERT_TRUE(joined.ok()) << joined.status();
  net->Stabilize(2);
  EXPECT_EQ(net->num_alive(), 13u);
  EXPECT_TRUE(net->IsAlive(joined->addr));

  ASSERT_TRUE(net->Leave(joined->addr).ok());
  net->Stabilize(1);
  EXPECT_EQ(net->num_alive(), 12u);
  EXPECT_FALSE(net->IsAlive(joined->addr));

  // Abrupt failure and recovery of an existing peer.
  const PeerInfo victim = net->AlivePeersOrdered().front();
  ASSERT_TRUE(net->Fail(victim.addr).ok());
  net->Stabilize(1);
  EXPECT_FALSE(net->IsAlive(victim.addr));
  EXPECT_EQ(net->num_alive(), 11u);

  ASSERT_TRUE(net->Recover(victim.addr).ok());
  net->Stabilize(1);
  net->RepairRouting();
  EXPECT_TRUE(net->IsAlive(victim.addr));
  EXPECT_EQ(net->num_alive(), 12u);

  // The routing surface survived the churn: every probe still lands
  // on the oracle's owner.
  for (uint32_t i = 0; i < 16; ++i) {
    const uint32_t id = 0x1234567u + i * 0x01000193u;
    auto oracle = net->OwnerOracle(id);
    ASSERT_TRUE(oracle.ok());
    auto origin = net->RandomAliveAddress();
    ASSERT_TRUE(origin.ok());
    auto routed = net->RouteToOwner(*origin, id);
    ASSERT_TRUE(routed.ok()) << routed.status();
    EXPECT_EQ(routed->owner.addr, oracle->addr);
  }
}

TEST_P(OverlayContractTest, RoutingAroundFailedOwner) {
  auto net = MakeNet(16);
  const uint32_t id = 0xDEADBEEF;
  auto before = net->OwnerOracle(id);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(net->Fail(before->addr).ok());
  net->Stabilize(2);
  net->RepairRouting();
  auto after = net->OwnerOracle(id);
  ASSERT_TRUE(after.ok());
  EXPECT_NE(after->addr, before->addr);
  auto origin = net->RandomAliveAddress();
  ASSERT_TRUE(origin.ok());
  auto routed = net->RouteToOwner(*origin, id);
  ASSERT_TRUE(routed.ok()) << routed.status();
  EXPECT_EQ(routed->owner.addr, after->addr);
}

TEST_P(OverlayContractTest, DeliverBytesIsAccounted) {
  auto net = MakeNet(8);
  net->ResetNetStats();
  const std::vector<PeerInfo> peers = net->AlivePeersOrdered();
  auto latency = net->DeliverBytes(peers[0].addr, peers[1].addr, 128);
  ASSERT_TRUE(latency.ok()) << latency.status();
  EXPECT_GE(*latency, 0.0);
  EXPECT_EQ(net->net_stats().messages, 1u);
  EXPECT_GE(net->net_stats().bytes, 128u);
}

TEST_P(OverlayContractTest, DeterministicUnderSeed) {
  auto a = MakeNet(20, 99);
  auto b = MakeNet(20, 99);
  const auto pa = a->AlivePeersOrdered();
  const auto pb = b->AlivePeersOrdered();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) EXPECT_EQ(pa[i], pb[i]);
  for (uint32_t i = 0; i < 8; ++i) {
    const uint32_t id = i * 0x61C88647u;
    auto oa = a->OwnerOracle(id);
    auto ob = b->OwnerOracle(id);
    ASSERT_TRUE(oa.ok() && ob.ok());
    EXPECT_EQ(oa->addr, ob->addr);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSubstrates, OverlayContractTest,
                         ::testing::Values(Kind::kChord, Kind::kCan,
                                           Kind::kTapestry),
                         [](const ::testing::TestParamInfo<Kind>& param) {
                           return std::string(KindName(param.param));
                         });

}  // namespace
}  // namespace overlay
}  // namespace p2prange
