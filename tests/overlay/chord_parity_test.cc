// Differential parity: the Chord-backed RangeCacheSystem, now driven
// through the overlay::Overlay contract, must stay bit-identical to
// the pre-refactor direct-ChordRing path. The goldens below were
// captured from the tree at the commit before the overlay seam was
// introduced, running exactly this seeded workload (48 peers, paper
// LSH, 2% loss, 90 lookups across a join, a graceful leave, an abrupt
// failure, and a crash/recover cycle). Every RNG draw, retry, and
// replica-failover decision feeds these counters, so any behavioral
// drift in the refactor — reordered draws, changed failover policy,
// different stabilization cadence — shows up as a mismatch here.
#include <gtest/gtest.h>

#include "core/system.h"
#include "overlay/overlay.h"
#include "rel/generator.h"

namespace p2prange {
namespace {

TEST(ChordParityTest, SeededWorkloadMatchesPreRefactorGoldens) {
  SystemConfig cfg;
  cfg.num_peers = 48;
  cfg.lsh = LshParams::Paper(HashFamilyType::kApproxMinwise, 7);
  cfg.seed = 7;
  cfg.descriptor_replication = 3;
  cfg.chord.latency.loss_rate = 0.02;
  auto sysr = RangeCacheSystem::Make(cfg, MakeNumbersCatalog(2000, 0, 1000, 5));
  ASSERT_TRUE(sysr.ok()) << sysr.status();
  auto sys = std::move(sysr).ValueUnsafe();
  ASSERT_EQ(sys.overlay().kind(), overlay::Kind::kChord);

  long hops = 0;
  int exact = 0, approx = 0, miss = 0;
  double recall_sum = 0;
  auto run = [&](uint32_t lo, uint32_t hi) {
    auto out = sys.LookupRange(PartitionKey{"Numbers", "key", Range(lo, hi)});
    ASSERT_TRUE(out.ok()) << out.status();
    hops += out->hops;
    if (out->match) {
      recall_sum += out->match->recall;
      if (out->match->exact) {
        ++exact;
      } else {
        ++approx;
      }
    } else {
      ++miss;
    }
  };

  for (int i = 0; i < 40; ++i) {
    const uint32_t lo = static_cast<uint32_t>((i * 37) % 900);
    run(lo, lo + 40 + static_cast<uint32_t>(i % 50));
  }

  // Churn: a join, a graceful leave, an abrupt failure, crash/recover.
  ASSERT_TRUE(sys.AddPeer().ok());
  auto pick_victim = [&]() {
    for (;;) {
      auto v = sys.overlay().RandomAliveAddress();
      EXPECT_TRUE(v.ok());
      if (*v != sys.source_address()) return *v;
    }
  };
  const NetAddress v1 = pick_victim();
  ASSERT_TRUE(sys.RemovePeer(v1, /*graceful=*/true).ok());
  const NetAddress v2 = pick_victim();
  ASSERT_TRUE(sys.RemovePeer(v2, /*graceful=*/false).ok());
  const NetAddress v3 = pick_victim();
  ASSERT_TRUE(sys.CrashPeer(v3).ok());
  for (int i = 0; i < 10; ++i) {
    const uint32_t lo = static_cast<uint32_t>((i * 53) % 900);
    run(lo, lo + 60);
  }
  ASSERT_TRUE(sys.RecoverPeer(v3).ok());
  for (int i = 0; i < 40; ++i) {
    const uint32_t lo = static_cast<uint32_t>((i * 37) % 900);
    run(lo, lo + 40 + static_cast<uint32_t>(i % 50));
  }

  // Aggregates observed at the query API.
  EXPECT_EQ(hops, 1346);
  EXPECT_EQ(exact, 34);
  EXPECT_EQ(approx, 3);
  EXPECT_EQ(miss, 53);
  EXPECT_NEAR(recall_sum, 36.134740624, 1e-8);

  // Full metrics surface.
  const SystemMetrics& m = sys.metrics();
  EXPECT_EQ(m.range_lookups, 90u);
  EXPECT_EQ(m.exact_hits, 34u);
  EXPECT_EQ(m.approx_hits, 3u);
  EXPECT_EQ(m.misses, 53u);
  EXPECT_EQ(m.partitions_published, 56u);
  EXPECT_EQ(m.descriptors_stored, 742u);
  EXPECT_EQ(m.chord_hops, 1346u);
  EXPECT_EQ(m.retransmissions, 18u);
  EXPECT_EQ(m.stale_evictions, 15u);
  EXPECT_EQ(m.peer_crashes, 1u);
  EXPECT_EQ(m.peer_recoveries, 1u);
  EXPECT_EQ(m.wal_records_replayed, 5u);
  EXPECT_EQ(m.recovery_descriptors_restored, 5u);
  EXPECT_EQ(m.recovery_descriptors_repaired, 1u);

  // Wire-level accounting: every message the refactored path sent.
  const NetworkStats& st = sys.overlay().net_stats();
  EXPECT_EQ(st.messages, 2675u);
  EXPECT_EQ(st.bytes, 171228u);
  EXPECT_EQ(st.failed_deliveries, 0u);
  EXPECT_EQ(st.lost_messages, 44u);
}

}  // namespace
}  // namespace p2prange
