#include "store/bucket_store.h"

#include <gtest/gtest.h>

namespace p2prange {
namespace {

PartitionKey Key(uint32_t lo, uint32_t hi, const std::string& rel = "Numbers",
                 const std::string& attr = "key") {
  return PartitionKey{rel, attr, Range(lo, hi)};
}

PartitionDescriptor Desc(uint32_t lo, uint32_t hi, uint16_t holder_port = 1) {
  return PartitionDescriptor{Key(lo, hi), NetAddress{1, holder_port}};
}

TEST(PartitionKeyTest, EqualityAndColumnIdentity) {
  EXPECT_EQ(Key(1, 5), Key(1, 5));
  EXPECT_NE(Key(1, 5), Key(1, 6));
  EXPECT_TRUE(Key(1, 5).SameColumn(Key(9, 20)));
  EXPECT_FALSE(Key(1, 5).SameColumn(Key(1, 5, "Other")));
  EXPECT_FALSE(Key(1, 5).SameColumn(Key(1, 5, "Numbers", "payload")));
}

TEST(PartitionKeyTest, ToStringFormat) {
  EXPECT_EQ(Key(3, 9).ToString(), "Numbers.key[3, 9]");
}

TEST(PartitionKeyTest, HashDiffersAcrossRanges) {
  PartitionKeyHash h;
  EXPECT_NE(h(Key(1, 5)), h(Key(1, 6)));
  EXPECT_NE(h(Key(1, 5)), h(Key(2, 5)));
}

TEST(BucketStoreTest, EmptyBucketGivesNoMatch) {
  BucketStore store;
  EXPECT_FALSE(store.BestMatch(42, Key(0, 10), MatchCriterion::kJaccard));
  EXPECT_FALSE(store.BestMatchAnywhere(Key(0, 10), MatchCriterion::kJaccard));
}

TEST(BucketStoreTest, InsertAndExactMatch) {
  BucketStore store;
  store.Insert(42, Desc(30, 50));
  EXPECT_TRUE(store.ContainsExact(42, Key(30, 50)));
  EXPECT_FALSE(store.ContainsExact(42, Key(30, 49)));
  EXPECT_FALSE(store.ContainsExact(43, Key(30, 50)));
  auto m = store.BestMatch(42, Key(30, 50), MatchCriterion::kJaccard);
  ASSERT_TRUE(m.has_value());
  EXPECT_TRUE(m->exact);
  EXPECT_DOUBLE_EQ(m->similarity, 1.0);
}

TEST(BucketStoreTest, BestMatchPicksHighestJaccard) {
  BucketStore store;
  store.Insert(7, Desc(0, 99));     // vs [40,60]: jaccard 21/100
  store.Insert(7, Desc(30, 70));    // vs [40,60]: jaccard 21/41
  store.Insert(7, Desc(500, 600));  // vs [40,60]: 0
  auto m = store.BestMatch(7, Key(40, 60), MatchCriterion::kJaccard);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->descriptor.key.range, Range(30, 70));
  EXPECT_FALSE(m->exact);
  EXPECT_DOUBLE_EQ(m->similarity, 21.0 / 41.0);
}

TEST(BucketStoreTest, CriterionChangesTheWinner) {
  BucketStore store;
  // Query [40,60]. Candidate A = [42,58]: close but does not contain.
  // Candidate B = [0,200]: contains fully but low Jaccard.
  store.Insert(7, Desc(42, 58));
  store.Insert(7, Desc(0, 200));
  auto jaccard = store.BestMatch(7, Key(40, 60), MatchCriterion::kJaccard);
  ASSERT_TRUE(jaccard.has_value());
  EXPECT_EQ(jaccard->descriptor.key.range, Range(42, 58));
  auto containment = store.BestMatch(7, Key(40, 60), MatchCriterion::kContainment);
  ASSERT_TRUE(containment.has_value());
  EXPECT_EQ(containment->descriptor.key.range, Range(0, 200));
  EXPECT_DOUBLE_EQ(containment->similarity, 1.0);
  EXPECT_FALSE(containment->exact);
}

TEST(BucketStoreTest, MatchIgnoresOtherColumns) {
  BucketStore store;
  store.Insert(7, PartitionDescriptor{Key(40, 60, "Other"), NetAddress{1, 1}});
  store.Insert(7, PartitionDescriptor{Key(40, 60, "Numbers", "payload"),
                                      NetAddress{1, 1}});
  EXPECT_FALSE(store.BestMatch(7, Key(40, 60), MatchCriterion::kJaccard));
}

TEST(BucketStoreTest, BucketsAreIndependent) {
  BucketStore store;
  store.Insert(1, Desc(0, 10));
  store.Insert(2, Desc(100, 110));
  auto m = store.BestMatch(1, Key(100, 110), MatchCriterion::kJaccard);
  ASSERT_TRUE(m.has_value());
  EXPECT_DOUBLE_EQ(m->similarity, 0.0);  // only [0,10] lives in bucket 1
}

TEST(BucketStoreTest, BestMatchAnywhereSearchesAllBuckets) {
  BucketStore store;
  store.Insert(1, Desc(0, 10));
  store.Insert(2, Desc(100, 110));
  store.Insert(3, Desc(40, 60));
  auto m = store.BestMatchAnywhere(Key(41, 61), MatchCriterion::kJaccard);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->descriptor.key.range, Range(40, 60));
}

TEST(BucketStoreTest, DuplicateInsertRefreshesInsteadOfGrowing) {
  BucketStore store;
  store.Insert(5, Desc(0, 10, /*holder_port=*/1));
  store.Insert(5, Desc(0, 10, /*holder_port=*/2));
  EXPECT_EQ(store.num_descriptors(), 1u);
  auto contents = store.BucketContents(5);
  ASSERT_EQ(contents.size(), 1u);
  EXPECT_EQ(contents[0].holder.port, 2u) << "holder must be updated";
}

TEST(BucketStoreTest, SameKeyInDifferentBucketsCountsTwice) {
  BucketStore store;
  store.Insert(5, Desc(0, 10));
  store.Insert(6, Desc(0, 10));
  EXPECT_EQ(store.num_descriptors(), 2u);
  EXPECT_EQ(store.num_buckets(), 2u);
}

TEST(BucketStoreTest, LruEvictionDropsOldest) {
  BucketStore store(/*max_descriptors=*/3);
  store.Insert(1, Desc(0, 10));
  store.Insert(2, Desc(20, 30));
  store.Insert(3, Desc(40, 50));
  store.Insert(4, Desc(60, 70));  // evicts (1, [0,10])
  EXPECT_EQ(store.num_descriptors(), 3u);
  EXPECT_EQ(store.evictions(), 1u);
  EXPECT_FALSE(store.ContainsExact(1, Key(0, 10)));
  EXPECT_TRUE(store.ContainsExact(4, Key(60, 70)));
}

TEST(BucketStoreTest, RefreshProtectsFromEviction) {
  BucketStore store(/*max_descriptors=*/3);
  store.Insert(1, Desc(0, 10));
  store.Insert(2, Desc(20, 30));
  store.Insert(3, Desc(40, 50));
  store.Insert(1, Desc(0, 10));   // refresh -> most recent
  store.Insert(4, Desc(60, 70));  // evicts (2, [20,30]) instead
  EXPECT_TRUE(store.ContainsExact(1, Key(0, 10)));
  EXPECT_FALSE(store.ContainsExact(2, Key(20, 30)));
}

TEST(BucketStoreTest, EvictionRemovesEmptyBuckets) {
  BucketStore store(/*max_descriptors=*/1);
  store.Insert(1, Desc(0, 10));
  store.Insert(2, Desc(20, 30));
  EXPECT_EQ(store.num_buckets(), 1u);
  EXPECT_EQ(store.BucketContents(1).size(), 0u);
}

TEST(BucketStoreTest, UnboundedStoreNeverEvicts) {
  BucketStore store;
  for (uint32_t i = 0; i < 500; ++i) {
    store.Insert(i % 10, Desc(i * 10, i * 10 + 5));
  }
  EXPECT_EQ(store.num_descriptors(), 500u);
  EXPECT_EQ(store.evictions(), 0u);
}

TEST(MatchCriterionTest, Names) {
  EXPECT_STREQ(MatchCriterionName(MatchCriterion::kJaccard), "jaccard");
  EXPECT_STREQ(MatchCriterionName(MatchCriterion::kContainment), "containment");
}

}  // namespace
}  // namespace p2prange
