#include "store/interval_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.h"
#include "store/bucket_store.h"

namespace p2prange {
namespace {

PartitionKey Key(uint32_t lo, uint32_t hi, const std::string& rel = "Numbers",
                 const std::string& attr = "key") {
  return PartitionKey{rel, attr, Range(lo, hi)};
}

PartitionDescriptor Desc(uint32_t lo, uint32_t hi, uint16_t port = 1) {
  return PartitionDescriptor{Key(lo, hi), NetAddress{1, port}};
}

std::vector<Range> Overlapping(const IntervalIndex& index, const PartitionKey& q) {
  std::vector<Range> out;
  index.ForEachOverlapping(
      q, [&](const PartitionDescriptor& d) { out.push_back(d.key.range); });
  std::sort(out.begin(), out.end(), [](const Range& a, const Range& b) {
    return a.lo() < b.lo() || (a.lo() == b.lo() && a.hi() < b.hi());
  });
  return out;
}

TEST(IntervalIndexTest, EmptyIndex) {
  IntervalIndex index;
  EXPECT_EQ(index.size(), 0u);
  EXPECT_TRUE(Overlapping(index, Key(0, 100)).empty());
  EXPECT_EQ(index.AnyOfColumn(Key(0, 100)), nullptr);
}

TEST(IntervalIndexTest, BasicOverlapEnumeration) {
  IntervalIndex index;
  index.Insert(Desc(0, 10));
  index.Insert(Desc(20, 30));
  index.Insert(Desc(5, 25));
  index.Insert(Desc(40, 50));
  const auto hits = Overlapping(index, Key(8, 22));
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0], Range(0, 10));
  EXPECT_EQ(hits[1], Range(5, 25));
  EXPECT_EQ(hits[2], Range(20, 30));
}

TEST(IntervalIndexTest, ColumnsAreIsolated) {
  IntervalIndex index;
  index.Insert(Desc(0, 100));
  index.Insert(PartitionDescriptor{Key(0, 100, "Other"), NetAddress{1, 2}});
  index.Insert(PartitionDescriptor{Key(0, 100, "Numbers", "payload"),
                                   NetAddress{1, 3}});
  EXPECT_EQ(index.size(), 3u);
  EXPECT_EQ(index.num_columns(), 3u);
  EXPECT_EQ(Overlapping(index, Key(50, 60)).size(), 1u);
}

TEST(IntervalIndexTest, InsertRefreshUpdatesHolder) {
  IntervalIndex index;
  index.Insert(Desc(0, 10, 1));
  index.Insert(Desc(0, 10, 9));
  EXPECT_EQ(index.size(), 1u);
  const PartitionDescriptor* any = index.AnyOfColumn(Key(0, 10));
  ASSERT_NE(any, nullptr);
  EXPECT_EQ(any->holder.port, 9u);
}

TEST(IntervalIndexTest, EraseRemovesAndCleansColumns) {
  IntervalIndex index;
  index.Insert(Desc(0, 10));
  index.Insert(Desc(20, 30));
  EXPECT_TRUE(index.Erase(Key(0, 10)));
  EXPECT_FALSE(index.Erase(Key(0, 10)));
  EXPECT_FALSE(index.Erase(Key(999, 1000)));
  EXPECT_EQ(index.size(), 1u);
  EXPECT_TRUE(Overlapping(index, Key(0, 15)).empty());
  EXPECT_TRUE(index.Erase(Key(20, 30)));
  EXPECT_EQ(index.num_columns(), 0u);
}

TEST(IntervalIndexTest, MutateBetweenQueries) {
  IntervalIndex index;
  index.Insert(Desc(0, 10));
  EXPECT_EQ(Overlapping(index, Key(5, 6)).size(), 1u);
  index.Insert(Desc(4, 8));
  EXPECT_EQ(Overlapping(index, Key(5, 6)).size(), 2u);  // lazy rebuild kicks in
  index.Erase(Key(0, 10));
  EXPECT_EQ(Overlapping(index, Key(5, 6)).size(), 1u);
}

TEST(IntervalIndexTest, DifferentialAgainstBruteForce) {
  Rng rng(77);
  IntervalIndex index;
  std::vector<PartitionDescriptor> shadow;
  for (int step = 0; step < 2000; ++step) {
    const int op = static_cast<int>(rng.NextBounded(10));
    if (op < 6 || shadow.empty()) {
      const uint32_t lo = static_cast<uint32_t>(rng.NextBounded(1000));
      const uint32_t hi = lo + static_cast<uint32_t>(rng.NextBounded(200));
      const PartitionDescriptor d = Desc(lo, hi);
      index.Insert(d);
      // Shadow set is keyed by range too.
      auto it = std::find_if(shadow.begin(), shadow.end(),
                             [&](const PartitionDescriptor& s) {
                               return s.key == d.key;
                             });
      if (it == shadow.end()) shadow.push_back(d);
    } else if (op < 8) {
      const size_t victim = rng.NextBounded(shadow.size());
      EXPECT_TRUE(index.Erase(shadow[victim].key));
      shadow.erase(shadow.begin() + static_cast<long>(victim));
    } else {
      const uint32_t lo = static_cast<uint32_t>(rng.NextBounded(1100));
      const uint32_t hi = lo + static_cast<uint32_t>(rng.NextBounded(300));
      const PartitionKey q = Key(lo, hi);
      std::multiset<uint64_t> expected;
      for (const PartitionDescriptor& s : shadow) {
        if (q.range.Overlaps(s.key.range)) {
          expected.insert((static_cast<uint64_t>(s.key.range.lo()) << 32) |
                          s.key.range.hi());
        }
      }
      std::multiset<uint64_t> got;
      index.ForEachOverlapping(q, [&](const PartitionDescriptor& d) {
        got.insert((static_cast<uint64_t>(d.key.range.lo()) << 32) |
                   d.key.range.hi());
      });
      ASSERT_EQ(got, expected) << "step " << step;
    }
    ASSERT_EQ(index.size(), shadow.size());
  }
}

TEST(BucketStoreIndexTest, BestMatchAnywhereAgreesWithLinearScan) {
  Rng rng(99);
  BucketStore store;
  std::vector<std::pair<chord::ChordId, PartitionDescriptor>> shadow;
  for (int i = 0; i < 500; ++i) {
    const uint32_t lo = static_cast<uint32_t>(rng.NextBounded(1000));
    const uint32_t hi = lo + static_cast<uint32_t>(rng.NextBounded(150));
    const chord::ChordId bucket = static_cast<chord::ChordId>(rng.NextBounded(40));
    const PartitionDescriptor d = Desc(lo, hi);
    store.Insert(bucket, d);
    shadow.emplace_back(bucket, d);
  }
  for (int trial = 0; trial < 200; ++trial) {
    const uint32_t lo = static_cast<uint32_t>(rng.NextBounded(1000));
    const PartitionKey q = Key(lo, lo + static_cast<uint32_t>(rng.NextBounded(200)));
    for (MatchCriterion criterion :
         {MatchCriterion::kJaccard, MatchCriterion::kContainment}) {
      // Reference: linear scan over every stored descriptor.
      double best_score = -1.0;
      for (const auto& [bucket, d] : shadow) {
        if (!d.key.SameColumn(q)) continue;
        const double score = criterion == MatchCriterion::kJaccard
                                 ? q.range.Jaccard(d.key.range)
                                 : q.range.ContainmentIn(d.key.range);
        best_score = std::max(best_score, score);
      }
      const auto got = store.BestMatchAnywhere(q, criterion);
      if (best_score < 0) {
        EXPECT_FALSE(got.has_value());
      } else {
        ASSERT_TRUE(got.has_value());
        EXPECT_DOUBLE_EQ(got->similarity, best_score);
      }
    }
  }
}

TEST(BucketStoreIndexTest, EvictionKeepsIndexConsistent) {
  BucketStore store(/*max_descriptors=*/5);
  for (uint32_t i = 0; i < 30; ++i) {
    store.Insert(i % 3, Desc(i * 10, i * 10 + 15));
  }
  EXPECT_EQ(store.num_descriptors(), 5u);
  // The surviving 5 descriptors are the most recent: i = 25..29, i.e.
  // ranges [250,265] .. [290,305]. Older ranges must be gone from the
  // peer-wide matcher.
  auto old = store.BestMatchAnywhere(Key(0, 50), MatchCriterion::kJaccard);
  ASSERT_TRUE(old.has_value()) << "zero-score fallback still reports something";
  EXPECT_DOUBLE_EQ(old->similarity, 0.0);
  auto fresh = store.BestMatchAnywhere(Key(250, 265), MatchCriterion::kJaccard);
  ASSERT_TRUE(fresh.has_value());
  EXPECT_DOUBLE_EQ(fresh->similarity, 1.0);
}

TEST(BucketStoreIndexTest, SameKeyInTwoBucketsSurvivesOneEviction) {
  BucketStore store;
  store.Insert(1, Desc(100, 200));
  store.Insert(2, Desc(100, 200));
  // Manual eviction path is internal; emulate with a capacity-bounded
  // store instead.
  BucketStore bounded(/*max_descriptors=*/2);
  bounded.Insert(1, Desc(100, 200));
  bounded.Insert(2, Desc(100, 200));
  bounded.Insert(3, Desc(500, 600));  // evicts (1, [100,200])
  auto match = bounded.BestMatchAnywhere(Key(100, 200), MatchCriterion::kJaccard);
  ASSERT_TRUE(match.has_value());
  EXPECT_DOUBLE_EQ(match->similarity, 1.0)
      << "the key still lives in bucket 2, so the index must keep it";
}

}  // namespace
}  // namespace p2prange
