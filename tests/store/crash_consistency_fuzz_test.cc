// Crash-consistency fuzzer for the durable descriptor store.
//
// Drives randomized insert/erase workloads against a
// DurableDescriptorStore, capturing the full "disk" (WAL image + both
// snapshot slots) after every operation and in the window between a
// checkpoint's snapshot write and its WAL truncation. Each captured
// disk is a crash point; recovery from it — clean, with a torn WAL
// tail, or with a flipped bit — must satisfy:
//
//  1. Prefix consistency: the recovered store equals the store as it
//     stood after SOME earlier operation (never a state that never
//     existed, never reordered or half-applied effects).
//  2. No undetected corruption: whenever recovery returns anything
//     other than the exact pre-crash state, it must say so (torn_tail,
//     wal_corrupted, snapshot_fallback, or wal_gap) — data loss is
//     allowed, silent data loss is not. The one principled exception:
//     a tear landing exactly on a frame boundary is byte-identical to
//     a disk where the lost appends never happened (an earlier clean
//     crash), so no log-structured store can flag it.
//  3. A clean crash (disk intact) recovers the exact pre-crash state.
//
// Point count scales with P2PRANGE_CRASH_FUZZ_POINTS (default exceeds
// 1000 crash points, i.e. >3000 recoveries across the 3 mutations).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "store/durable_store.h"
#include "wire/serde.h"

namespace p2prange {
namespace store {
namespace {

/// Canonical serialization of a store's full logical state, recency
/// order included — byte equality iff store equality.
std::string Canon(const BucketStore& store) {
  wire::Encoder enc;
  for (const auto& [bucket, descriptor] : store.EntriesOldestFirst()) {
    enc.PutVarint(bucket);
    wire::EncodePartitionDescriptor(descriptor, &enc);
  }
  return enc.Take();
}

/// True iff `size` lands exactly on a frame boundary of `wal` — the
/// truncated image then parses cleanly and is indistinguishable from a
/// log whose trailing appends never happened.
bool IsFrameAligned(const std::string& wal, size_t size) {
  size_t off = 0;
  while (off < size) {
    if (size - off < WriteAheadLog::kFrameHeaderBytes) return false;
    uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<uint32_t>(static_cast<unsigned char>(wal[off + i]))
             << (8 * i);
    }
    off += WriteAheadLog::kFrameHeaderBytes + len;
  }
  return off == size;
}

struct CrashPoint {
  std::string wal;
  std::string slot0;
  std::string slot1;
  std::string expected;  ///< canonical state a clean recovery must hit
  size_t num_prior_states = 0;  ///< prefix states recorded before this point
};

struct FuzzScenario {
  size_t capacity = 0;
  uint64_t checkpoint_every = 0;
  uint64_t seed = 0;
};

class CrashConsistencyFuzz : public ::testing::Test {
 protected:
  static size_t PointBudget() {
    if (const char* env = std::getenv("P2PRANGE_CRASH_FUZZ_POINTS")) {
      const long v = std::atol(env);
      if (v > 0) return static_cast<size_t>(v);
    }
    return 1200;
  }

  /// Runs one randomized workload, capturing a crash point per op plus
  /// one per mid-checkpoint window.
  void RunScenario(const FuzzScenario& scenario, size_t num_ops) {
    Rng rng(scenario.seed);
    DurabilityConfig cfg;
    cfg.checkpoint_every = scenario.checkpoint_every;
    DurableDescriptorStore durable(scenario.capacity, cfg);

    // All states the store has passed through, canonical form -> the
    // index of its first occurrence (for prefix-membership checks).
    std::vector<std::string> states{Canon(durable.store())};
    std::unordered_map<std::string, size_t> first_seen{{states[0], 0}};
    std::vector<CrashPoint> points;

    auto capture = [&](const std::string& expected) {
      CrashPoint p;
      p.wal = durable.wal().image();
      p.slot0 = durable.snapshots().slot(0);
      p.slot1 = durable.snapshots().slot(1);
      p.expected = expected;
      p.num_prior_states = states.size();
      points.push_back(std::move(p));
    };
    durable.set_checkpoint_hook([&] { capture(Canon(durable.store())); });

    // Small pools so erases hit and buckets collide.
    const uint32_t key_pool = 12, bucket_pool = 8, holder_pool = 4;
    for (size_t op = 0; op < num_ops; ++op) {
      const uint32_t k = static_cast<uint32_t>(rng.NextBounded(key_pool));
      PartitionDescriptor d{
          PartitionKey{"Patient", "age", Range(k * 10, k * 10 + 9)},
          NetAddress{1 + static_cast<uint32_t>(rng.NextBounded(holder_pool)),
                     7000}};
      if (rng.NextBernoulli(0.8)) {
        durable.Insert(static_cast<chord::ChordId>(rng.NextBounded(bucket_pool)),
                       d);
      } else {
        durable.EraseStale(d.key, d.holder);
      }
      const std::string canon = Canon(durable.store());
      states.push_back(canon);
      first_seen.emplace(canon, states.size() - 1);  // keeps earliest
      capture(canon);
    }

    Rng mutate_rng(scenario.seed ^ 0x9e3779b97f4a7c15ULL);
    for (const CrashPoint& p : points) {
      CheckRecovery(scenario, cfg, p, states, first_seen, "clean", mutate_rng);
      CheckRecovery(scenario, cfg, p, states, first_seen, "torn", mutate_rng);
      CheckRecovery(scenario, cfg, p, states, first_seen, "flip", mutate_rng);
      if (HasFatalFailure()) return;
    }
    total_points_ += points.size();
  }

  void CheckRecovery(const FuzzScenario& scenario, const DurabilityConfig& cfg,
                     const CrashPoint& p, const std::vector<std::string>& states,
                     const std::unordered_map<std::string, size_t>& first_seen,
                     const std::string& mutation, Rng& rng) {
    DurableDescriptorStore recovered(scenario.capacity, cfg);
    std::string wal = p.wal;
    std::string slot0 = p.slot0;
    std::string slot1 = p.slot1;
    if (mutation == "torn") {
      if (wal.empty()) return;  // nothing to tear
      const size_t tear =
          static_cast<size_t>(rng.NextInRange(1, std::min<size_t>(wal.size(), 48)));
      wal.resize(wal.size() - tear);
    } else if (mutation == "flip") {
      std::string* images[] = {&wal, &slot0, &slot1};
      size_t total = 0;
      for (std::string* img : images) total += img->size();
      if (total == 0) return;  // nothing to rot
      size_t bit = static_cast<size_t>(rng.NextBounded(total * 8));
      for (std::string* img : images) {
        if (bit < img->size() * 8) {
          (*img)[bit / 8] ^= static_cast<char>(1u << (bit % 8));
          break;
        }
        bit -= img->size() * 8;
      }
    }
    recovered.wal().mutable_image() = wal;
    recovered.snapshots().mutable_slot(0) = slot0;
    recovered.snapshots().mutable_slot(1) = slot1;
    const RecoveryReport report = recovered.Recover();
    const std::string canon = Canon(recovered.store());

    const std::string context = "seed=" + std::to_string(scenario.seed) +
                                " cap=" + std::to_string(scenario.capacity) +
                                " ckpt=" + std::to_string(cfg.checkpoint_every) +
                                " mutation=" + mutation;

    // (1) Prefix consistency.
    auto it = first_seen.find(canon);
    const bool is_prefix =
        (it != first_seen.end() && it->second < p.num_prior_states) ||
        canon == p.expected;
    ASSERT_TRUE(is_prefix) << context << ": recovered a state that never "
                           << "existed before the crash ("
                           << recovered.store().num_descriptors()
                           << " descriptors)";

    // (2) No undetected corruption: losing ground must be loud — except
    // for a frame-aligned tear, which is byte-identical to an earlier
    // clean crash and therefore undetectable in principle.
    if (canon != p.expected) {
      const bool aligned_tear =
          mutation == "torn" && IsFrameAligned(p.wal, wal.size());
      ASSERT_TRUE(report.torn_tail || report.wal_corrupted ||
                  report.snapshot_fallback || report.wal_gap || aligned_tear)
          << context << ": state regressed with no fault reported";
    }

    // (3) A clean crash recovers exactly the pre-crash state.
    if (mutation == "clean") {
      ASSERT_EQ(canon, p.expected)
          << context << ": intact disk failed to restore the exact state";
      ASSERT_FALSE(report.wal_corrupted) << context;
      ASSERT_FALSE(report.wal_gap) << context;
    }
    (void)states;
  }

  size_t total_points_ = 0;
};

TEST_F(CrashConsistencyFuzz, ThousandsOfRandomizedCrashPoints) {
  const size_t budget = PointBudget();
  // Scenario matrix: unbounded and LRU-bounded stores, checkpoints
  // off / aggressive / moderate. Seeds vary the workload inside each.
  const FuzzScenario base[] = {
      {0, 0, 0},   // pure WAL, unbounded
      {0, 7, 0},   // checkpoints, unbounded
      {5, 0, 0},   // pure WAL, tight LRU (evict records exercised)
      {5, 1, 0},   // checkpoint after every record, tight LRU
      {12, 16, 0}, // moderate capacity + checkpoint interval
  };
  const size_t num_scenarios = std::size(base);
  // Ops per run are also crash points per run (plus checkpoint-window
  // extras), so rounds * scenarios * ops >= budget.
  const size_t ops_per_run = 60;
  const size_t rounds =
      (budget + num_scenarios * ops_per_run - 1) / (num_scenarios * ops_per_run);
  for (size_t round = 0; round < rounds; ++round) {
    for (size_t s = 0; s < num_scenarios; ++s) {
      FuzzScenario scenario = base[s];
      scenario.seed = 1000 + round * 100 + s;
      RunScenario(scenario, ops_per_run);
      if (HasFatalFailure()) return;
    }
  }
  EXPECT_GE(total_points_, budget);
  RecordProperty("crash_points", static_cast<int>(total_points_));
}

// A focused regression: the mid-checkpoint window (snapshot written,
// WAL not yet truncated) must not double-apply under LRU pressure.
TEST_F(CrashConsistencyFuzz, MidCheckpointWindowUnderLruPressure) {
  FuzzScenario scenario;
  scenario.capacity = 3;
  scenario.checkpoint_every = 4;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    scenario.seed = seed;
    RunScenario(scenario, 40);
    if (HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace store
}  // namespace p2prange
