#include "store/wal.h"

#include <gtest/gtest.h>

#include "common/crc32c.h"
#include "common/random.h"
#include "store/durable_store.h"
#include "store/snapshot.h"

namespace p2prange {
namespace store {
namespace {

PartitionDescriptor Desc(uint32_t lo, uint32_t hi, uint32_t host) {
  return PartitionDescriptor{PartitionKey{"Patient", "age", Range(lo, hi)},
                             NetAddress{host, 7000}};
}

WalRecord Rec(WalRecord::Op op, uint64_t seq, chord::ChordId bucket,
              const PartitionDescriptor& d) {
  WalRecord rec;
  rec.op = op;
  rec.seq = seq;
  rec.bucket = bucket;
  rec.descriptor = d;
  return rec;
}

// --- CRC32C ----------------------------------------------------------

TEST(Crc32cTest, KnownVectors) {
  // The canonical CRC-32C (Castagnoli) check value.
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0x00000000u);
  // 32 zero bytes, per RFC 3720 appendix B.4.
  std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros), 0x8A9136AAu);
  std::string ones(32, static_cast<char>(0xFF));
  EXPECT_EQ(Crc32c(ones), 0x62A8AB43u);
}

TEST(Crc32cTest, ExtendComposes) {
  const std::string data = "the quick brown fox";
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = Crc32cExtend(0, data.data(), split);
    crc = Crc32cExtend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, Crc32c(data)) << "split at " << split;
  }
}

TEST(Crc32cTest, MaskRoundTripsAndDiffers) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const uint32_t crc = rng.Next32();
    const uint32_t masked = Crc32cMask(crc);
    EXPECT_EQ(Crc32cUnmask(masked), crc);
    EXPECT_NE(masked, crc) << "masking must perturb the stored value";
  }
}

TEST(Crc32cTest, EveryBitFlipDetected) {
  const std::string data = "partition descriptor payload";
  const uint32_t good = Crc32c(data);
  for (size_t bit = 0; bit < data.size() * 8; ++bit) {
    std::string mutated = data;
    mutated[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    EXPECT_NE(Crc32c(mutated), good) << "bit " << bit;
  }
}

// --- WAL record serde ------------------------------------------------

TEST(WalRecordTest, RoundTripsEveryOp) {
  const WalRecord::Op ops[] = {WalRecord::Op::kInsert, WalRecord::Op::kErase,
                               WalRecord::Op::kEvict};
  uint64_t seq = 0;
  for (WalRecord::Op op : ops) {
    const WalRecord rec = Rec(op, ++seq, 0xDEADBEEFu, Desc(10, 99, 42));
    wire::Encoder enc;
    EncodeWalRecord(rec, &enc);
    wire::Decoder dec(enc.buffer());
    auto got = DecodeWalRecord(&dec);
    ASSERT_TRUE(got.ok()) << WalOpName(op) << ": " << got.status();
    EXPECT_EQ(*got, rec);
    EXPECT_TRUE(dec.AtEnd());
  }
}

TEST(WalRecordTest, UnknownOpRejected) {
  wire::Encoder enc;
  EncodeWalRecord(Rec(WalRecord::Op::kInsert, 1, 7, Desc(1, 2, 3)), &enc);
  std::string bytes = enc.Take();
  bytes[0] = 9;  // no such op
  wire::Decoder dec(bytes);
  EXPECT_TRUE(DecodeWalRecord(&dec).status().IsInvalidArgument());
}

// --- WAL append / replay ---------------------------------------------

TEST(WalTest, AppendThenReplayReturnsRecordsInOrder) {
  WriteAheadLog wal;
  std::vector<WalRecord> written;
  for (uint64_t i = 1; i <= 20; ++i) {
    written.push_back(Rec(i % 3 == 0 ? WalRecord::Op::kErase
                                     : WalRecord::Op::kInsert,
                          i, static_cast<chord::ChordId>(i * 977),
                          Desc(10 * static_cast<uint32_t>(i),
                               10 * static_cast<uint32_t>(i) + 5,
                               static_cast<uint32_t>(i))));
    wal.Append(written.back());
  }
  const auto replay = WriteAheadLog::Replay(wal.image());
  EXPECT_FALSE(replay.torn_tail);
  EXPECT_FALSE(replay.corrupted);
  EXPECT_EQ(replay.valid_bytes, wal.image().size());
  ASSERT_EQ(replay.records.size(), written.size());
  for (size_t i = 0; i < written.size(); ++i) {
    EXPECT_EQ(replay.records[i], written[i]) << "record " << i;
  }
}

TEST(WalTest, EmptyImageReplaysToNothing) {
  const auto replay = WriteAheadLog::Replay("");
  EXPECT_TRUE(replay.records.empty());
  EXPECT_FALSE(replay.torn_tail);
  EXPECT_FALSE(replay.corrupted);
}

TEST(WalTest, TornTailAtEveryOffsetKeepsExactlyTheValidPrefix) {
  WriteAheadLog wal;
  std::vector<size_t> frame_ends;  // cumulative image size per record
  for (uint64_t i = 1; i <= 8; ++i) {
    wal.Append(Rec(WalRecord::Op::kInsert, i, static_cast<chord::ChordId>(i),
                   Desc(static_cast<uint32_t>(i), 100, 1)));
    frame_ends.push_back(wal.image().size());
  }
  const std::string full = wal.image();
  for (size_t cut = 0; cut < full.size(); ++cut) {
    const auto replay = WriteAheadLog::Replay(std::string_view(full).substr(0, cut));
    // Count the whole frames that survive the cut.
    size_t expect = 0;
    while (expect < frame_ends.size() && frame_ends[expect] <= cut) ++expect;
    ASSERT_EQ(replay.records.size(), expect) << "cut at " << cut;
    EXPECT_FALSE(replay.corrupted) << "cut at " << cut;
    // A cut exactly on a frame boundary is a clean (complete) log.
    const bool on_boundary = cut == 0 || (expect > 0 && frame_ends[expect - 1] == cut);
    EXPECT_EQ(replay.torn_tail, !on_boundary) << "cut at " << cut;
    for (size_t i = 0; i < expect; ++i) {
      EXPECT_EQ(replay.records[i].seq, i + 1) << "cut at " << cut;
    }
  }
}

TEST(WalTest, EveryBitFlipIsDetectedNeverSilentlyReplayed) {
  WriteAheadLog wal;
  std::vector<WalRecord> written;
  for (uint64_t i = 1; i <= 4; ++i) {
    written.push_back(Rec(WalRecord::Op::kInsert, i,
                          static_cast<chord::ChordId>(i * 31), Desc(5, 50, 2)));
    wal.Append(written.back());
  }
  const std::string full = wal.image();
  for (size_t bit = 0; bit < full.size() * 8; ++bit) {
    std::string mutated = full;
    mutated[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    const auto replay = WriteAheadLog::Replay(mutated);
    // The flip may hit a length field (torn tail / truncated frames) or
    // payload/crc bytes (corruption); either way no undetected-bad
    // record may surface: every replayed record must be one we wrote.
    EXPECT_TRUE(replay.torn_tail || replay.corrupted ||
                replay.records.size() == written.size())
        << "bit " << bit << " vanished without a trace";
    for (size_t i = 0; i < replay.records.size(); ++i) {
      EXPECT_EQ(replay.records[i], written[i])
          << "bit " << bit << " silently altered record " << i;
    }
  }
}

// --- Snapshot store --------------------------------------------------

SnapshotData MakeSnap(uint64_t seq, int entries) {
  SnapshotData snap;
  snap.wal_seq = seq;
  for (int i = 0; i < entries; ++i) {
    snap.entries.emplace_back(static_cast<chord::ChordId>(i * 131),
                              Desc(static_cast<uint32_t>(i), 200, 9));
  }
  return snap;
}

TEST(SnapshotTest, RoundTripsNewestValidSlot) {
  SnapshotStore snaps;
  EXPECT_FALSE(snaps.LoadLatestValid().found);
  snaps.Write(MakeSnap(10, 3));
  snaps.Write(MakeSnap(20, 5));
  const auto load = snaps.LoadLatestValid();
  ASSERT_TRUE(load.found);
  EXPECT_FALSE(load.slot_corrupt);
  EXPECT_EQ(load.data.wal_seq, 20u);
  ASSERT_EQ(load.data.entries.size(), 5u);
  EXPECT_EQ(load.data.entries[2].second, Desc(2, 200, 9));
}

TEST(SnapshotTest, AlternatingSlotsPreserveThePreviousCheckpoint) {
  SnapshotStore snaps;
  snaps.Write(MakeSnap(1, 1));
  const std::string slot_of_first =
      snaps.slot(0).empty() ? "slot1" : "slot0";
  snaps.Write(MakeSnap(2, 2));
  // Both slots populated now; the first checkpoint was not overwritten.
  EXPECT_FALSE(snaps.slot(0).empty());
  EXPECT_FALSE(snaps.slot(1).empty());
  snaps.Write(MakeSnap(3, 3));
  EXPECT_EQ(snaps.LoadLatestValid().data.wal_seq, 3u);
  (void)slot_of_first;
}

TEST(SnapshotTest, CorruptNewestSlotFallsBackToOlder) {
  SnapshotStore snaps;
  snaps.Write(MakeSnap(10, 2));
  snaps.Write(MakeSnap(20, 4));
  // Find and damage the slot holding seq 20.
  for (size_t i = 0; i < SnapshotStore::kNumSlots; ++i) {
    std::string& img = snaps.mutable_slot(i);
    if (!img.empty()) {
      std::string probe = img;
      img[img.size() / 2] ^= 0x40;
      if (snaps.LoadLatestValid().data.wal_seq == 20) img = probe;  // wrong slot
    }
  }
  const auto load = snaps.LoadLatestValid();
  ASSERT_TRUE(load.found);
  EXPECT_TRUE(load.slot_corrupt);
  EXPECT_EQ(load.data.wal_seq, 10u);
}

TEST(SnapshotTest, TornCheckpointWriteNeverDestroysTheOldSnapshot) {
  SnapshotStore snaps;
  snaps.Write(MakeSnap(10, 3));
  snaps.Write(MakeSnap(20, 3));
  // A crash mid-write leaves the target slot truncated at any length;
  // the other slot must still load.
  for (size_t i = 0; i < SnapshotStore::kNumSlots; ++i) {
    SnapshotStore copy = snaps;
    std::string& img = copy.mutable_slot(i);
    img.resize(img.size() / 2);
    const auto load = copy.LoadLatestValid();
    ASSERT_TRUE(load.found) << "slot " << i;
    EXPECT_TRUE(load.slot_corrupt);
  }
}

// --- Durable store ---------------------------------------------------

TEST(DurableStoreTest, CrashLosesVolatileRecoverReplaysExactly) {
  DurableDescriptorStore durable(/*store_capacity=*/0, DurabilityConfig{});
  for (uint32_t i = 0; i < 30; ++i) {
    durable.Insert(i * 17, Desc(i, i + 10, i % 5));
  }
  durable.EraseStale(Desc(3, 13, 3).key, Desc(3, 13, 3).holder);
  const auto before = durable.store().EntriesOldestFirst();
  durable.Crash();
  EXPECT_EQ(durable.store().num_descriptors(), 0u);
  const RecoveryReport report = durable.Recover();
  EXPECT_FALSE(report.torn_tail);
  EXPECT_FALSE(report.wal_corrupted);
  EXPECT_EQ(durable.store().EntriesOldestFirst(), before);
  EXPECT_EQ(report.descriptors_restored, before.size());
}

TEST(DurableStoreTest, CheckpointBoundsReplayAndPreservesState) {
  DurabilityConfig cfg;
  cfg.checkpoint_every = 8;
  DurableDescriptorStore durable(/*store_capacity=*/10, cfg);
  for (uint32_t i = 0; i < 100; ++i) {
    durable.Insert(i % 7, Desc(i, i + 3, i % 4));
  }
  EXPECT_GT(durable.checkpoints(), 0u);
  // The WAL only holds what the last checkpoint has not absorbed.
  EXPECT_LT(WriteAheadLog::Replay(durable.wal().image()).records.size(),
            cfg.checkpoint_every + 2 * 10);
  const auto before = durable.store().EntriesOldestFirst();
  durable.Crash();
  const RecoveryReport report = durable.Recover();
  EXPECT_EQ(durable.store().EntriesOldestFirst(), before);
  EXPECT_LE(report.wal_records_replayed, 3 * cfg.checkpoint_every);
}

TEST(DurableStoreTest, LruOrderSurvivesRecovery) {
  DurabilityConfig cfg;
  cfg.checkpoint_every = 0;  // pure WAL replay
  DurableDescriptorStore durable(/*store_capacity=*/3, cfg);
  durable.Insert(1, Desc(0, 10, 1));
  durable.Insert(2, Desc(10, 20, 1));
  durable.Insert(3, Desc(20, 30, 1));
  durable.Insert(1, Desc(0, 10, 1));   // refresh: 1 is now most recent
  durable.Insert(4, Desc(30, 40, 1));  // evicts bucket 2's entry
  const auto before = durable.store().EntriesOldestFirst();
  durable.Crash();
  durable.Recover();
  EXPECT_EQ(durable.store().EntriesOldestFirst(), before);
  // Another insert must evict the same victim it would have pre-crash.
  durable.Insert(5, Desc(40, 50, 1));
  EXPECT_FALSE(durable.store().ContainsExact(3, Desc(20, 30, 1).key));
}

TEST(DurableStoreTest, TornTailRecoversThePrefix) {
  DurabilityConfig cfg;
  cfg.checkpoint_every = 0;
  DurableDescriptorStore durable(/*store_capacity=*/0, cfg);
  for (uint32_t i = 0; i < 10; ++i) durable.Insert(i, Desc(i, i + 1, 1));
  const size_t full = durable.wal().mutable_image().size();
  durable.wal().mutable_image().resize(full - 3);  // shear the last frame
  durable.Crash();
  const RecoveryReport report = durable.Recover();
  EXPECT_TRUE(report.torn_tail);
  EXPECT_FALSE(report.wal_corrupted);
  EXPECT_EQ(report.wal_records_replayed, 9u);
  EXPECT_EQ(durable.store().num_descriptors(), 9u);
  EXPECT_FALSE(durable.store().ContainsExact(9, Desc(9, 10, 1).key));
}

TEST(DurableStoreTest, MidLogCorruptionFallsBackToCheckpoint) {
  DurabilityConfig cfg;
  cfg.checkpoint_every = 5;
  DurableDescriptorStore durable(/*store_capacity=*/0, cfg);
  for (uint32_t i = 0; i < 14; ++i) durable.Insert(i, Desc(i, i + 1, 1));
  ASSERT_GT(durable.checkpoints(), 0u);
  ASSERT_FALSE(durable.wal().image().empty());
  // Rot a payload byte of the FIRST post-checkpoint frame: the whole
  // log is voided and only the checkpoint state survives.
  durable.wal().mutable_image()[WriteAheadLog::kFrameHeaderBytes] ^= 0x01;
  durable.Crash();
  const RecoveryReport report = durable.Recover();
  EXPECT_TRUE(report.wal_corrupted);
  EXPECT_EQ(report.wal_records_replayed, 0u);
  EXPECT_EQ(durable.store().num_descriptors(), report.snapshot_entries);
  EXPECT_LT(durable.store().num_descriptors(), 14u);
}

TEST(DurableStoreTest, MidCheckpointCrashDoesNotDoubleApply) {
  DurabilityConfig cfg;
  cfg.checkpoint_every = 4;
  DurableDescriptorStore durable(/*store_capacity=*/3, cfg);
  // Capture the disk exactly between the snapshot write and the WAL
  // truncation; records covered by the snapshot are still in the log.
  std::string wal_at_hook;
  std::string slot0_at_hook, slot1_at_hook;
  bool captured = false;
  durable.set_checkpoint_hook([&] {
    wal_at_hook = durable.wal().image();
    slot0_at_hook = durable.snapshots().slot(0);
    slot1_at_hook = durable.snapshots().slot(1);
    captured = true;
  });
  for (uint32_t i = 0; i < 4; ++i) durable.Insert(i, Desc(i, i + 1, 1));
  ASSERT_TRUE(captured);
  ASSERT_FALSE(wal_at_hook.empty());
  const auto state = durable.store().EntriesOldestFirst();
  // Crash with the mid-checkpoint disk restored.
  durable.set_checkpoint_hook(nullptr);
  durable.wal().mutable_image() = wal_at_hook;
  durable.snapshots().mutable_slot(0) = slot0_at_hook;
  durable.snapshots().mutable_slot(1) = slot1_at_hook;
  durable.Crash();
  const RecoveryReport report = durable.Recover();
  // Sequence numbers tell recovery the log's records are already in
  // the snapshot: nothing replays twice.
  EXPECT_EQ(report.wal_records_replayed, 0u);
  EXPECT_EQ(durable.store().EntriesOldestFirst(), state);
}

TEST(DurableStoreTest, DisabledDurabilityLosesEverythingHonestly) {
  DurabilityConfig cfg;
  cfg.enabled = false;
  DurableDescriptorStore durable(/*store_capacity=*/0, cfg);
  for (uint32_t i = 0; i < 10; ++i) durable.Insert(i, Desc(i, i + 1, 1));
  EXPECT_TRUE(durable.wal().image().empty());
  durable.Crash();
  const RecoveryReport report = durable.Recover();
  EXPECT_EQ(report.descriptors_restored, 0u);
  EXPECT_EQ(durable.store().num_descriptors(), 0u);
}

}  // namespace
}  // namespace store
}  // namespace p2prange
