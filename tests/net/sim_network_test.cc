#include "net/sim_network.h"

#include <gtest/gtest.h>

#include "net/address.h"

namespace p2prange {
namespace {

NetAddress Addr(uint32_t host, uint16_t port) { return NetAddress{host, port}; }

TEST(NetAddressTest, ToStringDottedQuad) {
  EXPECT_EQ(Addr(0x0A000001, 7000).ToString(), "10.0.0.1:7000");
  EXPECT_EQ(Addr(0xC0A80164, 80).ToString(), "192.168.1.100:80");
  EXPECT_EQ(Addr(0, 0).ToString(), "0.0.0.0:0");
  EXPECT_EQ(Addr(0xFFFFFFFF, 65535).ToString(), "255.255.255.255:65535");
}

TEST(NetAddressTest, EqualityAndOrdering) {
  EXPECT_EQ(Addr(1, 2), Addr(1, 2));
  EXPECT_NE(Addr(1, 2), Addr(1, 3));
  EXPECT_LT(Addr(1, 2), Addr(2, 0));
  EXPECT_LT(Addr(1, 2), Addr(1, 3));
}

TEST(NetAddressTest, HashSeparatesHostAndPort) {
  NetAddressHash h;
  EXPECT_NE(h(Addr(1, 2)), h(Addr(2, 1)));
}

TEST(SimNetworkTest, RegisterAndLiveness) {
  SimNetwork net;
  const NetAddress a = Addr(1, 1000);
  EXPECT_FALSE(net.IsRegistered(a));
  EXPECT_FALSE(net.IsAlive(a));
  net.Register(a);
  EXPECT_TRUE(net.IsRegistered(a));
  EXPECT_TRUE(net.IsAlive(a));
  ASSERT_TRUE(net.SetAlive(a, false).ok());
  EXPECT_TRUE(net.IsRegistered(a));
  EXPECT_FALSE(net.IsAlive(a));
  ASSERT_TRUE(net.SetAlive(a, true).ok());
  EXPECT_TRUE(net.IsAlive(a));
}

TEST(SimNetworkTest, SetAliveUnknownAddressFails) {
  SimNetwork net;
  EXPECT_TRUE(net.SetAlive(Addr(9, 9), true).IsNotFound());
}

TEST(SimNetworkTest, DeliverChargesMessage) {
  SimNetwork net(LatencyModel{10.0, 5.0}, /*seed=*/1);
  const NetAddress a = Addr(1, 1), b = Addr(2, 2);
  net.Register(a);
  net.Register(b);
  auto lat = net.Deliver(a, b);
  ASSERT_TRUE(lat.ok());
  EXPECT_GE(*lat, 10.0);
  EXPECT_LE(*lat, 15.0);
  EXPECT_EQ(net.stats().messages, 1u);
  EXPECT_DOUBLE_EQ(net.stats().total_latency_ms, *lat);
}

TEST(SimNetworkTest, LocalDeliveryIsFree) {
  SimNetwork net;
  const NetAddress a = Addr(1, 1);
  net.Register(a);
  auto lat = net.Deliver(a, a);
  ASSERT_TRUE(lat.ok());
  EXPECT_DOUBLE_EQ(*lat, 0.0);
  EXPECT_EQ(net.stats().messages, 0u);
}

TEST(SimNetworkTest, DeliveryToDeadPeerFails) {
  SimNetwork net;
  const NetAddress a = Addr(1, 1), b = Addr(2, 2);
  net.Register(a);
  net.Register(b);
  ASSERT_TRUE(net.SetAlive(b, false).ok());
  EXPECT_TRUE(net.Deliver(a, b).status().IsUnavailable());
  EXPECT_EQ(net.stats().failed_deliveries, 1u);
  EXPECT_EQ(net.stats().messages, 0u);
}

TEST(SimNetworkTest, DeliveryToUnknownPeerFails) {
  SimNetwork net;
  const NetAddress a = Addr(1, 1);
  net.Register(a);
  EXPECT_TRUE(net.Deliver(a, Addr(5, 5)).status().IsUnavailable());
}

TEST(SimNetworkTest, ResetStatsClearsCounters) {
  SimNetwork net;
  const NetAddress a = Addr(1, 1), b = Addr(2, 2);
  net.Register(a);
  net.Register(b);
  ASSERT_TRUE(net.Deliver(a, b).ok());
  net.ResetStats();
  EXPECT_EQ(net.stats().messages, 0u);
  EXPECT_DOUBLE_EQ(net.stats().total_latency_ms, 0.0);
}

TEST(SimNetworkTest, DeliverBytesChargesPayloadAndBandwidth) {
  SimNetwork net(LatencyModel{10.0, 0.0, /*per_kib_ms=*/1.0}, 1);
  const NetAddress a = Addr(1, 1), b = Addr(2, 2);
  net.Register(a);
  net.Register(b);
  auto lat = net.DeliverBytes(a, b, 4096);
  ASSERT_TRUE(lat.ok());
  EXPECT_DOUBLE_EQ(*lat, 10.0 + 4.0);  // base + 4 KiB * 1 ms/KiB
  EXPECT_EQ(net.stats().bytes, SimNetwork::kControlBytes + 4096);
}

TEST(SimNetworkTest, ControlMessagesCostFixedOverhead) {
  SimNetwork net;
  const NetAddress a = Addr(1, 1), b = Addr(2, 2);
  net.Register(a);
  net.Register(b);
  ASSERT_TRUE(net.Deliver(a, b).ok());
  ASSERT_TRUE(net.Deliver(b, a).ok());
  EXPECT_EQ(net.stats().bytes, 2 * SimNetwork::kControlBytes);
}

TEST(SimNetworkTest, RegisterIsIdempotent) {
  SimNetwork net;
  const NetAddress a = Addr(1, 1);
  net.Register(a);
  ASSERT_TRUE(net.SetAlive(a, false).ok());
  net.Register(a);  // must not resurrect the peer
  EXPECT_FALSE(net.IsAlive(a));
}

}  // namespace
}  // namespace p2prange
