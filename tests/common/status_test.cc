#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace p2prange {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("no such peer");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "no such peer");
  EXPECT_EQ(s.ToString(), "NotFound: no such peer");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
}

TEST(StatusTest, ResourceExhaustedRendersItsName) {
  const Status s = Status::ResourceExhausted("queue full");
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(s.ToString(), "ResourceExhausted: queue full");
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::Internal("boom");
  Status copy = s;
  EXPECT_TRUE(copy.IsInternal());
  EXPECT_EQ(copy.message(), "boom");
  EXPECT_TRUE(s.IsInternal());  // source unchanged
  copy = Status::OK();
  EXPECT_TRUE(copy.ok());
}

TEST(StatusTest, MoveTransfersState) {
  Status s = Status::IOError("disk");
  Status moved = std::move(s);
  EXPECT_TRUE(moved.IsIOError());
  EXPECT_EQ(moved.message(), "disk");
}

Status FailsAtDepth(int depth) {
  if (depth == 0) return Status::OutOfRange("bottom");
  RETURN_NOT_OK(FailsAtDepth(depth - 1));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  Status s = FailsAtDepth(5);
  EXPECT_TRUE(s.IsOutOfRange());
  EXPECT_EQ(s.message(), "bottom");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(41);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 41);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, ValueOrReturnsAlternativeOnError) {
  Result<int> err(Status::Internal("x"));
  EXPECT_EQ(std::move(err).ValueOr(7), 7);
  Result<int> good(3);
  EXPECT_EQ(std::move(good).ValueOr(7), 3);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(9));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueUnsafe();
  EXPECT_EQ(*v, 9);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterEven(int x) {
  ASSIGN_OR_RETURN(const int half, HalveEven(x));
  ASSIGN_OR_RETURN(const int quarter, HalveEven(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnChains) {
  Result<int> ok = QuarterEven(12);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 3);
  Result<int> err = QuarterEven(10);  // 10/2 = 5 is odd
  EXPECT_TRUE(err.status().IsInvalidArgument());
}

}  // namespace
}  // namespace p2prange
