// Logging under concurrency: these tests exist chiefly for the
// ThreadSanitizer configuration (tools/check.sh --tsan builds
// -DP2PRANGE_SANITIZE=thread and runs them alongside the TCP transport
// suite). The assertions are deliberately light — the property under
// test is "no data race between concurrent LogMessage emission and
// SetLogThreshold", and TSan is the real assertion.
#include "common/logging.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace p2prange {
namespace {

using internal::GetLogThreshold;
using internal::LogLevel;
using internal::LogSink;
using internal::SetLogThreshold;
using internal::SwapLogSink;

/// Appends every line to an owned buffer. Write() arrives with the
/// sink mutex held, so the vector needs no lock of its own — that
/// contract is exactly what the swap test below leans on.
class CaptureSink : public LogSink {
 public:
  void Write(const std::string& line) override { lines_.push_back(line); }
  const std::vector<std::string>& lines() const { return lines_; }

 private:
  std::vector<std::string> lines_;
};

/// Restores stderr as the sink on scope exit.
class SinkGuard {
 public:
  explicit SinkGuard(LogSink* sink) { previous_ = SwapLogSink(sink); }
  ~SinkGuard() { SwapLogSink(previous_); }

 private:
  LogSink* previous_;
};

/// Restores the global threshold on scope exit so test order never
/// leaks a changed default into other suites.
class ThresholdGuard {
 public:
  ThresholdGuard() : saved_(GetLogThreshold()) {}
  ~ThresholdGuard() { SetLogThreshold(saved_); }

 private:
  LogLevel saved_;
};

TEST(LoggingTest, ThresholdFiltersBelowAndPassesAtOrAbove) {
  ThresholdGuard guard;
  SetLogThreshold(LogLevel::kWarning);

  testing::internal::CaptureStderr();
  LOG_INFO() << "filtered out";
  LOG_WARNING() << "kept-warning";
  LOG_ERROR() << "kept-error";
  const std::string err = testing::internal::GetCapturedStderr();

  EXPECT_EQ(err.find("filtered out"), std::string::npos) << err;
  EXPECT_NE(err.find("kept-warning"), std::string::npos) << err;
  EXPECT_NE(err.find("kept-error"), std::string::npos) << err;
  EXPECT_NE(err.find("logging_test.cc"), std::string::npos) << err;
}

TEST(LoggingTest, ConcurrentLoggingAndThresholdFlipsAreRaceFree) {
  ThresholdGuard guard;
  constexpr int kThreads = 4;
  constexpr int kLinesPerThread = 200;

  testing::internal::CaptureStderr();
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < kLinesPerThread; ++i) {
        LOG_INFO() << "worker " << t << " line " << i;
        LOG_DEBUG() << "usually filtered " << i;
      }
    });
  }
  // Flip the threshold while the workers stream: the atomic load in the
  // LogMessage constructor must never race with these stores.
  for (int flip = 0; flip < 100; ++flip) {
    SetLogThreshold(flip % 2 == 0 ? LogLevel::kDebug : LogLevel::kError);
  }
  for (std::thread& w : workers) w.join();
  const std::string err = testing::internal::GetCapturedStderr();

  // Every emitted line is intact (no interleaved torn prefixes): each
  // non-empty line starts with its "[LEVEL " tag.
  size_t lines = 0;
  size_t start = 0;
  while (start < err.size()) {
    size_t end = err.find('\n', start);
    if (end == std::string::npos) end = err.size();
    const std::string line = err.substr(start, end - start);
    if (!line.empty()) {
      ++lines;
      EXPECT_EQ(line[0], '[') << "torn log line: " << line;
    }
    start = end + 1;
  }
  EXPECT_LE(lines, static_cast<size_t>(kThreads * kLinesPerThread * 2));
}

TEST(LoggingTest, SinkCapturesLinesAndRestores) {
  ThresholdGuard guard;
  SetLogThreshold(LogLevel::kInfo);
  CaptureSink sink;
  {
    SinkGuard installed(&sink);
    LOG_INFO() << "to the sink";
    LOG_DEBUG() << "still filtered by threshold";
  }
  testing::internal::CaptureStderr();
  LOG_INFO() << "back to stderr";
  const std::string err = testing::internal::GetCapturedStderr();

  ASSERT_EQ(sink.lines().size(), 1u);
  EXPECT_NE(sink.lines()[0].find("to the sink"), std::string::npos);
  EXPECT_EQ(sink.lines()[0].back(), '\n') << "sink gets whole lines";
  EXPECT_NE(err.find("back to stderr"), std::string::npos) << err;
  EXPECT_EQ(err.find("to the sink"), std::string::npos) << err;
}

// Regression for the latent sink-swap hazard the annotated layer
// closes: swapping the sink while other threads emit must neither
// race (TSan checks that) nor let a Write land on the swapped-out
// sink after SwapLogSink returned — the swapper destroys it
// immediately, as this test does by scoping each CaptureSink to one
// iteration of the loop.
TEST(LoggingTest, SwappingSinksUnderConcurrentLoggingIsSafe) {
  ThresholdGuard guard;
  SetLogThreshold(LogLevel::kInfo);

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(3);
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&stop, t] {
      for (int i = 0; !stop.load(); ++i) {
        LOG_INFO() << "writer " << t << " line " << i;
      }
    });
  }

  testing::internal::CaptureStderr();  // absorb the between-sinks lines
  size_t captured = 0;
  for (int round = 0; round < 50; ++round) {
    CaptureSink sink;
    LogSink* prev = SwapLogSink(&sink);
    LOG_INFO() << "round " << round;
    SwapLogSink(prev);
    // `sink` dies here; any late Write after the swap would be a
    // use-after-free under ASan and a race under TSan.
    captured += sink.lines().size();
  }
  stop.store(true);
  for (std::thread& w : writers) w.join();
  (void)testing::internal::GetCapturedStderr();

  EXPECT_GE(captured, 50u) << "each round's own line reaches its sink";
}

}  // namespace
}  // namespace p2prange
