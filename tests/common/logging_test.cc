// Logging under concurrency: these tests exist chiefly for the
// ThreadSanitizer configuration (tools/check.sh --tsan builds
// -DP2PRANGE_SANITIZE=thread and runs them alongside the TCP transport
// suite). The assertions are deliberately light — the property under
// test is "no data race between concurrent LogMessage emission and
// SetLogThreshold", and TSan is the real assertion.
#include "common/logging.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace p2prange {
namespace {

using internal::GetLogThreshold;
using internal::LogLevel;
using internal::SetLogThreshold;

/// Restores the global threshold on scope exit so test order never
/// leaks a changed default into other suites.
class ThresholdGuard {
 public:
  ThresholdGuard() : saved_(GetLogThreshold()) {}
  ~ThresholdGuard() { SetLogThreshold(saved_); }

 private:
  LogLevel saved_;
};

TEST(LoggingTest, ThresholdFiltersBelowAndPassesAtOrAbove) {
  ThresholdGuard guard;
  SetLogThreshold(LogLevel::kWarning);

  testing::internal::CaptureStderr();
  LOG_INFO() << "filtered out";
  LOG_WARNING() << "kept-warning";
  LOG_ERROR() << "kept-error";
  const std::string err = testing::internal::GetCapturedStderr();

  EXPECT_EQ(err.find("filtered out"), std::string::npos) << err;
  EXPECT_NE(err.find("kept-warning"), std::string::npos) << err;
  EXPECT_NE(err.find("kept-error"), std::string::npos) << err;
  EXPECT_NE(err.find("logging_test.cc"), std::string::npos) << err;
}

TEST(LoggingTest, ConcurrentLoggingAndThresholdFlipsAreRaceFree) {
  ThresholdGuard guard;
  constexpr int kThreads = 4;
  constexpr int kLinesPerThread = 200;

  testing::internal::CaptureStderr();
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < kLinesPerThread; ++i) {
        LOG_INFO() << "worker " << t << " line " << i;
        LOG_DEBUG() << "usually filtered " << i;
      }
    });
  }
  // Flip the threshold while the workers stream: the atomic load in the
  // LogMessage constructor must never race with these stores.
  for (int flip = 0; flip < 100; ++flip) {
    SetLogThreshold(flip % 2 == 0 ? LogLevel::kDebug : LogLevel::kError);
  }
  for (std::thread& w : workers) w.join();
  const std::string err = testing::internal::GetCapturedStderr();

  // Every emitted line is intact (no interleaved torn prefixes): each
  // non-empty line starts with its "[LEVEL " tag.
  size_t lines = 0;
  size_t start = 0;
  while (start < err.size()) {
    size_t end = err.find('\n', start);
    if (end == std::string::npos) end = err.size();
    const std::string line = err.substr(start, end - start);
    if (!line.empty()) {
      ++lines;
      EXPECT_EQ(line[0], '[') << "torn log line: " << line;
    }
    start = end + 1;
  }
  EXPECT_LE(lines, static_cast<size_t>(kThreads * kLinesPerThread * 2));
}

}  // namespace
}  // namespace p2prange
