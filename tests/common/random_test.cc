#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/bit_utils.h"

namespace p2prange {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextBoundedStaysInBounds) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = rng.NextInRange(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= (v == 5);
    saw_hi |= (v == 8);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BalancedMaskHasExactPopcount) {
  Rng rng(17);
  for (int width : {2, 4, 8, 16, 32, 64}) {
    for (int trial = 0; trial < 50; ++trial) {
      const uint64_t mask = rng.NextBalancedMask(width, width / 2);
      EXPECT_EQ(bits::PopCount(mask), width / 2);
      if (width < 64) {
        EXPECT_EQ(mask & ~bits::LowMask(width), 0u) << "mask exceeds width";
      }
    }
  }
}

TEST(RngTest, BalancedMaskCoversAllPositions) {
  Rng rng(19);
  uint64_t seen = 0;
  for (int trial = 0; trial < 200; ++trial) {
    seen |= rng.NextBalancedMask(16, 8);
  }
  EXPECT_EQ(seen, bits::LowMask(16));
}

TEST(RngTest, BalancedMaskEdgeCases) {
  Rng rng(23);
  EXPECT_EQ(rng.NextBalancedMask(8, 0), 0u);
  EXPECT_EQ(rng.NextBalancedMask(8, 8), 0xFFu);
  EXPECT_EQ(rng.NextBalancedMask(64, 64), ~0ULL);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(31);
  Rng child = a.Fork();
  // The child must not replay the parent's stream.
  Rng parent_copy(31);
  parent_copy.Next();  // advance past the fork draw
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (child.Next() == parent_copy.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  uint64_t s1 = 42, s2 = 42;
  for (int i = 0; i < 10; ++i) EXPECT_EQ(SplitMix64(s1), SplitMix64(s2));
  EXPECT_EQ(s1, s2);
}

TEST(ZipfTest, RanksWithinDomain) {
  Rng rng(37);
  ZipfGenerator zipf(100, 0.9);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LT(zipf.Next(rng), 100u);
  }
}

TEST(ZipfTest, LowRanksDominate) {
  Rng rng(41);
  ZipfGenerator zipf(1000, 0.99);
  size_t low = 0, total = 20000;
  for (size_t i = 0; i < total; ++i) {
    if (zipf.Next(rng) < 10) ++low;
  }
  // With theta=0.99 over 1000 ranks, the top-10 hold a large share.
  EXPECT_GT(static_cast<double>(low) / static_cast<double>(total), 0.3);
}

TEST(ZipfTest, SingleElementDomain) {
  Rng rng(43);
  ZipfGenerator zipf(1, 0.5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Next(rng), 0u);
}

}  // namespace
}  // namespace p2prange
