// Tests for the annotated sync layer (common/sync.h): lock scoping,
// CondVar signalling under contention, SharedMutex reader/writer
// semantics, the runtime lock-rank order checks (death tests), the
// single-threaded-by-contract sentinels, and a multi-thread soak that
// doubles as TSan coverage (SyncTest.* runs in the TSan gate).
#include "common/sync.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace p2prange {
namespace {

TEST(SyncTest, MutexLockExcludesOtherThreads) {
  Mutex mu;
  bool locked_elsewhere = true;
  {
    MutexLock lock(&mu);
    // A second thread must fail TryLock while we hold the mutex.
    std::thread probe([&] { locked_elsewhere = !mu.TryLock(); });
    probe.join();
    EXPECT_TRUE(locked_elsewhere);
  }
  // After the scope closes, the mutex is free again.
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(SyncTest, CondVarWakesWaiterUnderContention) {
  Mutex mu;
  CondVar cv;
  int stage = 0;
  std::thread waiter([&] {
    MutexLock lock(&mu);
    while (stage == 0) cv.Wait(&mu);
    stage = 2;
  });
  {
    MutexLock lock(&mu);
    stage = 1;
  }
  cv.SignalAll();
  waiter.join();
  MutexLock lock(&mu);
  EXPECT_EQ(stage, 2);
}

TEST(SyncTest, CondVarWaitForTimesOut) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(&mu);
  // Nobody signals: the timed wait must come back false, still
  // holding the lock (the Unlock in ~MutexLock would abort if not).
  EXPECT_FALSE(cv.WaitFor(&mu, std::chrono::milliseconds(5)));
}

TEST(SyncTest, SharedMutexAllowsConcurrentReaders) {
  SharedMutex mu;
  ReaderMutexLock first(&mu);
  bool second_reader_entered = false;
  std::thread reader([&] {
    ReaderMutexLock second(&mu);
    second_reader_entered = true;
  });
  reader.join();
  EXPECT_TRUE(second_reader_entered);
}

TEST(SyncTest, SharedMutexWriterExcludesReaders) {
  SharedMutex mu;
  int value = 0;
  std::thread writer;
  {
    WriterMutexLock write(&mu);
    writer = std::thread([&] {
      ReaderMutexLock read(&mu);
      // Runs only after the writer scope closes below.
      EXPECT_EQ(value, 42);
    });
    value = 42;
  }
  writer.join();
}

TEST(SyncTest, FourThreadSoakCountsExactly) {
  // The TSan meat: four threads hammer one counter through the
  // annotated lock and a CondVar-coordinated drain. Any hole in the
  // wrapper (a Wait that drops ownership, an Unlock ordering bug)
  // shows up as a data race or a wrong count.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2500;
  Mutex mu;
  CondVar cv;
  int counter = 0;
  int finished = 0;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
      MutexLock lock(&mu);
      ++finished;
      cv.Signal();
    });
  }
  {
    MutexLock lock(&mu);
    while (finished < kThreads) cv.Wait(&mu);
    EXPECT_EQ(counter, kThreads * kPerThread);
  }
  for (std::thread& t : threads) t.join();
}

TEST(SyncTest, OrderedRankAcquisitionIsFine) {
  Mutex outer(10);
  Mutex inner(20);
  MutexLock a(&outer);
  MutexLock b(&inner);  // strictly increasing: allowed
  SUCCEED();
}

TEST(SyncTest, UnrankedMutexIgnoresOrder) {
  Mutex ranked(50);
  Mutex unranked;
  MutexLock a(&ranked);
  MutexLock b(&unranked);  // opted out of the rank order entirely
  SUCCEED();
}

#if !defined(P2PRANGE_NO_LOCK_RANKS) && defined(GTEST_HAS_DEATH_TEST)

TEST(SyncDeathTest, RankInversionAborts) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex outer(20);
        Mutex inner(10);
        MutexLock a(&outer);
        MutexLock b(&inner);  // rank 10 while holding 20: inversion
      },
      "lock-rank inversion");
}

TEST(SyncDeathTest, SameRankReacquireAborts) {
  // Two locks of equal rank: "strictly greater" forbids the second,
  // which is exactly the self-deadlock shape (A waits on A's rank).
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex a(30);
        Mutex b(30);
        MutexLock la(&a);
        MutexLock lb(&b);
      },
      "lock-rank inversion");
}

#endif  // !P2PRANGE_NO_LOCK_RANKS && GTEST_HAS_DEATH_TEST

#ifdef GTEST_HAS_DEATH_TEST

TEST(SyncDeathTest, ConcurrentExclusiveUseAborts) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ExclusiveUse guard;
        ExclusiveUse::Scope outer(&guard, "test::outer");
        std::thread intruder(
            [&] { ExclusiveUse::Scope inner(&guard, "test::inner"); });
        intruder.join();
      },
      "concurrent use of a single-threaded object");
}

#endif  // GTEST_HAS_DEATH_TEST

TEST(SyncTest, ExclusiveUseAllowsReentrancyAndHandoff) {
  ExclusiveUse guard;
  {
    ExclusiveUse::Scope outer(&guard, "test::outer");
    ExclusiveUse::Scope inner(&guard, "test::inner");  // same thread: fine
  }
  // All scopes closed: a different thread may take over (the join
  // above is the synchronization that makes the handoff legal).
  std::thread successor([&] { ExclusiveUse::Scope s(&guard, "test::next"); });
  successor.join();
  ExclusiveUse::Scope back(&guard, "test::back");  // and back again
}

TEST(SyncTest, ThreadCheckerPinsAndRebinds) {
  ThreadChecker checker;
  EXPECT_TRUE(checker.CalledOnOwnerThread());
  bool other_thread_owns = true;
  std::thread other([&] { other_thread_owns = checker.CalledOnOwnerThread(); });
  other.join();
  EXPECT_FALSE(other_thread_owns);

  std::thread rebinder([&] {
    checker.Rebind();
    EXPECT_TRUE(checker.CalledOnOwnerThread());
  });
  rebinder.join();
  EXPECT_FALSE(checker.CalledOnOwnerThread());
  checker.Rebind();
  EXPECT_TRUE(checker.CalledOnOwnerThread());
}

}  // namespace
}  // namespace p2prange
