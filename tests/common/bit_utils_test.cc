#include "common/bit_utils.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace p2prange {
namespace {

TEST(BitUtilsTest, ExtractBitsBasic) {
  // mask selects bits 1 and 3; x = 0b1010 has both set.
  EXPECT_EQ(bits::ExtractBits(0b1010, 0b1010), 0b11u);
  EXPECT_EQ(bits::ExtractBits(0b0000, 0b1010), 0b00u);
  EXPECT_EQ(bits::ExtractBits(0b1000, 0b1010), 0b10u);
  EXPECT_EQ(bits::ExtractBits(0b0010, 0b1010), 0b01u);
}

TEST(BitUtilsTest, ExtractBitsFullMaskIsIdentity) {
  EXPECT_EQ(bits::ExtractBits(0xDEADBEEF, ~0ULL), 0xDEADBEEFull);
}

TEST(BitUtilsTest, ExtractBitsEmptyMaskIsZero) {
  EXPECT_EQ(bits::ExtractBits(0xDEADBEEF, 0), 0u);
}

TEST(BitUtilsTest, DepositInvertsExtract) {
  Rng rng(5);
  for (int trial = 0; trial < 500; ++trial) {
    const uint64_t mask = rng.Next();
    const uint64_t x = rng.Next() & mask;  // only bits under the mask
    EXPECT_EQ(bits::DepositBits(bits::ExtractBits(x, mask), mask), x);
  }
}

TEST(BitUtilsTest, ExtractInvertsDeposit) {
  Rng rng(6);
  for (int trial = 0; trial < 500; ++trial) {
    const uint64_t mask = rng.Next();
    const uint64_t packed = rng.Next() & bits::LowMask(bits::PopCount(mask));
    EXPECT_EQ(bits::ExtractBits(bits::DepositBits(packed, mask), mask), packed);
  }
}

TEST(BitUtilsTest, ExtractPopcountBound) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const uint64_t mask = rng.Next();
    const uint64_t out = bits::ExtractBits(rng.Next(), mask);
    EXPECT_EQ(out & ~bits::LowMask(bits::PopCount(mask)), 0u);
  }
}

TEST(BitUtilsTest, CeilLog2) {
  EXPECT_EQ(bits::CeilLog2(1), 0);
  EXPECT_EQ(bits::CeilLog2(2), 1);
  EXPECT_EQ(bits::CeilLog2(3), 2);
  EXPECT_EQ(bits::CeilLog2(4), 2);
  EXPECT_EQ(bits::CeilLog2(5), 3);
  EXPECT_EQ(bits::CeilLog2(1024), 10);
  EXPECT_EQ(bits::CeilLog2(1025), 11);
}

TEST(BitUtilsTest, IsPowerOfTwo) {
  EXPECT_FALSE(bits::IsPowerOfTwo(0));
  EXPECT_TRUE(bits::IsPowerOfTwo(1));
  EXPECT_TRUE(bits::IsPowerOfTwo(2));
  EXPECT_FALSE(bits::IsPowerOfTwo(3));
  EXPECT_TRUE(bits::IsPowerOfTwo(1ULL << 63));
  EXPECT_FALSE(bits::IsPowerOfTwo((1ULL << 63) + 1));
}

TEST(BitUtilsTest, LowMask) {
  EXPECT_EQ(bits::LowMask(0), 0u);
  EXPECT_EQ(bits::LowMask(1), 1u);
  EXPECT_EQ(bits::LowMask(8), 0xFFu);
  EXPECT_EQ(bits::LowMask(32), 0xFFFFFFFFu);
  EXPECT_EQ(bits::LowMask(64), ~0ULL);
}

}  // namespace
}  // namespace p2prange
