#include "sim/churn_sim.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "rel/generator.h"
#include "workload/range_workload.h"

namespace p2prange {
namespace {

RangeCacheSystem MakeSystem(uint64_t seed, int replication = 1) {
  SystemConfig cfg;
  cfg.num_peers = 40;
  cfg.lsh = LshParams::Paper(HashFamilyType::kApproxMinwise, seed);
  cfg.criterion = MatchCriterion::kContainment;
  cfg.descriptor_replication = replication;
  cfg.seed = seed;
  auto sys = RangeCacheSystem::Make(cfg, MakeNumbersCatalog(10, 0, 1000, 1));
  CHECK(sys.ok()) << sys.status();
  return std::move(sys).ValueUnsafe();
}

std::function<PartitionKey()> UniformQueries(uint64_t seed) {
  auto gen = std::make_shared<UniformRangeGenerator>(0, 1000, seed);
  return [gen] { return PartitionKey{"Numbers", "key", gen->Next()}; };
}

TEST(ChurnSimTest, RejectsBadSliceCount) {
  auto sys = MakeSystem(1);
  ChurnSimulator sim(&sys, UniformQueries(2), ChurnScenarioConfig{});
  EXPECT_TRUE(sim.Run(0).status().IsInvalidArgument());
}

TEST(ChurnSimTest, NoChurnScenarioJustQueries) {
  auto sys = MakeSystem(3);
  ChurnScenarioConfig cfg;
  cfg.duration_s = 100;
  cfg.query_rate_hz = 3.0;
  cfg.join_rate_hz = 0.0;
  cfg.leave_rate_hz = 0.0;
  cfg.seed = 3;
  ChurnSimulator sim(&sys, UniformQueries(4), cfg);
  auto report = sim.Run(5);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->protocol_errors, 0u);
  // ~300 queries expected; Poisson, so allow slack.
  EXPECT_GT(report->total_queries, 200u);
  EXPECT_LT(report->total_queries, 420u);
  ASSERT_EQ(report->slices.size(), 5u);
  for (const ChurnTimeSlice& s : report->slices) {
    EXPECT_EQ(s.alive_at_end, 40u);
    EXPECT_EQ(s.joins + s.departures, 0u);
  }
  // The cache warms up: later slices match more often than the first.
  const auto& first = report->slices.front();
  const auto& last = report->slices.back();
  ASSERT_GT(first.queries, 0u);
  ASSERT_GT(last.queries, 0u);
  EXPECT_GT(static_cast<double>(last.matched) / static_cast<double>(last.queries),
            static_cast<double>(first.matched) /
                static_cast<double>(first.queries));
}

TEST(ChurnSimTest, ChurnChangesMembership) {
  auto sys = MakeSystem(5);
  ChurnScenarioConfig cfg;
  cfg.duration_s = 200;
  cfg.query_rate_hz = 1.0;
  cfg.join_rate_hz = 0.2;
  cfg.leave_rate_hz = 0.1;
  cfg.stabilize_period_s = 10;
  cfg.seed = 5;
  ChurnSimulator sim(&sys, UniformQueries(6), cfg);
  auto report = sim.Run(4);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->protocol_errors, 0u);
  uint64_t joins = 0, departures = 0;
  for (const ChurnTimeSlice& s : report->slices) {
    joins += s.joins;
    departures += s.departures;
  }
  EXPECT_GT(joins, 10u);
  EXPECT_GT(departures, 5u);
  // Net growth expected (join rate double the leave rate).
  EXPECT_GT(report->slices.back().alive_at_end, 40u);
}

TEST(ChurnSimTest, MinPeersFloorIsRespected) {
  auto sys = MakeSystem(7);
  ChurnScenarioConfig cfg;
  cfg.duration_s = 300;
  cfg.query_rate_hz = 0.5;
  cfg.join_rate_hz = 0.0;
  cfg.leave_rate_hz = 1.0;  // aggressive departures
  cfg.min_peers = 25;
  cfg.stabilize_period_s = 5;
  cfg.seed = 7;
  ChurnSimulator sim(&sys, UniformQueries(8), cfg);
  auto report = sim.Run(3);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->protocol_errors, 0u);
  EXPECT_GE(sys.ring().num_alive(), 25u);
}

TEST(ChurnSimTest, DeterministicForSeeds) {
  auto run = [] {
    auto sys = MakeSystem(9);
    ChurnScenarioConfig cfg;
    cfg.duration_s = 60;
    cfg.query_rate_hz = 2.0;
    cfg.join_rate_hz = 0.1;
    cfg.leave_rate_hz = 0.1;
    cfg.seed = 9;
    ChurnSimulator sim(&sys, UniformQueries(10), cfg);
    auto report = sim.Run(3);
    CHECK(report.ok());
    std::string digest;
    for (const ChurnTimeSlice& s : report->slices) {
      digest += std::to_string(s.queries) + "/" + std::to_string(s.matched) +
                "/" + std::to_string(s.joins) + "/" +
                std::to_string(s.departures) + ";";
    }
    return digest;
  };
  EXPECT_EQ(run(), run());
}

TEST(ChurnSimTest, RecoveryRateTurnsCrashesIntoTransients) {
  auto sys = MakeSystem(11, /*replication=*/2);
  ChurnScenarioConfig cfg;
  cfg.duration_s = 300;
  cfg.query_rate_hz = 2.0;
  cfg.join_rate_hz = 0.0;
  cfg.leave_rate_hz = 0.1;
  cfg.fail_fraction = 1.0;     // every departure is abrupt...
  cfg.recover_rate_hz = 0.05;  // ...and comes back through replay
  cfg.stabilize_period_s = 10;
  cfg.min_peers = 20;
  cfg.seed = 11;
  ChurnSimulator sim(&sys, UniformQueries(12), cfg);
  auto report = sim.Run(4);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->protocol_errors, 0u);
  uint64_t crashes = 0, recoveries = 0, repaired = 0;
  for (const ChurnTimeSlice& s : report->slices) {
    crashes += s.crashes;
    recoveries += s.recoveries;
    repaired += s.descriptors_repaired;
  }
  EXPECT_GT(crashes, 0u) << "abrupt departures should crash, not remove";
  EXPECT_GT(recoveries, 0u) << "the recovery process should fire";
  EXPECT_LE(recoveries, crashes);
  // Recovered peers replayed their durable state (and possibly pulled
  // more from replicas); the system-level counters agree.
  EXPECT_EQ(sys.metrics().peer_crashes, crashes);
  EXPECT_EQ(sys.metrics().peer_recoveries, recoveries);
  EXPECT_EQ(sys.metrics().recovery_descriptors_repaired, repaired);
  // Crashed-but-not-yet-recovered peers stay out of the alive count.
  EXPECT_EQ(sys.ring().num_alive(), 40u - (crashes - recoveries));
}

TEST(ChurnSimTest, ReplicationHelpsUnderChurn) {
  // Under identical churn scenarios, descriptor replication should
  // never hurt and typically raises the match rate (descriptors
  // survive owner departures). Aggregate over a few seeds to smooth
  // the randomness.
  double matched_r1 = 0, matched_r3 = 0;
  for (uint64_t seed = 20; seed < 24; ++seed) {
    for (int repl : {1, 3}) {
      auto sys = MakeSystem(seed, repl);
      ChurnScenarioConfig cfg;
      cfg.duration_s = 300;
      cfg.query_rate_hz = 2.0;
      cfg.join_rate_hz = 0.08;
      cfg.leave_rate_hz = 0.08;
      cfg.fail_fraction = 1.0;  // all departures abrupt
      cfg.stabilize_period_s = 10;
      cfg.seed = seed;
      ChurnSimulator sim(&sys, UniformQueries(seed ^ 0xFF), cfg);
      auto report = sim.Run(2);
      ASSERT_TRUE(report.ok());
      uint64_t matched = 0, queries = 0;
      for (const ChurnTimeSlice& s : report->slices) {
        matched += s.matched;
        queries += s.queries;
      }
      ASSERT_GT(queries, 0u);
      const double rate =
          static_cast<double>(matched) / static_cast<double>(queries);
      (repl == 1 ? matched_r1 : matched_r3) += rate;
    }
  }
  EXPECT_GE(matched_r3, matched_r1 - 0.02);
}

TEST(LiveChurnScheduleTest, DeterministicPerSeedAndTimeOrdered) {
  ChurnScenarioConfig cfg;
  cfg.duration_s = 120.0;
  cfg.join_rate_hz = 0.2;
  cfg.leave_rate_hz = 0.1;
  cfg.fail_fraction = 0.5;
  cfg.seed = 42;

  const auto a = GenerateLiveChurnSchedule(cfg);
  const auto b = GenerateLiveChurnSchedule(cfg);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].t_s, b[i].t_s);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_GT(a[i].t_s, 0.0);
    EXPECT_LE(a[i].t_s, cfg.duration_s);
    if (i > 0) {
      EXPECT_GE(a[i].t_s, a[i - 1].t_s);
    }
  }

  cfg.seed = 43;
  const auto c = GenerateLiveChurnSchedule(cfg);
  EXPECT_TRUE(a.size() != c.size() ||
              !std::equal(a.begin(), a.end(), c.begin(),
                          [](const LiveChurnEvent& x, const LiveChurnEvent& y) {
                            return x.t_s == y.t_s && x.kind == y.kind;
                          }));
}

TEST(LiveChurnScheduleTest, RatesShapeTheMix) {
  ChurnScenarioConfig cfg;
  cfg.duration_s = 2000.0;
  cfg.join_rate_hz = 0.1;
  cfg.leave_rate_hz = 0.1;
  cfg.fail_fraction = 1.0;  // every departure is a kill
  cfg.seed = 7;
  size_t joins = 0, kills = 0, restarts = 0;
  for (const LiveChurnEvent& e : GenerateLiveChurnSchedule(cfg)) {
    joins += e.kind == LiveChurnEventKind::kJoin;
    kills += e.kind == LiveChurnEventKind::kKill;
    restarts += e.kind == LiveChurnEventKind::kRestart;
  }
  // ~200 events per process; equality of rates holds loosely, the
  // fail_fraction split exactly.
  EXPECT_GT(joins, 100u);
  EXPECT_GT(kills, 100u);
  EXPECT_EQ(restarts, 0u);

  cfg.fail_fraction = 0.0;  // every departure is a graceful restart
  kills = 0;
  restarts = 0;
  for (const LiveChurnEvent& e : GenerateLiveChurnSchedule(cfg)) {
    kills += e.kind == LiveChurnEventKind::kKill;
    restarts += e.kind == LiveChurnEventKind::kRestart;
  }
  EXPECT_EQ(kills, 0u);
  EXPECT_GT(restarts, 100u);

  // Zero rates produce an empty schedule, not a hang.
  cfg.join_rate_hz = 0.0;
  cfg.leave_rate_hz = 0.0;
  EXPECT_TRUE(GenerateLiveChurnSchedule(cfg).empty());
}

}  // namespace
}  // namespace p2prange
