// The scenario engine: event ordering, compact-model routing against
// the oracle, determinism under a seed, churn-mode recall, the
// byte-budget gauges, and the single-threaded-by-design contract.
#include "sim/engine/scenario_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "sim/engine/compact_overlay.h"
#include "sim/engine/event_queue.h"

namespace p2prange {
namespace sim {
namespace {

// ---------------------------------------------------------------- events

TEST(EventQueueTest, PopsInTimeThenInsertionOrder) {
  EventQueue q;
  q.Push(5.0, EventType::kCrash, 1);
  q.Push(1.0, EventType::kQuery, 2);
  q.Push(5.0, EventType::kRecover, 3);  // same time: after the crash
  q.Push(3.0, EventType::kRepair, 4);
  EXPECT_EQ(q.size(), 4u);
  EXPECT_EQ(q.max_depth(), 4u);

  Event e;
  ASSERT_TRUE(q.Pop(&e));
  EXPECT_EQ(e.type, EventType::kQuery);
  ASSERT_TRUE(q.Pop(&e));
  EXPECT_EQ(e.type, EventType::kRepair);
  ASSERT_TRUE(q.Pop(&e));
  EXPECT_EQ(e.type, EventType::kCrash);
  ASSERT_TRUE(q.Pop(&e));
  EXPECT_EQ(e.type, EventType::kRecover);
  EXPECT_EQ(e.subject, 3u);
  EXPECT_FALSE(q.Pop(&e));
  EXPECT_EQ(q.max_depth(), 4u);  // high-water mark survives draining
}

TEST(EventQueueTest, EventsStayPacked) {
  EXPECT_EQ(sizeof(Event), 24u);
}

// ------------------------------------------------------- compact models

class CompactOverlayTest : public ::testing::TestWithParam<overlay::Kind> {};

TEST_P(CompactOverlayTest, RouteLandsOnOwner) {
  auto net = MakeCompactOverlay(GetParam(), 500, 3, 2);
  ASSERT_TRUE(net.ok()) << net.status();
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const uint32_t id = rng.Next32();
    const uint32_t owner = (*net)->Owner(id);
    ASSERT_LT(owner, (*net)->num_peers());
    EXPECT_TRUE((*net)->IsAlive(owner));
    int hops = 0;
    const uint32_t routed =
        (*net)->Route((*net)->RandomAliveSlot(rng), id, &hops);
    EXPECT_EQ(routed, owner);
    EXPECT_GE(hops, 0);
  }
}

TEST_P(CompactOverlayTest, OwnerSkipsDeadSlots) {
  auto net = MakeCompactOverlay(GetParam(), 64, 5, 2);
  ASSERT_TRUE(net.ok()) << net.status();
  Rng rng(11);
  for (int i = 0; i < 24; ++i) {
    (*net)->SetAlive((*net)->RandomAliveSlot(rng), false);
  }
  EXPECT_EQ((*net)->num_alive(), 40u);
  for (int i = 0; i < 100; ++i) {
    const uint32_t owner = (*net)->Owner(rng.Next32());
    EXPECT_TRUE((*net)->IsAlive(owner));
  }
}

TEST_P(CompactOverlayTest, StaysUnderTwentyBytesPerPeer) {
  const size_t n = 20000;
  auto net = MakeCompactOverlay(GetParam(), n, 1, 2);
  ASSERT_TRUE(net.ok()) << net.status();
  EXPECT_LT((*net)->MemoryBytes() / n, 20u);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, CompactOverlayTest,
                         ::testing::Values(overlay::Kind::kChord,
                                           overlay::Kind::kCan,
                                           overlay::Kind::kTapestry),
                         [](const ::testing::TestParamInfo<overlay::Kind>& i) {
                           return std::string(overlay::KindName(i.param));
                         });

TEST(AliveIndexTest, CountsSelectsAndWraps) {
  AliveIndex idx(10);
  EXPECT_EQ(idx.num_alive(), 10u);
  idx.Set(0, false);
  idx.Set(9, false);
  idx.Set(4, false);
  EXPECT_EQ(idx.num_alive(), 7u);
  EXPECT_EQ(idx.CountBefore(5), 3u);   // 1,2,3
  EXPECT_EQ(idx.CountIn(4, 10), 4u);   // 5,6,7,8
  EXPECT_EQ(idx.NextAliveWrapping(9), 1u);  // wraps past dead 9 and 0
  EXPECT_EQ(idx.NextAliveWrapping(4), 5u);
  EXPECT_EQ(idx.SelectAlive(0), 1u);
  EXPECT_EQ(idx.SelectAlive(6), 8u);
  idx.Set(0, true);
  EXPECT_EQ(idx.SelectAlive(0), 0u);
}

// ------------------------------------------------------------- scenarios

ScenarioConfig SmallConfig(overlay::Kind kind, ChurnMode churn,
                           WorkloadShape shape = WorkloadShape::kUniform) {
  ScenarioConfig config;
  config.kind = kind;
  config.shape = shape;
  config.churn = churn;
  config.num_peers = 300;
  config.num_queries = 600;
  config.domain = 20000;
  config.seed = 5;
  return config;
}

TEST(ScenarioEngineTest, ValidatesConfig) {
  ScenarioConfig bad = SmallConfig(overlay::Kind::kChord, ChurnMode::kNone);
  bad.num_peers = 1;
  EXPECT_FALSE(ScenarioEngine::Make(bad).ok());
  bad = SmallConfig(overlay::Kind::kChord, ChurnMode::kNone);
  bad.crash_wave_fraction = 0.9;
  EXPECT_FALSE(ScenarioEngine::Make(bad).ok());
}

TEST(ScenarioEngineTest, DeterministicUnderSeed) {
  const ScenarioConfig config =
      SmallConfig(overlay::Kind::kChord, ChurnMode::kChurn);
  auto a = ScenarioEngine::Make(config);
  auto b = ScenarioEngine::Make(config);
  ASSERT_TRUE(a.ok() && b.ok());
  auto ra = a->Run();
  auto rb = b->Run();
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_EQ(ra->ToJson(), rb->ToJson());
  EXPECT_GT(ra->queries, 0u);
}

class ScenarioChurnTest : public ::testing::TestWithParam<overlay::Kind> {};

TEST_P(ScenarioChurnTest, NonzeroRecallUnderChurn) {
  auto engine =
      ScenarioEngine::Make(SmallConfig(GetParam(), ChurnMode::kChurn));
  ASSERT_TRUE(engine.ok()) << engine.status();
  auto report = engine->Run();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->queries, 600u);
  EXPECT_GT(report->crashes, 0u);
  EXPECT_GT(report->recoveries, 0u);
  EXPECT_GT(report->recall_sum, 0.0)
      << overlay::KindName(GetParam()) << " produced no cache hits";
  EXPECT_GT(report->hops, 0u);
  EXPECT_GT(report->bytes, 0u);
}

TEST_P(ScenarioChurnTest, CrashWaveReportsRecoveryWindows) {
  ScenarioConfig config = SmallConfig(GetParam(), ChurnMode::kCrashWave);
  config.num_queries = 1200;
  config.crash_wave_fraction = 0.2;
  // Keep the wave-settle window (2x this) inside the ~1200 ms horizon
  // so the after-wave recall window actually sees queries.
  config.recover_delay_ms = 100.0;
  auto engine = ScenarioEngine::Make(config);
  ASSERT_TRUE(engine.ok()) << engine.status();
  auto report = engine->Run();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT(report->crashes, 0u);
  EXPECT_EQ(report->recoveries, report->crashes);
  EXPECT_GE(report->recall_before_wave, 0.0);
  EXPECT_GE(report->recall_during_wave, 0.0);
  EXPECT_GE(report->recall_after_wave, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ScenarioChurnTest,
                         ::testing::Values(overlay::Kind::kChord,
                                           overlay::Kind::kCan,
                                           overlay::Kind::kTapestry),
                         [](const ::testing::TestParamInfo<overlay::Kind>& i) {
                           return std::string(overlay::KindName(i.param));
                         });

TEST(ScenarioEngineTest, WorkloadShapesAllComplete) {
  for (const WorkloadShape shape :
       {WorkloadShape::kUniform, WorkloadShape::kZipf,
        WorkloadShape::kHotspot}) {
    auto engine = ScenarioEngine::Make(
        SmallConfig(overlay::Kind::kChord, ChurnMode::kNone, shape));
    ASSERT_TRUE(engine.ok());
    auto report = engine->Run();
    ASSERT_TRUE(report.ok()) << WorkloadShapeName(shape);
    EXPECT_EQ(report->queries, 600u) << WorkloadShapeName(shape);
    EXPECT_GT(report->recall_sum, 0.0) << WorkloadShapeName(shape);
  }
}

TEST(ScenarioEngineTest, GaugesFlowIntoSystemMetrics) {
  auto engine = ScenarioEngine::Make(
      SmallConfig(overlay::Kind::kChord, ChurnMode::kNone));
  ASSERT_TRUE(engine.ok());
  auto report = engine->Run();
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->bytes_per_peer, 0u);
  EXPECT_GT(report->event_queue_depth, 0u);

  SystemMetrics m;
  report->FillMetrics(&m);
  EXPECT_EQ(m.bytes_per_peer, report->bytes_per_peer);
  EXPECT_EQ(m.event_queue_depth, report->event_queue_depth);
  EXPECT_EQ(m.range_lookups, report->queries);
  const std::string json = m.ToJson();
  EXPECT_NE(json.find("\"bytes_per_peer\":"), std::string::npos);
  EXPECT_NE(json.find("\"event_queue_depth\":"), std::string::npos);
}

TEST(ScenarioEngineTest, ReportJsonCarriesEveryField) {
  auto engine = ScenarioEngine::Make(
      SmallConfig(overlay::Kind::kChord, ChurnMode::kNone));
  ASSERT_TRUE(engine.ok());
  auto report = engine->Run();
  ASSERT_TRUE(report.ok());
  const std::string json = report->ToJson();
  for (const char* key :
       {"queries", "exact_hits", "approx_hits", "misses", "mean_recall",
        "mean_hops", "messages", "bytes", "publishes", "descriptors_stored",
        "stale_evictions", "crashes", "recoveries", "recovery_ms",
        "bytes_per_peer", "event_queue_depth", "end_time_ms"}) {
    EXPECT_NE(json.find("\"" + std::string(key) + "\":"), std::string::npos)
        << key;
  }
}

TEST(ScenarioEngineTest, SingleThreadedByDesign) {
  auto engine = ScenarioEngine::Make(
      SmallConfig(overlay::Kind::kChord, ChurnMode::kNone));
  ASSERT_TRUE(engine.ok());
  EXPECT_TRUE(engine->on_owner_thread());
  std::atomic<bool> other_thread_owns{true};
  std::thread probe(
      [&] { other_thread_owns = engine->on_owner_thread(); });
  probe.join();
  // Run() CHECK-fails off the owner thread instead of taking locks;
  // the ownership probe is the testable half of that contract.
  EXPECT_FALSE(other_thread_owns);
}

TEST(ScenarioEngineTest, RunIsSingleShot) {
  auto engine = ScenarioEngine::Make(
      SmallConfig(overlay::Kind::kChord, ChurnMode::kNone));
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->Run().ok());
  EXPECT_DEATH_IF_SUPPORTED(static_cast<void>(engine->Run()), "");
}

}  // namespace
}  // namespace sim
}  // namespace p2prange
