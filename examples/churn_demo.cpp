// Churn: peers joining and leaving (including abrupt failures) while
// range queries keep flowing. Shows Chord's stabilization protocol
// repairing the ring and the cache re-warming itself after departures
// take descriptors away.
//
//   $ ./build/examples/churn_demo
#include <iostream>

#include "core/system.h"
#include "rel/generator.h"
#include "workload/range_workload.h"

using namespace p2prange;

int main() {
  SystemConfig config;
  config.num_peers = 60;
  config.lsh = LshParams::Paper(HashFamilyType::kApproxMinwise, /*seed=*/5);
  config.seed = 5;
  auto system = RangeCacheSystem::Make(
      config, MakeNumbersCatalog(1000, 0, 1000, /*seed=*/5));
  if (!system.ok()) {
    std::cerr << system.status() << "\n";
    return 1;
  }

  UniformRangeGenerator gen(0, 1000, 55);
  Rng churn(56);

  for (int round = 1; round <= 6; ++round) {
    // Twenty lookups per round.
    size_t hits = 0;
    int hops = 0;
    for (int i = 0; i < 20; ++i) {
      auto outcome =
          system->LookupRange(PartitionKey{"Numbers", "key", gen.Next()});
      if (!outcome.ok()) {
        std::cerr << "lookup failed: " << outcome.status() << "\n";
        return 1;
      }
      hits += outcome->match.has_value();
      hops += outcome->hops;
    }
    std::cout << "round " << round << ": " << system->ring().num_alive()
              << " peers alive, " << hits << "/20 lookups matched, "
              << hops / 20 << " hops/lookup avg\n";

    // Churn: two peers leave (one gracefully, one by crashing), three
    // join.
    const auto nodes = system->ring().AliveNodesSorted();
    int removed = 0;
    for (size_t attempt = 0; attempt < nodes.size() && removed < 2; ++attempt) {
      const auto& addr = nodes[churn.NextBounded(nodes.size())].addr;
      if (addr == system->source_address()) continue;
      if (system->RemovePeer(addr, /*graceful=*/removed == 0).ok()) ++removed;
    }
    for (int j = 0; j < 3; ++j) {
      auto added = system->AddPeer();
      if (!added.ok()) {
        std::cerr << "join failed: " << added.status() << "\n";
        return 1;
      }
    }
    system->ring().StabilizeAll(2);
    system->ring().FixAllFingers();
  }

  std::cout << "\nfinal ring size: " << system->ring().num_alive()
            << " peers\nmetrics: " << system->metrics().ToString() << "\n";
  return 0;
}
