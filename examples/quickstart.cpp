// Quickstart: build a small P2P range-cache system, run the §4 lookup
// protocol by hand, then run a full SQL query through it.
//
//   $ ./build/examples/quickstart
#include <iostream>

#include "core/system.h"
#include "rel/generator.h"

using namespace p2prange;

int main() {
  // 1. A global schema with one relation, Numbers(key, payload), whose
  //    selectable attribute "key" ranges over [0, 1000]. The catalog
  //    also holds the base data (2,000 rows) at the source peer.
  Catalog catalog = MakeNumbersCatalog(/*n=*/2000, /*domain_lo=*/0,
                                       /*domain_hi=*/1000, /*seed=*/7);

  // 2. A 64-peer overlay with the paper's LSH configuration:
  //    approximate min-wise permutations, k=20 functions per group,
  //    l=5 groups.
  SystemConfig config;
  config.num_peers = 64;
  config.lsh = LshParams::Paper(HashFamilyType::kApproxMinwise, /*seed=*/1);
  config.criterion = MatchCriterion::kContainment;
  config.seed = 1;
  auto system = RangeCacheSystem::Make(config, std::move(catalog));
  if (!system.ok()) {
    std::cerr << "failed to build system: " << system.status() << "\n";
    return 1;
  }

  // 3. Look up a range nobody has cached yet: a miss, after which the
  //    protocol publishes the queried partition under its l
  //    identifiers.
  const PartitionKey key{"Numbers", "key", Range(100, 200)};
  auto first = system->LookupRange(key);
  std::cout << "first lookup of " << key.ToString() << ": "
            << (first->match ? "match" : "miss") << " ("
            << first->hops << " overlay hops, "
            << first->peers_contacted << " peers contacted)\n";

  // 4. Ask for a slightly different range: [100, 199] has Jaccard
  //    similarity 100/101 with the cached [100, 200], so with high
  //    probability at least one of its 5 identifiers collides.
  auto second = system->LookupRange(PartitionKey{"Numbers", "key", Range(100, 199)});
  if (second->match) {
    std::cout << "similar lookup matched " << second->match->matched.ToString()
              << "  jaccard=" << second->match->jaccard
              << "  recall=" << second->match->recall << "\n";
  } else {
    std::cout << "similar lookup found no match (LSH is probabilistic; "
                 "re-run with another seed)\n";
  }

  // 5. Full SQL: the system parses, pushes selections to the leaves,
  //    resolves each leaf through the P2P caches (or the source), and
  //    joins locally at the querying peer.
  auto outcome =
      system->ExecuteQuery("SELECT * FROM Numbers WHERE key >= 100 AND key <= 200");
  if (!outcome.ok()) {
    std::cerr << "query failed: " << outcome.status() << "\n";
    return 1;
  }
  std::cout << "SQL query returned " << outcome->result.num_rows()
            << " rows; leaf answered from "
            << (outcome->leaves[0].used_cache ? "the P2P cache" : "the source")
            << "\n";

  auto again = system->ExecuteQuery(
      "SELECT * FROM Numbers WHERE key >= 100 AND key <= 200");
  std::cout << "repeated query answered from "
            << (again->leaves[0].used_cache ? "the P2P cache" : "the source")
            << " (" << again->result.num_rows() << " rows)\n";

  std::cout << "\nsystem metrics: " << system->metrics().ToString() << "\n";
  return 0;
}
