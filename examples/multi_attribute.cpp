// Multi-attribute range selections — the paper's §6 future-work
// extension, implemented. Queries constrain both `age` and
// `patient_id`; the system probes the cache of each attribute and
// serves the leaf from whichever cached partition fully covers its
// selection, applying the other predicate locally.
//
//   $ ./build/examples/multi_attribute
#include <iostream>

#include "core/system.h"
#include "rel/generator.h"

using namespace p2prange;

namespace {

void Show(const char* label, const QueryOutcome& outcome) {
  const LeafOutcome& leaf = outcome.leaves[0];
  std::cout << label << ": " << outcome.result.num_rows() << " rows, served by "
            << (leaf.used_cache ? "cache" : "source");
  if (leaf.used_cache && leaf.lookup && leaf.lookup->match) {
    std::cout << " via attribute '" << leaf.lookup->match->matched.attribute
              << "' partition " << leaf.lookup->match->matched.range.ToString();
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  Catalog catalog = MakeMedicalCatalog();
  MedicalDataSpec spec;
  spec.num_patients = 2000;
  if (Status s = PopulateMedicalData(spec, &catalog); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  SystemConfig config;
  config.num_peers = 64;
  config.lsh = LshParams::Paper(HashFamilyType::kApproxMinwise, /*seed=*/9);
  config.criterion = MatchCriterion::kContainment;
  config.multi_attribute = true;  // lift the one-range-attribute rule
  config.seed = 9;
  auto system = RangeCacheSystem::Make(config, std::move(catalog));
  if (!system.ok()) {
    std::cerr << system.status() << "\n";
    return 1;
  }

  // Cold: both attribute caches are empty; the source answers, and the
  // age partition (the primary attribute) is materialized + published.
  auto q1 = system->ExecuteQuery(
      "SELECT * FROM Patient WHERE age BETWEEN 30 AND 50 "
      "AND patient_id BETWEEN 100 AND 900");
  if (!q1.ok()) {
    std::cerr << q1.status() << "\n";
    return 1;
  }
  Show("cold two-attribute query", *q1);

  // Same constraints: the age cache now serves the leaf.
  auto q2 = system->ExecuteQuery(
      "SELECT * FROM Patient WHERE age BETWEEN 30 AND 50 "
      "AND patient_id BETWEEN 100 AND 900");
  Show("repeat two-attribute query", *q2);

  // Different age band but the SAME patient_id band, after warming the
  // patient_id cache with a single-attribute query: the system serves
  // the leaf from the patient_id partition (a secondary attribute) and
  // filters the new age band locally.
  // Warm-up only: the answer is irrelevant, we want the side effect of
  // the patient_id partition landing in a peer cache.
  system->ExecuteQuery(
      "SELECT * FROM Patient WHERE patient_id BETWEEN 100 AND 900")
      .status()
      .IgnoreError();
  auto q3 = system->ExecuteQuery(
      "SELECT * FROM Patient WHERE age BETWEEN 60 AND 75 "
      "AND patient_id BETWEEN 100 AND 900");
  Show("new age band, cached id band", *q3);

  std::cout << "\nmetrics: " << system->metrics().ToString() << "\n";
  return 0;
}
