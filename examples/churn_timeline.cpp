// Time-series view of the system under continuous churn, using the
// discrete-event simulator: Poisson queries, joins, and departures
// (half of them abrupt crashes), with periodic Chord stabilization.
//
//   $ ./build/examples/churn_timeline
#include <iostream>
#include <memory>

#include "core/system.h"
#include "rel/generator.h"
#include "sim/churn_sim.h"
#include "stats/table_printer.h"
#include "workload/range_workload.h"

using namespace p2prange;

int main() {
  SystemConfig config;
  config.num_peers = 80;
  config.lsh = LshParams::Paper(HashFamilyType::kApproxMinwise, /*seed=*/21);
  config.criterion = MatchCriterion::kContainment;
  config.descriptor_replication = 3;  // survive abrupt departures
  config.seed = 21;
  auto system = RangeCacheSystem::Make(
      config, MakeNumbersCatalog(5000, 0, 1000, /*seed=*/21));
  if (!system.ok()) {
    std::cerr << system.status() << "\n";
    return 1;
  }

  ChurnScenarioConfig scenario;
  scenario.duration_s = 1200;      // 20 simulated minutes
  scenario.query_rate_hz = 2.0;
  scenario.join_rate_hz = 0.05;    // ~1 join/20s
  scenario.leave_rate_hz = 0.05;
  scenario.fail_fraction = 0.5;
  scenario.stabilize_period_s = 20;
  scenario.seed = 22;

  auto gen = std::make_shared<UniformRangeGenerator>(0, 1000, 23);
  ChurnSimulator sim(
      &*system, [gen] { return PartitionKey{"Numbers", "key", gen->Next()}; },
      scenario);
  auto report = sim.Run(/*num_slices=*/10);
  if (!report.ok()) {
    std::cerr << report.status() << "\n";
    return 1;
  }

  TablePrinter table({"window (s)", "queries", "% matched", "% complete",
                      "mean recall", "joins", "departures", "peers"});
  for (const ChurnTimeSlice& s : report->slices) {
    const double q = static_cast<double>(std::max<uint64_t>(s.queries, 1));
    table.AddRow({TablePrinter::Fmt(s.t_begin, 0) + "-" +
                      TablePrinter::Fmt(s.t_end, 0),
                  TablePrinter::Fmt(s.queries),
                  TablePrinter::Fmt(100.0 * static_cast<double>(s.matched) / q, 1),
                  TablePrinter::Fmt(100.0 * static_cast<double>(s.complete) / q, 1),
                  TablePrinter::Fmt(s.mean_recall, 3),
                  TablePrinter::Fmt(s.joins), TablePrinter::Fmt(s.departures),
                  TablePrinter::Fmt(static_cast<uint64_t>(s.alive_at_end))});
  }
  table.Print(std::cout, "20 simulated minutes under churn");
  std::cout << "\ntotal queries: " << report->total_queries
            << ", protocol errors: " << report->protocol_errors
            << "\nfinal metrics: " << system->metrics().ToString() << "\n";
  return 0;
}
