// Interactive SQL shell over a simulated P2P data-sharing system.
//
//   $ ./build/examples/sql_shell
//   p2p> SELECT * FROM Patient WHERE age > 30 AND age < 50
//   ... rows, and where each leaf's data came from ...
//   p2p> \metrics
//   p2p> \peers
//   p2p> \quit
//
// Also accepts a script on stdin:
//   $ echo "SELECT ... " | ./build/examples/sql_shell
#include <iostream>
#include <sstream>
#include <string>

#include "core/system.h"
#include "rel/csv.h"
#include "rel/generator.h"

using namespace p2prange;

namespace {

void PrintHelp() {
  std::cout <<
      "commands:\n"
      "  <SQL>        run a SELECT through the P2P system\n"
      "  \\metrics     show cumulative system metrics\n"
      "  \\peers       show overlay size and per-peer cache load\n"
      "  \\schema      list relations in the global schema\n"
      "  \\csv <SQL>   run a query and print the result as CSV\n"
      "  \\help        this text\n"
      "  \\quit        exit\n";
}

void RunQuery(RangeCacheSystem& system, const std::string& sql, bool as_csv) {
  auto outcome = system.ExecuteQuery(sql);
  if (!outcome.ok()) {
    std::cout << "error: " << outcome.status() << "\n";
    return;
  }
  if (as_csv) {
    if (Status s = WriteCsv(outcome->result, &std::cout); !s.ok()) {
      std::cout << "error: " << s << "\n";
    }
  } else {
    std::cout << outcome->result.ToString(/*max_rows=*/20);
  }
  if (outcome->from_result_cache) {
    std::cout << "(whole result served from the query-result cache)\n";
  }
  for (const LeafOutcome& leaf : outcome->leaves) {
    std::cout << "  leaf " << leaf.table << ": "
              << (leaf.used_cache ? "P2P cache" : "source");
    if (leaf.lookup && leaf.lookup->match) {
      std::cout << " (matched " << leaf.lookup->match->matched.ToString()
                << ", recall " << leaf.lookup->match->recall << ")";
    }
    std::cout << "\n";
  }
  std::cout << "  " << outcome->total_hops << " overlay hops, "
            << outcome->total_latency_ms << " ms simulated\n";
}

}  // namespace

int main() {
  Catalog catalog = MakeMedicalCatalog();
  MedicalDataSpec spec;
  spec.num_patients = 2000;
  spec.num_prescriptions = 3000;
  spec.num_diagnoses = 3000;
  if (Status s = PopulateMedicalData(spec, &catalog); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  SystemConfig config;
  config.num_peers = 100;
  config.lsh = LshParams::Paper(HashFamilyType::kApproxMinwise, /*seed=*/17);
  config.criterion = MatchCriterion::kContainment;
  config.cache_query_results = true;
  config.multi_attribute = true;
  config.seed = 17;
  auto system = RangeCacheSystem::Make(config, std::move(catalog));
  if (!system.ok()) {
    std::cerr << system.status() << "\n";
    return 1;
  }

  std::cout << "p2prange shell — " << config.num_peers
            << " peers, medical schema (Patient, Diagnosis, Physician, "
               "Prescription).\nType \\help for commands.\n";

  std::string line;
  while (true) {
    std::cout << "p2p> " << std::flush;
    if (!std::getline(std::cin, line)) break;
    // Trim.
    const size_t begin = line.find_first_not_of(" \t");
    if (begin == std::string::npos) continue;
    const size_t end = line.find_last_not_of(" \t");
    line = line.substr(begin, end - begin + 1);

    if (line == "\\quit" || line == "\\q") break;
    if (line == "\\help") {
      PrintHelp();
    } else if (line == "\\metrics") {
      std::cout << system->metrics().ToString() << "\n";
    } else if (line == "\\peers") {
      const auto counts = system->DescriptorCountsPerPeer();
      size_t total = 0, loaded = 0;
      for (size_t c : counts) {
        total += c;
        loaded += (c > 0);
      }
      std::cout << system->ring().num_alive() << " peers alive, " << total
                << " cached descriptors across " << loaded << " peers\n";
    } else if (line == "\\schema") {
      for (const std::string& rel : system->catalog().RelationNames()) {
        auto schema = system->catalog().GetSchema(rel);
        std::cout << "  " << rel << (schema.ok() ? schema->ToString() : "") << "\n";
      }
    } else if (line.rfind("\\csv ", 0) == 0) {
      RunQuery(*system, line.substr(5), /*as_csv=*/true);
    } else if (line[0] == '\\') {
      std::cout << "unknown command; \\help lists commands\n";
    } else {
      RunQuery(*system, line, /*as_csv=*/false);
    }
  }
  std::cout << "\n";
  return 0;
}
