// The paper's §2 scenario: a medical global schema shared by peers,
// and the motivating query — prescriptions given to Glaucoma patients
// aged 30-50 between Jan 2000 and Dec 2002 — executed through the P2P
// system. Demonstrates selection pushdown, per-leaf cache resolution
// (range leaves via LSH, the diagnosis equality leaf via exact-match
// hashing), local joins, and the cold/warm cost difference.
//
//   $ ./build/examples/medical_records
#include <iostream>

#include "core/system.h"
#include "rel/generator.h"

using namespace p2prange;

namespace {

void Report(const char* label, const QueryOutcome& outcome,
            const SystemMetrics& metrics) {
  std::cout << label << ": " << outcome.result.num_rows() << " rows, "
            << outcome.total_hops << " overlay hops\n";
  for (const LeafOutcome& leaf : outcome.leaves) {
    std::cout << "    leaf " << leaf.table << ": "
              << (leaf.used_cache    ? "cache"
                  : leaf.from_source ? "source"
                                     : "local")
              << " (recall " << leaf.recall << ")\n";
  }
  std::cout << "    cumulative: source_fetches=" << metrics.source_fetches
            << " cache_fetches=" << metrics.cache_fetches << "\n";
}

}  // namespace

int main() {
  // The §2 global schema with synthetic but referentially consistent
  // contents: 1000 patients, 50 physicians, 2000 prescriptions, 2000
  // diagnoses.
  Catalog catalog = MakeMedicalCatalog();
  MedicalDataSpec spec;
  if (Status s = PopulateMedicalData(spec, &catalog); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  SystemConfig config;
  config.num_peers = 128;
  config.lsh = LshParams::Paper(HashFamilyType::kApproxMinwise, /*seed=*/2);
  config.criterion = MatchCriterion::kContainment;
  config.seed = 2;
  auto system = RangeCacheSystem::Make(config, std::move(catalog));
  if (!system.ok()) {
    std::cerr << system.status() << "\n";
    return 1;
  }

  // The paper's query, §2 (age bounds exclusive, dates inclusive).
  const std::string sql =
      "Select Prescription.prescription "
      "from Patient, Diagnosis, Prescription "
      "where 30 < age and age < 50 "
      "and diagnosis = 'Glaucoma' "
      "and Patient.patient_id = Diagnosis.patient_id "
      "and '2000-01-01' <= date and date <= '2002-12-31' "
      "and Diagnosis.prescription_id = Prescription.prescription_id";
  std::cout << "query:\n  " << sql << "\n\n";

  auto cold = system->ExecuteQuery(sql);
  if (!cold.ok()) {
    std::cerr << cold.status() << "\n";
    return 1;
  }
  Report("cold run (empty caches)", *cold, system->metrics());

  // The same query again: every leaf partition is now cached somewhere
  // in the overlay, so the source is never contacted.
  auto warm = system->ExecuteQuery(sql);
  Report("\nwarm run (same query)", *warm, system->metrics());

  // A *similar* query (ages 31-49 instead of 31-49... the paper's
  // point: the cached partitions can serve nearby selections too).
  auto nearby = system->ExecuteQuery(
      "Select Prescription.prescription "
      "from Patient, Diagnosis, Prescription "
      "where 31 < age and age < 49 "
      "and diagnosis = 'Glaucoma' "
      "and Patient.patient_id = Diagnosis.patient_id "
      "and '2000-02-01' <= date and date <= '2002-11-30' "
      "and Diagnosis.prescription_id = Prescription.prescription_id");
  Report("\nnearby query (narrower ranges)", *nearby, system->metrics());

  std::cout << "\nsample of the answer:\n"
            << warm->result.ToString(/*max_rows=*/5);
  return 0;
}
