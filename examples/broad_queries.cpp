// Broad, approximate querying — the paper's motivating usage pattern:
// "P2P users often ask broad queries even when they are only
// interested in a few results and therefore do not expect perfect
// answers". This example turns on partial-answer acceptance and 20%
// query padding, fires a stream of overlapping range queries, and
// reports how much of each answer came from the P2P caches and at what
// recall — without ever going back to the source after warmup.
//
//   $ ./build/examples/broad_queries
#include <iostream>

#include "core/system.h"
#include "rel/generator.h"
#include "stats/summary.h"
#include "workload/range_workload.h"

using namespace p2prange;

int main() {
  Catalog catalog = MakeNumbersCatalog(/*n=*/5000, 0, 1000, /*seed=*/11);

  SystemConfig config;
  config.num_peers = 100;
  config.lsh = LshParams::Paper(HashFamilyType::kApproxMinwise, /*seed=*/3);
  config.criterion = MatchCriterion::kContainment;
  config.padding = 0.2;                 // §5.2: expand 20% per edge
  config.accept_partial_answers = true; // broad-query philosophy
  config.seed = 3;
  auto system = RangeCacheSystem::Make(config, std::move(catalog));
  if (!system.ok()) {
    std::cerr << system.status() << "\n";
    return 1;
  }

  // A hotspot workload: most users ask about the same popular region
  // with slightly different bounds.
  ZipfRangeGenerator gen(0, 1000, /*theta=*/0.9, /*mean_width=*/120, /*seed=*/17);

  Summary recalls;
  size_t cache_answers = 0, source_answers = 0;
  const int kQueries = 200;
  for (int i = 0; i < kQueries; ++i) {
    const Range q = gen.Next();
    char sql[128];
    std::snprintf(sql, sizeof(sql),
                  "SELECT * FROM Numbers WHERE key >= %u AND key <= %u", q.lo(),
                  q.hi());
    auto outcome = system->ExecuteQuery(sql);
    if (!outcome.ok()) {
      std::cerr << outcome.status() << "\n";
      return 1;
    }
    const LeafOutcome& leaf = outcome->leaves[0];
    if (leaf.used_cache) {
      ++cache_answers;
      recalls.Add(leaf.recall);
    } else {
      ++source_answers;
    }
  }

  std::cout << "queries:            " << kQueries << "\n"
            << "answered from cache: " << cache_answers << " ("
            << 100.0 * static_cast<double>(cache_answers) / kQueries << "%)\n"
            << "fetched from source: " << source_answers << "\n";
  if (recalls.count() > 0) {
    std::cout << "cache-answer recall: mean " << recalls.Mean() << ", min "
              << recalls.Min() << " (1.0 = complete answer)\n";
  }
  std::cout << "\nThe source peer served only " << source_answers
            << " requests; the remaining load was absorbed by peer caches\n"
               "holding overlapping padded partitions.\n";
  return 0;
}
